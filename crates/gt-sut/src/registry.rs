//! The string-keyed platform registry and its option bag.

use std::collections::BTreeMap;
use std::fmt;
use std::io;

use crate::sut::SystemUnderTest;

/// String-keyed start-up options for a platform, with typed getters.
///
/// Options travel as strings so they can come straight from CLI flags
/// (`--opt shards=4`) or spec files; the typed getters parse on demand and
/// report malformed values as [`io::ErrorKind::InvalidInput`].
#[derive(Debug, Clone, Default)]
pub struct SutOptions {
    params: BTreeMap<String, String>,
}

impl SutOptions {
    /// An empty option bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one option (builder style). Values are stored stringified.
    #[must_use]
    pub fn set(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.insert(key.into(), value.to_string());
        self
    }

    /// Inserts one option in place (for loops over parsed CLI pairs).
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.params.insert(key.into(), value.into());
    }

    /// The raw string value, if set.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Whether any option is set.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, ty: &str) -> io::Result<Option<T>> {
        match self.params.get(key) {
            None => Ok(None),
            Some(raw) => raw.trim().parse().map(Some).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("option `{key}`: expected {ty}, got `{raw}`"),
                )
            }),
        }
    }

    /// The value parsed as `usize`, if set.
    pub fn get_usize(&self, key: &str) -> io::Result<Option<usize>> {
        self.parsed(key, "an unsigned integer")
    }

    /// The value parsed as `u64`, if set.
    pub fn get_u64(&self, key: &str) -> io::Result<Option<u64>> {
        self.parsed(key, "an unsigned integer")
    }

    /// The value parsed as `f64`, if set.
    pub fn get_f64(&self, key: &str) -> io::Result<Option<f64>> {
        self.parsed(key, "a number")
    }

    /// The value parsed as a microsecond count into a [`std::time::Duration`].
    pub fn get_duration_micros(&self, key: &str) -> io::Result<Option<std::time::Duration>> {
        Ok(self.get_u64(key)?.map(std::time::Duration::from_micros))
    }

    /// The `shards` option, validated: a positive integer no larger than
    /// [`MAX_SHARDS`]. Unlike the generic string getters (which accept any
    /// value silently until a platform happens to parse it), this getter
    /// rejects nonsense up front with a typed [`ShardsError`], so a typo
    /// like `shards=0` or `shards=lots` fails the run at start-up instead
    /// of silently running serial.
    pub fn get_shards(&self) -> Result<Option<usize>, ShardsError> {
        let Some(raw) = self.params.get("shards") else {
            return Ok(None);
        };
        let shards: usize = raw
            .trim()
            .parse()
            .map_err(|_| ShardsError::NotANumber(raw.clone()))?;
        if shards == 0 {
            return Err(ShardsError::Zero);
        }
        if shards > MAX_SHARDS {
            return Err(ShardsError::TooLarge(shards));
        }
        Ok(Some(shards))
    }
}

/// Upper bound accepted by [`SutOptions::get_shards`]. Far above anything
/// a single-host run can use productively; values beyond it are treated
/// as configuration mistakes, not requests.
pub const MAX_SHARDS: usize = 1024;

/// Why a `shards=` option was rejected by [`SutOptions::get_shards`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardsError {
    /// The value is not an unsigned integer.
    NotANumber(String),
    /// `shards=0`: at least one shard is required.
    Zero,
    /// The value exceeds [`MAX_SHARDS`].
    TooLarge(usize),
}

impl fmt::Display for ShardsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardsError::NotANumber(raw) => {
                write!(
                    f,
                    "option `shards`: expected an unsigned integer, got `{raw}`"
                )
            }
            ShardsError::Zero => write!(f, "option `shards`: at least one shard is required"),
            ShardsError::TooLarge(got) => write!(
                f,
                "option `shards`: {got} exceeds the maximum of {MAX_SHARDS}"
            ),
        }
    }
}

impl std::error::Error for ShardsError {}

impl From<ShardsError> for io::Error {
    fn from(e: ShardsError) -> Self {
        io::Error::new(io::ErrorKind::InvalidInput, e.to_string())
    }
}

/// A platform builder: spawns the platform from an option bag.
pub type SutBuilder =
    Box<dyn Fn(&SutOptions) -> io::Result<Box<dyn SystemUnderTest>> + Send + Sync>;

/// A string-keyed registry of platform builders.
///
/// Experiments select platforms by name; the bench and workload binaries
/// register the in-tree platforms and start them through here instead of
/// hard-wiring connectors.
#[derive(Default)]
pub struct SutRegistry {
    builders: BTreeMap<String, SutBuilder>,
}

impl SutRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a builder under `name`, replacing any previous one.
    pub fn register<F>(&mut self, name: impl Into<String>, builder: F)
    where
        F: Fn(&SutOptions) -> io::Result<Box<dyn SystemUnderTest>> + Send + Sync + 'static,
    {
        self.builders.insert(name.into(), Box::new(builder));
    }

    /// The registered platform names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.builders.keys().map(String::as_str).collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }

    /// Spawns the named platform.
    pub fn start(
        &self,
        name: &str,
        options: &SutOptions,
    ) -> Result<Box<dyn SystemUnderTest>, SutError> {
        let builder = self.builders.get(name).ok_or_else(|| SutError::Unknown {
            name: name.to_owned(),
            available: self.names().iter().map(|s| s.to_string()).collect(),
        })?;
        builder(options).map_err(SutError::Start)
    }
}

impl fmt::Debug for SutRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SutRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Why a platform could not be spawned.
#[derive(Debug)]
pub enum SutError {
    /// No builder is registered under the requested name.
    Unknown {
        /// The requested name.
        name: String,
        /// What the registry does know.
        available: Vec<String>,
    },
    /// The builder ran but failed to start the platform.
    Start(io::Error),
}

impl fmt::Display for SutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SutError::Unknown { name, available } => {
                write!(
                    f,
                    "unknown system under test `{name}` (available: {})",
                    available.join(", ")
                )
            }
            SutError::Start(e) => write!(f, "system under test failed to start: {e}"),
        }
    }
}

impl std::error::Error for SutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SutError::Start(e) => Some(e),
            SutError::Unknown { .. } => None,
        }
    }
}

impl From<io::Error> for SutError {
    fn from(e: io::Error) -> Self {
        SutError::Start(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::EvaluationLevel;
    use crate::sut::SutReport;
    use gt_replayer::{CollectSink, EventSink};
    use std::any::Any;

    struct NullSut;

    impl SystemUnderTest for NullSut {
        fn name(&self) -> &str {
            "null"
        }

        fn level(&self) -> EvaluationLevel {
            EvaluationLevel::Level0
        }

        fn connector(&mut self) -> io::Result<Box<dyn EventSink + Send>> {
            Ok(Box::new(CollectSink::new()))
        }

        fn shutdown(self: Box<Self>) -> SutReport {
            SutReport::new("null")
        }

        fn as_any(&mut self) -> &mut dyn Any {
            self
        }

        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn registry() -> SutRegistry {
        let mut registry = SutRegistry::new();
        registry.register("null", |_options| {
            Ok(Box::new(NullSut) as Box<dyn SystemUnderTest>)
        });
        registry
    }

    #[test]
    fn start_known_and_unknown() {
        let registry = registry();
        assert!(registry.contains("null"));
        assert_eq!(registry.names(), ["null"]);
        let sut = registry.start("null", &SutOptions::new()).unwrap();
        assert_eq!(sut.name(), "null");
        assert_eq!(sut.level(), EvaluationLevel::Level0);
        match registry.start("missing", &SutOptions::new()) {
            Err(SutError::Unknown { name, available }) => {
                assert_eq!(name, "missing");
                assert_eq!(available, ["null"]);
            }
            Err(other) => panic!("expected Unknown, got {other}"),
            Ok(_) => panic!("expected Unknown, got a running SUT"),
        }
    }

    #[test]
    fn options_parse_typed_values() {
        let options = SutOptions::new()
            .set("shards", 4)
            .set("epsilon", 0.05)
            .set("cost_us", 150);
        assert_eq!(options.get_usize("shards").unwrap(), Some(4));
        assert_eq!(options.get_f64("epsilon").unwrap(), Some(0.05));
        assert_eq!(
            options.get_duration_micros("cost_us").unwrap(),
            Some(std::time::Duration::from_micros(150))
        );
        assert_eq!(options.get_usize("absent").unwrap(), None);
        assert_eq!(options.get("shards"), Some("4"));
    }

    #[test]
    fn malformed_option_is_invalid_input() {
        let options = SutOptions::new().set("shards", "many");
        let err = options.get_usize("shards").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("shards"));
    }

    #[test]
    fn shards_getter_accepts_valid_counts() {
        assert_eq!(SutOptions::new().get_shards().unwrap(), None);
        assert_eq!(
            SutOptions::new().set("shards", 1).get_shards().unwrap(),
            Some(1)
        );
        assert_eq!(
            SutOptions::new().set("shards", " 8 ").get_shards().unwrap(),
            Some(8)
        );
        assert_eq!(
            SutOptions::new()
                .set("shards", MAX_SHARDS)
                .get_shards()
                .unwrap(),
            Some(MAX_SHARDS)
        );
    }

    #[test]
    fn shards_getter_rejects_zero() {
        let err = SutOptions::new().set("shards", 0).get_shards().unwrap_err();
        assert_eq!(err, ShardsError::Zero);
        assert!(err.to_string().contains("at least one shard"));
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn shards_getter_rejects_non_numeric() {
        for raw in ["many", "-4", "3.5", ""] {
            let err = SutOptions::new()
                .set("shards", raw)
                .get_shards()
                .unwrap_err();
            assert_eq!(err, ShardsError::NotANumber(raw.to_owned()), "raw `{raw}`");
            assert!(err.to_string().contains("shards"), "raw `{raw}`");
        }
    }

    #[test]
    fn shards_getter_rejects_absurd_counts() {
        let err = SutOptions::new()
            .set("shards", MAX_SHARDS + 1)
            .get_shards()
            .unwrap_err();
        assert_eq!(err, ShardsError::TooLarge(MAX_SHARDS + 1));
        assert!(err.to_string().contains("1024"));
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn start_error_passes_through() {
        let mut registry = SutRegistry::new();
        registry.register("broken", |_options| Err(io::Error::other("boom")));
        match registry.start("broken", &SutOptions::new()) {
            Err(SutError::Start(e)) => assert_eq!(e.to_string(), "boom"),
            Err(other) => panic!("expected Start, got {other}"),
            Ok(_) => panic!("expected Start, got a running SUT"),
        }
    }
}

//! Evaluation levels (paper §4).

use serde::{Deserialize, Serialize};

/// How much internal access the analyst has to the system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EvaluationLevel {
    /// Black box: stream in, results out, external process observation
    /// only ("agnostic profiling tools").
    Level0,
    /// The system exposes a native metrics interface (here: a
    /// [`gt_metrics::MetricsHub`]) that loggers can read at runtime.
    Level1,
    /// Full source access: measurement logic is injected into the system
    /// (per-component counters, intermediate result dumps).
    Level2,
}

impl EvaluationLevel {
    /// Whether this level grants at least the access of `other`.
    pub fn includes(self, other: EvaluationLevel) -> bool {
        self >= other
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EvaluationLevel::Level0 => "level 0 (black box)",
            EvaluationLevel::Level1 => "level 1 (native metrics)",
            EvaluationLevel::Level2 => "level 2 (instrumented source)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_access() {
        assert!(EvaluationLevel::Level2.includes(EvaluationLevel::Level0));
        assert!(EvaluationLevel::Level1.includes(EvaluationLevel::Level1));
        assert!(!EvaluationLevel::Level0.includes(EvaluationLevel::Level1));
    }

    #[test]
    fn labels() {
        assert!(EvaluationLevel::Level0.label().contains("black box"));
        assert!(EvaluationLevel::Level2.label().contains("instrumented"));
    }
}

#![warn(missing_docs)]

//! # gt-sut
//!
//! The first-class **system-under-test boundary** of the GraphTides
//! framework.
//!
//! The paper's Figure 2 architecture treats the evaluated platform as a
//! pluggable component: "the analyst either plugs a platform-specific
//! connector into the graph stream replayer, or provides logic within the
//! platform" (§4.1). This crate defines that boundary once, so the harness,
//! the bench binaries, and the workload runners never hard-wire a platform
//! again:
//!
//! * [`SystemUnderTest`] — the lifecycle trait a platform implements:
//!   spawn, hand out replayer connectors ([`gt_replayer::EventSink`]),
//!   declare its [`EvaluationLevel`], optionally expose a native
//!   [`gt_metrics::MetricsHub`] (the Level-1 hook), quiesce, and shut down
//!   into a final [`SutReport`].
//! * [`SutRegistry`] — a string-keyed registry of platform builders, so an
//!   experiment selects its platform by name (`"tide-store"`,
//!   `"tide-graph"`, …) plus a bag of [`SutOptions`].
//!
//! Adding a new platform is ~50 lines: implement the trait, write a
//! `register` function, and every harness run plan, sweep, and CLI can
//! drive it. See DESIGN.md for a walkthrough.

pub mod levels;
pub mod registry;
pub mod sut;

pub use levels::EvaluationLevel;
pub use registry::{ShardsError, SutError, SutOptions, SutRegistry, MAX_SHARDS};
pub use sut::{Adjacency, StateDigest, SutReport, SystemUnderTest, WindowDigest, WorkerSupervisor};

//! The [`SystemUnderTest`] lifecycle trait and its final report.

use std::any::Any;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use gt_metrics::MetricsHub;
use gt_replayer::EventSink;
use gt_trace::Tracer;

use crate::levels::EvaluationLevel;

/// A running stream-processing platform under evaluation.
///
/// Implementations own the platform's threads and queues for the duration
/// of an experiment. The harness drives the lifecycle:
///
/// 1. a registry builder spawns the platform (the "start" half);
/// 2. [`connector`](SystemUnderTest::connector) hands out the replayer-side
///    [`EventSink`] that feeds it — the batch-aware sink contract applies,
///    so implementations receive coalesced [`gt_core shared
///    entries`](gt_replayer::EventSink::send_batch) and must forward them
///    without cloning event payloads;
/// 3. after the replay, [`quiesce`](SystemUnderTest::quiesce) waits for
///    in-flight events to drain (all connectors must be dropped first if
///    the platform requires sole ownership);
/// 4. [`shutdown`](SystemUnderTest::shutdown) stops the platform and
///    returns its final [`SutReport`], which the harness folds into the
///    experiment's result log.
pub trait SystemUnderTest: Send {
    /// The platform's registry name (stable across runs; used as the
    /// metric source label for its Level-1 samples).
    fn name(&self) -> &str;

    /// The evaluation level this platform grants (paper §4): `Level0` for
    /// a pure black box, `Level1` and up when
    /// [`hub`](SystemUnderTest::hub) exposes native metrics.
    fn level(&self) -> EvaluationLevel;

    /// A connector plugging this platform into the replayer. May be called
    /// more than once (multi-connection replay); each connector must be
    /// independently usable and dropped before shutdown.
    fn connector(&mut self) -> io::Result<Box<dyn EventSink + Send>>;

    /// The platform's native metrics hub — the Level-1 hook. Harness
    /// logger threads sample it live and merge the series into the result
    /// log. `None` for black-box platforms.
    fn hub(&self) -> Option<&MetricsHub> {
        None
    }

    /// Installs a Level-2 [`Tracer`] whose probes the platform should
    /// stamp at its in-source tracepoints ([connector
    /// receive](gt_trace::Stage::ConnectorRecv), [engine
    /// apply](gt_trace::Stage::EngineApply)). Called by the harness after
    /// spawn and before the first [`connector`](SystemUnderTest::connector)
    /// when the run's evaluation level includes Level 2. The default is a
    /// no-op: a platform that ignores the tracer simply contributes no
    /// in-source stamps, and the collector reports only the replayer-side
    /// stage pairs.
    fn install_tracer(&mut self, tracer: &Tracer) {
        let _ = tracer;
    }

    /// The tracer previously passed to
    /// [`install_tracer`](SystemUnderTest::install_tracer), if the
    /// platform kept it. `None` for platforms without in-source
    /// tracepoints.
    fn tracer(&self) -> Option<&Tracer> {
        None
    }

    /// Waits until all ingested events have been fully processed, or the
    /// timeout elapses. Returns whether the platform drained. The default
    /// suits platforms whose shutdown already drains their queues.
    fn quiesce(&mut self, timeout: Duration) -> bool {
        let _ = timeout;
        true
    }

    /// The platform's crash/restart control surface, if it supports
    /// supervised chaos runs. Returns a handle that stays valid while the
    /// platform runs — chaos middleware calls it from the replay thread to
    /// kill and resurrect individual workers mid-stream. `None` (the
    /// default) means the platform cannot be crash-injected.
    fn supervisor(&self) -> Option<Arc<dyn WorkerSupervisor>> {
        None
    }

    /// Stops the platform and returns its final report.
    fn shutdown(self: Box<Self>) -> SutReport;

    /// Mutable access as [`Any`], for platform-specific probes (e.g. a
    /// bench sampling tide-graph's leaderboard mid-run). Implement as
    /// `fn as_any(&mut self) -> &mut dyn Any { self }`.
    fn as_any(&mut self) -> &mut dyn Any;

    /// Consumes the box into [`Any`], for typed shutdown paths that need
    /// more than the generic [`SutReport`] (e.g. final algorithm results).
    /// Implement as `fn into_any(self: Box<Self>) -> Box<dyn Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A platform's crash/restart control surface for supervised chaos runs.
///
/// Implementations hold *shared internals* of a running platform (channel
/// senders, worker handles) — never the platform's own top-level handle,
/// so normal shutdown paths that require sole ownership keep working.
/// All methods must be safe to call from any thread at any point of a run,
/// including on workers that are already dead.
pub trait WorkerSupervisor: Send + Sync {
    /// How many crash-injectable workers the platform currently runs
    /// (engine workers, store shards).
    fn worker_count(&self) -> usize;

    /// Kills the given worker as if it had failed (its in-memory state is
    /// lost). Returns whether a crash was actually delivered — `false` for
    /// out-of-range indices or workers that are already dead.
    fn inject_crash(&self, worker: usize) -> bool;

    /// Restarts a previously crashed worker, rebuilding its state by
    /// replaying the platform's retained event log (supervised mode only).
    /// Returns whether the worker came back.
    fn restart_worker(&self, worker: usize) -> bool;
}

/// What a platform reported when it shut down: a flat list of named final
/// values (events processed, entity counts, per-component totals).
#[derive(Debug, Clone, PartialEq)]
pub struct SutReport {
    /// The platform's registry name.
    pub name: String,
    /// Final named values, in insertion order.
    pub summary: Vec<(String, f64)>,
}

impl SutReport {
    /// An empty report for the named platform.
    pub fn new(name: impl Into<String>) -> Self {
        SutReport {
            name: name.into(),
            summary: Vec::new(),
        }
    }

    /// Appends one named value (builder style).
    #[must_use]
    pub fn with(mut self, metric: impl Into<String>, value: f64) -> Self {
        self.summary.push((metric.into(), value));
        self
    }

    /// Looks up a value by metric name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.summary
            .iter()
            .find(|(name, _)| name == metric)
            .map(|&(_, value)| value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builder_and_lookup() {
        let report = SutReport::new("demo")
            .with("events", 42.0)
            .with("edges", 7.0);
        assert_eq!(report.name, "demo");
        assert_eq!(report.get("events"), Some(42.0));
        assert_eq!(report.get("edges"), Some(7.0));
        assert_eq!(report.get("missing"), None);
        assert_eq!(report.summary.len(), 2);
    }
}

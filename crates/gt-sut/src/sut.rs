//! The [`SystemUnderTest`] lifecycle trait and its final report.

use std::any::Any;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use gt_metrics::MetricsHub;
use gt_replayer::EventSink;
use gt_trace::Tracer;

use crate::levels::EvaluationLevel;

/// A running stream-processing platform under evaluation.
///
/// Implementations own the platform's threads and queues for the duration
/// of an experiment. The harness drives the lifecycle:
///
/// 1. a registry builder spawns the platform (the "start" half);
/// 2. [`connector`](SystemUnderTest::connector) hands out the replayer-side
///    [`EventSink`] that feeds it — the batch-aware sink contract applies,
///    so implementations receive coalesced [`gt_core shared
///    entries`](gt_replayer::EventSink::send_batch) and must forward them
///    without cloning event payloads;
/// 3. after the replay, [`quiesce`](SystemUnderTest::quiesce) waits for
///    in-flight events to drain (all connectors must be dropped first if
///    the platform requires sole ownership);
/// 4. [`shutdown`](SystemUnderTest::shutdown) stops the platform and
///    returns its final [`SutReport`], which the harness folds into the
///    experiment's result log.
pub trait SystemUnderTest: Send {
    /// The platform's registry name (stable across runs; used as the
    /// metric source label for its Level-1 samples).
    fn name(&self) -> &str;

    /// The evaluation level this platform grants (paper §4): `Level0` for
    /// a pure black box, `Level1` and up when
    /// [`hub`](SystemUnderTest::hub) exposes native metrics.
    fn level(&self) -> EvaluationLevel;

    /// A connector plugging this platform into the replayer. May be called
    /// more than once (multi-connection replay); each connector must be
    /// independently usable and dropped before shutdown.
    fn connector(&mut self) -> io::Result<Box<dyn EventSink + Send>>;

    /// The platform's native metrics hub — the Level-1 hook. Harness
    /// logger threads sample it live and merge the series into the result
    /// log. `None` for black-box platforms.
    fn hub(&self) -> Option<&MetricsHub> {
        None
    }

    /// Installs a Level-2 [`Tracer`] whose probes the platform should
    /// stamp at its in-source tracepoints ([connector
    /// receive](gt_trace::Stage::ConnectorRecv), [engine
    /// apply](gt_trace::Stage::EngineApply)). Called by the harness after
    /// spawn and before the first [`connector`](SystemUnderTest::connector)
    /// when the run's evaluation level includes Level 2. The default is a
    /// no-op: a platform that ignores the tracer simply contributes no
    /// in-source stamps, and the collector reports only the replayer-side
    /// stage pairs.
    fn install_tracer(&mut self, tracer: &Tracer) {
        let _ = tracer;
    }

    /// The tracer previously passed to
    /// [`install_tracer`](SystemUnderTest::install_tracer), if the
    /// platform kept it. `None` for platforms without in-source
    /// tracepoints.
    fn tracer(&self) -> Option<&Tracer> {
        None
    }

    /// Waits until all ingested events have been fully processed, or the
    /// timeout elapses. Returns whether the platform drained. The default
    /// suits platforms whose shutdown already drains their queues.
    fn quiesce(&mut self, timeout: Duration) -> bool {
        let _ = timeout;
        true
    }

    /// The platform's crash/restart control surface, if it supports
    /// supervised chaos runs. Returns a handle that stays valid while the
    /// platform runs — chaos middleware calls it from the replay thread to
    /// kill and resurrect individual workers mid-stream. `None` (the
    /// default) means the platform cannot be crash-injected.
    fn supervisor(&self) -> Option<Arc<dyn WorkerSupervisor>> {
        None
    }

    /// Stops the platform and returns its final report.
    fn shutdown(self: Box<Self>) -> SutReport;

    /// Stops the platform and returns its final report plus, when the
    /// platform was started in digest mode, a [`StateDigest`] of its final
    /// graph state and per-marker-window snapshots. The differential
    /// harness compares these digests between a serial and a sharded run
    /// of the same stream. The default forwards to
    /// [`shutdown`](SystemUnderTest::shutdown) with no digest.
    fn shutdown_digest(self: Box<Self>) -> (SutReport, Option<StateDigest>) {
        (self.shutdown(), None)
    }

    /// Mutable access as [`Any`], for platform-specific probes (e.g. a
    /// bench sampling tide-graph's leaderboard mid-run). Implement as
    /// `fn as_any(&mut self) -> &mut dyn Any { self }`.
    fn as_any(&mut self) -> &mut dyn Any;

    /// Consumes the box into [`Any`], for typed shutdown paths that need
    /// more than the generic [`SutReport`] (e.g. final algorithm results).
    /// Implement as `fn into_any(self: Box<Self>) -> Box<dyn Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A platform's crash/restart control surface for supervised chaos runs.
///
/// Implementations hold *shared internals* of a running platform (channel
/// senders, worker handles) — never the platform's own top-level handle,
/// so normal shutdown paths that require sole ownership keep working.
/// All methods must be safe to call from any thread at any point of a run,
/// including on workers that are already dead.
pub trait WorkerSupervisor: Send + Sync {
    /// How many crash-injectable workers the platform currently runs
    /// (engine workers, store shards).
    fn worker_count(&self) -> usize;

    /// Kills the given worker as if it had failed (its in-memory state is
    /// lost). Returns whether a crash was actually delivered — `false` for
    /// out-of-range indices or workers that are already dead.
    fn inject_crash(&self, worker: usize) -> bool;

    /// Restarts a previously crashed worker, rebuilding its state by
    /// replaying the platform's retained event log (supervised mode only).
    /// Returns whether the worker came back.
    fn restart_worker(&self, worker: usize) -> bool;
}

/// What a platform reported when it shut down: a flat list of named final
/// values (events processed, entity counts, per-component totals).
#[derive(Debug, Clone, PartialEq)]
pub struct SutReport {
    /// The platform's registry name.
    pub name: String,
    /// Final named values, in insertion order.
    pub summary: Vec<(String, f64)>,
}

impl SutReport {
    /// An empty report for the named platform.
    pub fn new(name: impl Into<String>) -> Self {
        SutReport {
            name: name.into(),
            summary: Vec::new(),
        }
    }

    /// Appends one named value (builder style).
    #[must_use]
    pub fn with(mut self, metric: impl Into<String>, value: f64) -> Self {
        self.summary.push((metric.into(), value));
        self
    }

    /// Looks up a value by metric name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.summary
            .iter()
            .find(|(name, _)| name == metric)
            .map(|&(_, value)| value)
    }
}

/// A canonical adjacency dump: `(vertex id, [(target id, weight bits)])`
/// with both levels sorted ascending. Weights travel as [`f64::to_bits`]
/// so equality is exact — the whole point of the differential harness is
/// *bit*-identical comparison, never tolerance bands.
pub type Adjacency = Vec<(u64, Vec<(u64, u64)>)>;

/// One marker window's state snapshot inside a [`StateDigest`]: the graph
/// topology visible at the marker's consistent cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowDigest {
    /// The marker (watermark) name that closed this window.
    pub marker: String,
    /// Canonical adjacency at the cut.
    pub adjacency: Adjacency,
}

/// A platform's state digest at shutdown: the final graph topology, one
/// snapshot per marker window, and the run's degradation record.
///
/// Two runs of the same seeded stream — one serial, one sharded — must
/// produce *equal* digests ([`StateDigest::diff`] returns `None`);
/// anything else is an ordering, loss, duplication, or marker-placement
/// bug in the sharded path. Degradation counters are carried alongside
/// but not compared by `diff`: a chaos run legitimately records crashes
/// its clean oracle does not, while still converging to the same state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateDigest {
    /// Canonical adjacency of the final graph state.
    pub final_adjacency: Adjacency,
    /// Per-marker-window snapshots, in marker (stream) order.
    pub windows: Vec<WindowDigest>,
    /// Degradation record: named fault/recovery counters
    /// (crashes, restarts, events lost, events replayed, …).
    pub degradation: Vec<(String, u64)>,
}

impl StateDigest {
    /// Sorts the adjacency dumps into canonical order (vertices ascending,
    /// out-lists ascending). Platforms call this once after assembling a
    /// digest from per-shard pieces.
    pub fn canonicalize(&mut self) {
        fn sort(adj: &mut Adjacency) {
            for (_, out) in adj.iter_mut() {
                out.sort_unstable();
            }
            adj.sort_unstable_by_key(|(v, _)| *v);
        }
        sort(&mut self.final_adjacency);
        for w in &mut self.windows {
            sort(&mut w.adjacency);
        }
    }

    /// A named degradation counter, if recorded.
    pub fn degradation(&self, name: &str) -> Option<u64> {
        self.degradation
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Compares final state and every marker window against `other`
    /// (degradation counters are deliberately excluded). Returns `None`
    /// when equal, or a description of the first difference.
    pub fn diff(&self, other: &StateDigest) -> Option<String> {
        if self.windows.len() != other.windows.len() {
            return Some(format!(
                "window count differs: {} vs {}",
                self.windows.len(),
                other.windows.len()
            ));
        }
        for (i, (a, b)) in self.windows.iter().zip(&other.windows).enumerate() {
            if a.marker != b.marker {
                return Some(format!(
                    "window {i}: marker `{}` vs `{}`",
                    a.marker, b.marker
                ));
            }
            if let Some(what) = diff_adjacency(&a.adjacency, &b.adjacency) {
                return Some(format!("window `{}`: {what}", a.marker));
            }
        }
        diff_adjacency(&self.final_adjacency, &other.final_adjacency)
            .map(|what| format!("final state: {what}"))
    }
}

/// First difference between two canonical adjacencies, described.
fn diff_adjacency(a: &Adjacency, b: &Adjacency) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("vertex count differs: {} vs {}", a.len(), b.len()));
    }
    for ((va, outa), (vb, outb)) in a.iter().zip(b) {
        if va != vb {
            return Some(format!("vertex id differs: {va} vs {vb}"));
        }
        if outa != outb {
            return Some(format!(
                "out-list of vertex {va} differs: {} vs {} edges",
                outa.len(),
                outb.len()
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_diff_finds_first_difference() {
        let mut a = StateDigest {
            final_adjacency: vec![(1, vec![(2, 0)]), (2, vec![])],
            windows: vec![WindowDigest {
                marker: "m".into(),
                adjacency: vec![(1, vec![])],
            }],
            degradation: vec![("crashes".into(), 0)],
        };
        let b = a.clone();
        assert_eq!(a.diff(&b), None);

        // Degradation differences are not part of the comparison.
        a.degradation = vec![("crashes".into(), 3)];
        assert_eq!(a.diff(&b), None);
        assert_eq!(a.degradation("crashes"), Some(3));

        // A window mismatch is reported before the final state.
        a.windows[0].adjacency = vec![(7, vec![])];
        let msg = a.diff(&b).unwrap();
        assert!(msg.contains("window `m`"), "{msg}");

        a.windows = b.windows.clone();
        a.final_adjacency = vec![(1, vec![(2, 0)]), (3, vec![])];
        let msg = a.diff(&b).unwrap();
        assert!(msg.contains("final state"), "{msg}");
    }

    #[test]
    fn digest_canonicalize_sorts_both_levels() {
        let mut d = StateDigest {
            final_adjacency: vec![(5, vec![(9, 0), (1, 0)]), (2, vec![])],
            windows: vec![WindowDigest {
                marker: "m".into(),
                adjacency: vec![(4, vec![]), (3, vec![])],
            }],
            degradation: Vec::new(),
        };
        d.canonicalize();
        assert_eq!(d.final_adjacency[0].0, 2);
        assert_eq!(d.final_adjacency[1].1, vec![(1, 0), (9, 0)]);
        assert_eq!(d.windows[0].adjacency[0].0, 3);
    }

    #[test]
    fn report_builder_and_lookup() {
        let report = SutReport::new("demo")
            .with("events", 42.0)
            .with("edges", 7.0);
        assert_eq!(report.name, "demo");
        assert_eq!(report.get("events"), Some(42.0));
        assert_eq!(report.get("edges"), Some(7.0));
        assert_eq!(report.get("missing"), None);
        assert_eq!(report.summary.len(), 2);
    }
}

//! Property-based tests of the workload generators: every configuration
//! in a sampled parameter range must produce a stream that applies
//! cleanly under strict semantics, with the advertised composition.

use gt_core::prelude::*;
use gt_graph::EvolvingGraph;
use gt_workloads::{BlockchainWorkload, DdosWorkload, SnbWorkload, TrafficWorkload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snb_streams_always_apply(
        // Keep the density feasible: `per_person` well below `persons`,
        // so the requested connections always fit a simple digraph.
        persons in 20u64..120,
        per_person in 1u64..8,
        seed in any::<u64>(),
    ) {
        let workload = SnbWorkload {
            persons,
            connections: persons * per_person,
            seed,
        };
        let stream = workload.generate();
        let stats = stream.stats();
        prop_assert_eq!(stats.count(EventKind::AddVertex) as u64, workload.persons);
        prop_assert_eq!(stats.count(EventKind::AddEdge) as u64, workload.connections);
        let g = EvolvingGraph::from_stream(&stream).expect("strict apply");
        prop_assert!(g.check_invariants().is_ok());
        prop_assert_eq!(g.vertex_count() as u64, workload.persons);
        prop_assert_eq!(g.edge_count() as u64, workload.connections);
    }

    #[test]
    fn ddos_streams_always_apply(
        servers in 2u64..12,
        baseline in 10u64..100,
        attackers in 10u64..200,
        seed in any::<u64>(),
    ) {
        let workload = DdosWorkload {
            servers,
            baseline_clients: baseline,
            attack_clients: attackers,
            victim: servers / 2,
            updates_per_phase: 30,
            seed,
        };
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).expect("strict apply");
        prop_assert!(g.check_invariants().is_ok());
        // Phase markers always present, in order.
        let markers: Vec<&str> = stream
            .entries()
            .iter()
            .filter_map(|e| match e {
                StreamEntry::Marker(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        prop_assert_eq!(markers, vec!["attack-start", "attack-end"]);
    }

    #[test]
    fn blockchain_conserves_money(
        blocks in 1u64..20,
        txs in 5u64..40,
        seed in any::<u64>(),
    ) {
        let workload = BlockchainWorkload {
            blocks,
            txs_per_block: txs,
            seed,
            ..Default::default()
        };
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).expect("strict apply");
        let total: f64 = g
            .vertices_with_state()
            .filter_map(|(_, s)| s.get_field("balance")?.parse::<f64>().ok())
            .sum();
        let expected = g.vertex_count() as f64 * workload.initial_balance;
        prop_assert!((total - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn traffic_streams_always_apply(
        rows in 2u64..8,
        cols in 2u64..8,
        ticks in 1u64..60,
        closure in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let workload = TrafficWorkload {
            rows,
            cols,
            ticks,
            updates_per_tick: 10,
            closure_prob: closure,
            seed,
            ..Default::default()
        };
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).expect("strict apply");
        prop_assert!(g.check_invariants().is_ok());
        // Junctions are never removed.
        prop_assert_eq!(g.vertex_count() as u64, rows * cols);
        // Travel times are always positive.
        for (_, state) in g.edges() {
            let w = state.as_weight().expect("weighted segment");
            prop_assert!(w > 0.0);
        }
    }
}

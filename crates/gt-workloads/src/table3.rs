//! The Weaver experiment workload (paper Table 3): a Barabási–Albert
//! bootstrap (n = 10,000, m₀ = 250, M = 50) followed by evolution under
//! the Table 3 event mix with its Zipf-biased selection functions.

use std::time::Duration;

use gt_core::prelude::*;
use gt_generator::{MixModel, StreamComposer, StreamGenerator};
use gt_graph::builders::BarabasiAlbert;

/// The full Table 3 workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Workload {
    /// Bootstrap graph parameters.
    pub bootstrap: BarabasiAlbert,
    /// Evolution-phase length in events.
    pub evolution_events: usize,
    /// Pause between bootstrap and evaluation phases.
    pub warmup_pause: Duration,
    /// Evolution RNG seed.
    pub seed: u64,
}

impl Table3Workload {
    /// The paper's configuration with a chosen evolution length.
    pub fn paper(evolution_events: usize) -> Self {
        Table3Workload {
            bootstrap: BarabasiAlbert::table3(),
            evolution_events,
            warmup_pause: Duration::from_secs(1),
            seed: 3,
        }
    }

    /// A scaled-down configuration for fast tests and examples.
    pub fn small(evolution_events: usize, seed: u64) -> Self {
        Table3Workload {
            bootstrap: BarabasiAlbert {
                n: 500,
                m0: 20,
                m: 5,
                seed,
            },
            evolution_events,
            warmup_pause: Duration::from_millis(10),
            seed,
        }
    }

    /// Generates the two-phase stream: bootstrap, `bootstrap-done` marker,
    /// pause, evolution, `stream-end` marker.
    pub fn generate(&self) -> GraphStream {
        let bootstrap = self.bootstrap.generate();
        let mut generator = StreamGenerator::new(MixModel::table3(), self.seed);
        generator
            .bootstrap(&bootstrap)
            .expect("builder streams apply cleanly");
        let evolution = generator.evolve(self.evolution_events);
        StreamComposer::two_phase(bootstrap, self.warmup_pause, evolution.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::{ApplyPolicy, EvolvingGraph};

    #[test]
    fn paper_bootstrap_matches_table3() {
        let w = Table3Workload::paper(100);
        assert_eq!(w.bootstrap.n, 10_000);
        assert_eq!(w.bootstrap.m0, 250);
        assert_eq!(w.bootstrap.m, 50);
    }

    #[test]
    fn small_stream_has_two_phases_and_applies() {
        let stream = Table3Workload::small(2_000, 5).generate();
        let stats = stream.stats();
        assert_eq!(stats.markers, 2);
        assert_eq!(stats.controls, 1);
        // Bootstrap 500 vertices + (500-20)*5 + 20 edges, plus evolution.
        assert!(stats.graph_events > 2_000);

        let mut g = EvolvingGraph::new();
        for event in stream.graph_events() {
            g.apply_with(event, ApplyPolicy::Strict).unwrap();
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn event_mix_roughly_table3_in_evolution_phase() {
        let stream = Table3Workload::small(10_000, 9).generate();
        // Count only after the bootstrap-done marker.
        let mut in_evolution = false;
        let mut adds = 0usize;
        let mut updates = 0usize;
        let mut total = 0usize;
        for entry in stream.entries() {
            match entry {
                StreamEntry::Marker(name) if name == "bootstrap-done" => in_evolution = true,
                StreamEntry::Graph(e) if in_evolution => {
                    total += 1;
                    match e.kind() {
                        EventKind::AddEdge => adds += 1,
                        EventKind::UpdateVertex => updates += 1,
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        assert_eq!(total, 10_000);
        let add_frac = adds as f64 / total as f64;
        let upd_frac = updates as f64 / total as f64;
        assert!((0.25..=0.45).contains(&add_frac), "add_edge {add_frac}");
        assert!(
            (0.25..=0.45).contains(&upd_frac),
            "update_vertex {upd_frac}"
        );
    }
}

//! The SNB-like social network stream.
//!
//! The paper's Chronograph experiment uses "a converted LDBC SNB workload
//! (only persons and connections); 190,518 events" (Table 4). The LDBC
//! generator itself is a large external Java system; this module generates
//! a behaviourally equivalent stream: person-creation events interleaved
//! with "knows" edges whose endpoints follow the SNB social-graph skew —
//! sources biased toward recently joined persons (new members are the
//! active ones), targets by preferential attachment (popular members
//! attract connections).

use gt_core::prelude::*;
use gt_generator::{GenContext, VertexSelector};

/// Configuration for the social-network stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnbWorkload {
    /// Number of persons to create.
    pub persons: u64,
    /// Number of "knows" edges to create.
    pub connections: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SnbWorkload {
    /// The Chronograph experiment's size: 190,518 events total —
    /// 10,028 persons and 180,490 connections (mean degree ≈ 36, matching
    /// the SNB SF-1 person–knows graph).
    pub fn table4() -> Self {
        SnbWorkload {
            persons: 10_028,
            connections: 180_490,
            seed: 2018,
        }
    }

    /// A proportionally scaled-down variant with the same person/edge
    /// ratio, for fast tests and examples.
    pub fn scaled(fraction: f64, seed: u64) -> Self {
        let full = Self::table4();
        SnbWorkload {
            persons: ((full.persons as f64 * fraction) as u64).max(10),
            connections: ((full.connections as f64 * fraction) as u64).max(10),
            seed,
        }
    }

    /// Total events the stream will contain.
    pub fn total_events(&self) -> u64 {
        self.persons + self.connections
    }

    /// Generates the stream. Events are interleaved so that the graph
    /// grows organically: connections appear as soon as enough persons
    /// exist, at the steady-state ratio.
    pub fn generate(&self) -> GraphStream {
        assert!(self.persons >= 2, "need at least two persons");
        let mut ctx = GenContext::new(self.seed);
        let mut stream = GraphStream::new();

        let mut persons_left = self.persons;
        let mut connections_left = self.connections;
        // Bootstrap a small core so early edges have targets.
        let core = self.persons.min(8);
        for _ in 0..core {
            Self::add_person(&mut ctx, &mut stream);
            persons_left -= 1;
        }

        while persons_left + connections_left > 0 {
            // Interleave proportionally to what remains; when the live
            // graph is too dense for random edge placement (early on, few
            // persons exist), fall forward to the next person arrival.
            let pick_person = if connections_left == 0 {
                true
            } else if persons_left == 0 {
                false
            } else {
                // Weighted choice keeps the global ratio steady.
                use rand::RngExt;
                let p = persons_left as f64 / (persons_left + connections_left) as f64;
                ctx.rng.random_bool(p)
            };
            if pick_person {
                Self::add_person(&mut ctx, &mut stream);
                persons_left -= 1;
            } else if Self::add_connection(&mut ctx, &mut stream) {
                connections_left -= 1;
            } else if persons_left > 0 {
                Self::add_person(&mut ctx, &mut stream);
                persons_left -= 1;
            } else {
                // No persons left and random placement saturated: place the
                // remaining connections deterministically.
                Self::fill_connections(&mut ctx, &mut stream, connections_left);
                connections_left = 0;
            }
        }
        stream
    }

    /// Deterministic fallback: scans vertex pairs in order and emits the
    /// first `count` missing edges.
    ///
    /// # Panics
    /// If the graph cannot hold `count` more edges at all.
    fn fill_connections(ctx: &mut GenContext, stream: &mut GraphStream, count: u64) {
        let vertices: Vec<VertexId> = ctx.graph.vertices().collect();
        let mut placed = 0u64;
        'outer: for &src in &vertices {
            for &dst in &vertices {
                if placed == count {
                    break 'outer;
                }
                let id = EdgeId::new(src, dst);
                if id.is_self_loop() || ctx.graph.has_edge(id) {
                    continue;
                }
                let event = GraphEvent::AddEdge {
                    id,
                    state: State::new("knows"),
                };
                ctx.apply(&event).expect("validated edge");
                stream.push(StreamEntry::Graph(event));
                placed += 1;
            }
        }
        assert_eq!(
            placed, count,
            "graph too small for the requested connection count"
        );
    }

    fn add_person(ctx: &mut GenContext, stream: &mut GraphStream) {
        let id = ctx.allocate_vertex_id();
        let event = GraphEvent::AddVertex {
            id,
            state: State::from_fields([("person", id.0.to_string())]),
        };
        ctx.apply(&event).expect("fresh person id");
        stream.push(StreamEntry::Graph(event));
    }

    /// Attempts a random skewed placement; `false` when 64 draws all
    /// collided (the live graph is currently too dense).
    fn add_connection(ctx: &mut GenContext, stream: &mut GraphStream) -> bool {
        for _ in 0..64 {
            let src = ctx
                .select_vertex(VertexSelector::ZipfRecency { exponent: 0.8 })
                .expect("persons exist");
            let dst = ctx
                .select_vertex(VertexSelector::DegreeProportional)
                .expect("persons exist");
            let id = EdgeId::new(src, dst);
            if id.is_self_loop() || ctx.graph.has_edge(id) {
                continue;
            }
            let event = GraphEvent::AddEdge {
                id,
                state: State::new("knows"),
            };
            ctx.apply(&event).expect("validated edge");
            stream.push(StreamEntry::Graph(event));
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::EvolvingGraph;

    #[test]
    fn table4_size_matches_paper() {
        assert_eq!(SnbWorkload::table4().total_events(), 190_518);
    }

    #[test]
    fn generates_exact_event_counts() {
        let workload = SnbWorkload {
            persons: 200,
            connections: 800,
            seed: 1,
        };
        let stream = workload.generate();
        let stats = stream.stats();
        assert_eq!(stats.graph_events, 1_000);
        assert_eq!(stats.count(EventKind::AddVertex), 200);
        assert_eq!(stats.count(EventKind::AddEdge), 800);
    }

    #[test]
    fn stream_applies_strictly() {
        let stream = SnbWorkload {
            persons: 150,
            connections: 600,
            seed: 7,
        }
        .generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        assert_eq!(g.vertex_count(), 150);
        assert_eq!(g.edge_count(), 600);
        g.check_invariants().unwrap();
    }

    #[test]
    fn is_deterministic_per_seed() {
        let make = |seed| {
            SnbWorkload {
                persons: 100,
                connections: 300,
                seed,
            }
            .generate()
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let stream = SnbWorkload {
            persons: 300,
            connections: 3_000,
            seed: 3,
        }
        .generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        let dist = gt_graph::properties::DegreeDistribution::total(&g);
        // Preferential attachment: max degree far above the mean.
        assert!(
            dist.max_degree() as f64 > dist.mean() * 3.0,
            "max {} mean {}",
            dist.max_degree(),
            dist.mean()
        );
    }

    #[test]
    fn scaled_preserves_ratio() {
        let small = SnbWorkload::scaled(0.01, 0);
        let ratio = small.connections as f64 / small.persons as f64;
        let full_ratio = 180_490.0 / 10_028.0;
        assert!((ratio - full_ratio).abs() < 2.0, "ratio {ratio}");
    }
}

#![warn(missing_docs)]

//! # gt-workloads
//!
//! Representative, versatile workloads (paper §3.3, §2.4): ready-made
//! graph streams for the three use cases the paper motivates, plus the
//! exact experiment presets of its evaluation section.
//!
//! * [`snb`] — an SNB-like social-network stream (persons + "knows"
//!   connections), sized like the converted LDBC SNB workload of the
//!   Chronograph experiment (Table 4: 190,518 events).
//! * [`ddos`] — network flow graphs with a distributed denial-of-service
//!   attack phase (§2.4 use case 2).
//! * [`blockchain`] — wallet/transaction graphs in per-block micro-batches
//!   (§2.4 use case 3).
//! * [`table3`] — the Weaver experiment workload: Barabási–Albert
//!   bootstrap plus the Table 3 event mix.
//!
//! All generators are seeded and deterministic, and every produced stream
//! applies cleanly onto an empty graph under strict semantics.

pub mod blockchain;
pub mod ddos;
pub mod snb;
pub mod table3;
pub mod traffic;

pub use blockchain::BlockchainWorkload;
pub use ddos::DdosWorkload;
pub use snb::SnbWorkload;
pub use table3::Table3Workload;
pub use traffic::TrafficWorkload;

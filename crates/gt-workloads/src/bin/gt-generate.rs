//! `gt-generate` — workload generation as a standalone tool.
//!
//! Writes a graph stream file for one of the built-in workloads, ready
//! for `gt-replay` (mirroring the paper's generator → file → replayer
//! pipeline).
//!
//! ```text
//! gt-generate <snb|ddos|blockchain|table3> <out.csv> [--scale F] [--seed N]
//! ```

use std::process::ExitCode;

use gt_workloads::{BlockchainWorkload, DdosWorkload, SnbWorkload, Table3Workload};

struct Args {
    workload: String,
    out: String,
    scale: f64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    let mut scale: f64 = 0.1;
    let mut seed = 2018;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
                if scale.is_nan() || scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--help" | "-h" => return Err(
                "usage: gt-generate <snb|ddos|blockchain|table3> <out.csv> [--scale F] [--seed N]"
                    .into(),
            ),
            other if !other.starts_with('-') => positional.push(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly: <workload> <out.csv>".into());
    }
    let mut positional = positional.into_iter();
    Ok(Args {
        workload: positional.next().expect("checked"),
        out: positional.next().expect("checked"),
        scale,
        seed,
    })
}

fn run(args: Args) -> Result<(), String> {
    let stream = match args.workload.as_str() {
        "snb" => SnbWorkload::scaled(args.scale, args.seed).generate(),
        "ddos" => DdosWorkload {
            seed: args.seed,
            baseline_clients: (300.0 * args.scale * 10.0) as u64,
            attack_clients: (600.0 * args.scale * 10.0) as u64,
            ..Default::default()
        }
        .generate(),
        "blockchain" => BlockchainWorkload {
            seed: args.seed,
            blocks: (500.0 * args.scale) as u64 + 1,
            ..Default::default()
        }
        .generate(),
        "table3" => {
            let mut workload = Table3Workload::small((100_000.0 * args.scale) as usize, args.seed);
            if args.scale >= 1.0 {
                workload = Table3Workload::paper((100_000.0 * args.scale) as usize);
            }
            workload.generate()
        }
        other => return Err(format!("unknown workload `{other}`")),
    };
    let stats = stream.stats();
    stream
        .write_to_file(&args.out)
        .map_err(|e| format!("writing {}: {e}", args.out))?;
    eprintln!(
        "wrote {}: {} entries ({} graph events, {} markers, {} control events)",
        args.out,
        stream.len(),
        stats.graph_events,
        stats.markers,
        stats.controls
    );
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gt-generate: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! `gt-run` — one registry-selected experiment from the command line.
//!
//! Streams a graph stream file through the file-backed replay pipeline
//! into a platform chosen by name from the built-in [`SutRegistry`]
//! (`tide-store`, `tide-graph`), samples its native metrics at Level 1+,
//! and prints the platform's final report plus run health. This is the
//! paper's Figure 2 loop as a tool: generate a stream with `gt-generate`,
//! then run it against any registered system under test.
//!
//! ```text
//! gt-run <stream.csv> --sut <name> [--rate R] [--opt key=value ...]
//!        [--faults drop:0.01,dup:0.005,shuffle:64] [--fault-seed N]
//!        [--chaos "crash@200,worker=0,restart=300; stall@500,ms=50"]
//!        [--netem "partition@2s,dur=500ms,conns=0-3; delay@4s,ms=20"]
//!        [--clients N] [--loop-model open|closed|partial:W] [--load-seed N]
//!        [--pattern uniform|diurnal:P:A|pareto:A:B:P|flash:AT:F:HOLD]
//!        [--scale C1,C2,..xR1,R2,..] [--assert-achieved F]
//!        [--shards N | --shards N1,N2,..] [--differential N]
//! gt-run matrix <matrix.spec> [--stream <stream.csv>] [--journal <path>]
//! ```
//!
//! `--faults` derives an unreliable/unordered stream a priori (§3.2)
//! before replay; `--chaos` injects live faults mid-run through the
//! chaos sink and prints a per-fault recovery summary (time-to-recover,
//! throughput-dip depth, events lost). Both are seeded by `--fault-seed`
//! and fully deterministic. Chaos runs are guarded by the experiment
//! watchdog so a killed worker can never hang the invocation.
//!
//! `--netem` interposes the seeded network-fault proxy between the
//! clients (or the single-sink replayer) and the SUT listener: timed
//! partitions, RST/FIN connection kills, added latency/jitter, bandwidth
//! caps, byte corruption. Unlike `--chaos` it works in *both* single-sink
//! and `--clients` load mode, shares `--fault-seed`, and prints its own
//! recovery table correlating network faults against the ingress-rate
//! (single-sink) or achieved-rate (load) series.
//!
//! `--clients` switches to the multi-client load layer: the stream is
//! split into one seeded substream per connection and offered over N
//! concurrent TCP clients under the chosen loop model; the report shows
//! offered-vs-achieved rate and sojourn-latency tails. `--scale` runs a
//! connections × rate grid (one SUT run per cell) and prints the
//! ingress-scaling curve. `--assert-achieved F` fails the invocation
//! when achieved/offered drops below F or any marker ordering violation
//! is observed — the CI smoke hook.
//!
//! `gt-run matrix` switches to the scenario-matrix orchestrator: a
//! declarative spec file names factors (`sut`, `rate`, `pattern`,
//! `shards`, `clients`, `loop`, `chaos`, `stream`) whose cross-product is
//! executed cell by cell with n repetitions each, journaled to
//! `<spec>.journal.jsonl` (one JSON line per finished cell-repetition),
//! and aggregated into per-cell CI95 summaries. A killed matrix resumes
//! from the journal without re-running completed cell-repetitions and
//! reproduces bit-identical aggregates; `gt-report --matrix <journal>`
//! re-renders the comparative table offline.
//!
//! `--shards N` selects the sharded variant of the named platform
//! (`tide-store` → `tide-store-sharded`) with N hash-partitioned shard
//! workers. A comma-separated list (`--shards 1,2,4`, load mode only)
//! runs one load cell per shard count and prints the
//! throughput-vs-shards scaling curve (speedup and parallel efficiency
//! against the smallest count). `--differential N` replays the stream
//! through the serial platform at `shards=1` and the sharded variant at
//! `shards=N` over a single connector each, and fails the invocation
//! unless final graph state and per-marker-window computation results
//! are bit-identical.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use gt_analysis::{
    recovery_windows, recovery_windows_from, shard_scaling, Quantiles, RecoveryWindow,
    TRACE_SOURCE, TRACE_STAGE_METRICS,
};
use gt_faults::{parse_pipeline, FaultInjector};
use gt_harness::{
    cell_id, render_matrix_table, run_differential, run_file_sut_experiment,
    run_load_file_sut_experiment, run_matrix_with_progress, Assignment, CellRunResult, ChaosPlan,
    EvaluationLevel, FaultSchedule, FileRunPlan, LoadPlan, LoadSutRunOutcome, LoopModel, NetemPlan,
    NetemSchedule, RatePattern, RunStatus, ScenarioMatrix, SutOptions, SutRegistry, WatchdogConfig,
    NETEM_SOURCE,
};

/// Throughput fraction of the pre-fault baseline that counts as
/// "recovered" in the summary table.
const RECOVERY_FRACTION: f64 = 0.9;

struct Args {
    path: String,
    sut: String,
    rate: f64,
    options: SutOptions,
    faults: Option<String>,
    chaos: Option<String>,
    netem: Option<String>,
    fault_seed: u64,
    clients: Option<usize>,
    loop_model: LoopModel,
    load_seed: u64,
    scale: Option<(Vec<usize>, Vec<f64>)>,
    assert_achieved: Option<f64>,
    shards: Option<Vec<usize>>,
    differential: Option<usize>,
    pattern: RatePattern,
}

/// The serial base name of a platform: `tide-store-sharded` → `tide-store`.
fn serial_name(sut: &str) -> &str {
    sut.strip_suffix("-sharded").unwrap_or(sut)
}

/// The sharded variant name of a platform: `tide-store` →
/// `tide-store-sharded` (idempotent on already-sharded names).
fn sharded_name(sut: &str) -> String {
    format!("{}-sharded", serial_name(sut))
}

/// The registry of built-in platforms.
fn builtin_registry() -> SutRegistry {
    let mut registry = SutRegistry::new();
    tide_store::sut::register(&mut registry);
    tide_graph::sut::register(&mut registry);
    registry
}

fn usage() -> String {
    let names = builtin_registry().names().join("|");
    format!(
        "usage: gt-run <stream.csv> --sut <{names}> [--rate R] [--opt key=value ...]\n\
         \x20             [--faults drop:P,dup:P,shuffle:W,delay:P:N] [--fault-seed N]\n\
         \x20             [--chaos \"kind@trigger[,key=value ...]; ...\"]\n\
         \x20             [--netem \"partition@2s,dur=500ms[,conns=A-B]; kill@1s,mode=rst; ...\"]\n\
         \x20             [--clients N] [--loop-model open|closed|partial:W] [--load-seed N]\n\
         \x20             [--pattern uniform|diurnal:P:A|pareto:A:B:P|flash:AT:F:HOLD]\n\
         \x20             [--scale C1,C2,..xR1,R2,..] [--assert-achieved F]\n\
         \x20             [--shards N | --shards N1,N2,..] [--differential N]\n\
         \x20      gt-run matrix <matrix.spec> [--stream <stream.csv>] [--journal <path>]"
    )
}

/// Parses the `--scale` grid: `1,4,16x10000,40000` → connections × rates.
fn parse_scale(spec: &str) -> Result<(Vec<usize>, Vec<f64>), String> {
    let (conns, rates) = spec
        .split_once('x')
        .ok_or_else(|| format!("bad scale grid `{spec}`: expected C1,C2,..xR1,R2,.."))?;
    let connections: Vec<usize> = conns
        .split(',')
        .map(|c| {
            c.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad connection count `{c}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let rates: Vec<f64> = rates
        .split(',')
        .map(|r| {
            r.trim()
                .parse::<f64>()
                .map_err(|e| format!("bad rate `{r}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if connections.is_empty() || connections.contains(&0) {
        return Err("scale grid needs positive connection counts".into());
    }
    if rates.is_empty() || rates.iter().any(|r| !r.is_finite() || *r <= 0.0) {
        return Err("scale grid needs positive rates".into());
    }
    Ok((connections, rates))
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut sut = None;
    let mut rate: f64 = 10_000.0;
    let mut options = SutOptions::new();
    let mut faults = None;
    let mut chaos = None;
    let mut netem = None;
    let mut fault_seed: u64 = 0;
    let mut clients = None;
    let mut loop_model = LoopModel::Open;
    let mut load_seed: u64 = 1;
    let mut scale = None;
    let mut assert_achieved = None;
    let mut shards = None;
    let mut differential = None;
    let mut pattern = RatePattern::Uniform;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sut" => sut = Some(args.next().ok_or("--sut needs a value")?),
            "--faults" => faults = Some(args.next().ok_or("--faults needs a spec")?),
            "--chaos" => chaos = Some(args.next().ok_or("--chaos needs a spec")?),
            "--netem" => netem = Some(args.next().ok_or("--netem needs a spec")?),
            "--clients" => {
                let n: usize = args
                    .next()
                    .ok_or("--clients needs a value")?
                    .parse()
                    .map_err(|e| format!("bad client count: {e}"))?;
                if n == 0 {
                    return Err("--clients must be at least 1".into());
                }
                clients = Some(n);
            }
            "--loop-model" => {
                loop_model = args
                    .next()
                    .ok_or("--loop-model needs open|closed|partial:W")?
                    .parse()
                    .map_err(|e| format!("bad loop model: {e}"))?;
            }
            "--load-seed" => {
                load_seed = args
                    .next()
                    .ok_or("--load-seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad load seed: {e}"))?;
            }
            "--scale" => {
                scale = Some(parse_scale(&args.next().ok_or("--scale needs a grid")?)?);
            }
            "--shards" => {
                let spec = args.next().ok_or("--shards needs N or N1,N2,..")?;
                let list: Vec<usize> = spec
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad shard count `{s}`: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--shards needs positive shard counts".into());
                }
                shards = Some(list);
            }
            "--differential" => {
                let n: usize = args
                    .next()
                    .ok_or("--differential needs a shard count")?
                    .parse()
                    .map_err(|e| format!("bad shard count: {e}"))?;
                if n == 0 {
                    return Err("--differential shard count must be at least 1".into());
                }
                differential = Some(n);
            }
            "--assert-achieved" => {
                let f: f64 = args
                    .next()
                    .ok_or("--assert-achieved needs a fraction")?
                    .parse()
                    .map_err(|e| format!("bad fraction: {e}"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--assert-achieved fraction must be in [0, 1]".into());
                }
                assert_achieved = Some(f);
            }
            "--fault-seed" => {
                fault_seed = args
                    .next()
                    .ok_or("--fault-seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fault seed: {e}"))?;
            }
            "--rate" => {
                rate = args
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad rate: {e}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("rate must be positive".into());
                }
            }
            "--opt" => {
                let pair = args.next().ok_or("--opt needs key=value")?;
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad option `{pair}`: expected key=value"))?;
                options.insert(key, value);
            }
            "--pattern" => {
                let spec = args.next().ok_or("--pattern needs a spec")?;
                pattern = spec
                    .parse()
                    .map_err(|e| format!("bad pattern `{spec}`: {e}"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if (clients.is_some() || scale.is_some()) && chaos.is_some() {
        return Err("--chaos applies to single-sink replay; drop it for load mode".into());
    }
    if differential.is_some() && (clients.is_some() || scale.is_some() || chaos.is_some()) {
        return Err(
            "--differential is single-connector A/B replay; drop --clients/--scale/--chaos".into(),
        );
    }
    if differential.is_some() && netem.is_some() {
        return Err("--differential compares bit-exact replays; drop --netem".into());
    }
    if differential.is_some() && shards.is_some() {
        return Err("--differential already names the candidate shard count".into());
    }
    if differential.is_some() && pattern != RatePattern::Uniform {
        return Err(
            "--differential compares serial vs sharded under uniform pacing; drop --pattern".into(),
        );
    }
    if shards.as_ref().is_some_and(|list| list.len() > 1) && clients.is_none() {
        return Err("--shards with multiple counts is the scaling curve; add --clients N".into());
    }
    if shards.as_ref().is_some_and(|list| list.len() > 1) && scale.is_some() {
        return Err("--shards with multiple counts replaces --scale; use one of them".into());
    }
    Ok(Args {
        path: path.ok_or_else(usage)?,
        sut: sut.ok_or_else(usage)?,
        rate,
        options,
        faults,
        chaos,
        netem,
        fault_seed,
        clients,
        loop_model,
        load_seed,
        scale,
        assert_achieved,
        shards,
        differential,
        pattern,
    })
}

/// Applies an a-priori fault pipeline: reads the stream, injects, writes
/// the derived stream to a scratch file, and returns `(path, description)`.
fn materialize_faults(path: &str, spec: &str, seed: u64) -> Result<(String, String), String> {
    let pipeline = parse_pipeline(spec)?;
    let stream =
        gt_core::GraphStream::read_from_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    let faulty = pipeline.inject(stream, seed);
    let out = std::env::temp_dir().join(format!("gt-run-faulty-{}-{seed}.csv", std::process::id()));
    faulty
        .write_to_file(&out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok((out.to_string_lossy().into_owned(), pipeline.describe()))
}

/// Runs one load cell and prints its per-class summary. Returns the
/// outcome for the scaling table / assertion.
fn run_load_cell(
    path: &str,
    registry: &SutRegistry,
    args: &Args,
    sut: &str,
    options: &SutOptions,
    connections: usize,
    rate: f64,
) -> Result<LoadSutRunOutcome, String> {
    let mut plan = FileRunPlan::new(path, rate).at_level(EvaluationLevel::Level1);
    plan.load = Some(
        LoadPlan::single(connections, rate, args.loop_model, args.load_seed)
            .with_pattern(args.pattern.clone()),
    );
    if let Some(spec) = &args.netem {
        let schedule =
            NetemSchedule::parse(spec, args.fault_seed).map_err(|e| format!("--netem {e}"))?;
        plan = plan.with_netem(NetemPlan::new(schedule));
    }
    run_load_file_sut_experiment(plan, registry, sut, options).map_err(|e| e.to_string())
}

/// Prints the netem recovery table: one row per journaled network fault,
/// correlated against the chosen throughput series.
fn print_netem_recovery(windows: &[RecoveryWindow], rate_series: &str) {
    if windows.is_empty() {
        println!("\n# netem recovery: no network faults fired");
        return;
    }
    println!(
        "\n# netem recovery vs {rate_series} (recovered = {:.0}% of pre-fault rate)",
        RECOVERY_FRACTION * 100.0
    );
    println!(
        "{:<44} {:>8} {:>10} {:>7} {:>9}",
        "fault", "t[s]", "dip[e/s]", "depth", "ttr[s]"
    );
    for w in windows {
        let ttr = w
            .time_to_recover_secs
            .map_or_else(|| "never".to_owned(), |t| format!("{t:.2}"));
        println!(
            "{:<44} {:>8.2} {:>10.0} {:>6.0}% {:>9}",
            w.fault,
            w.t_fault_secs,
            w.dip_rate,
            w.dip_depth * 100.0,
            ttr
        );
        if let Some((action, t)) = &w.recovery {
            println!("  └ {action} at t={t:.2}s");
        }
    }
}

/// Checks the CI gate: achieved/offered at or above the threshold and
/// zero marker-ordering violations. Prints the verdict on failure.
fn gate_holds(outcome: &LoadSutRunOutcome, threshold: Option<f64>) -> bool {
    let Some(threshold) = threshold else {
        return true;
    };
    let ratio = outcome.load.achieved_ratio();
    let violations = outcome.load.listener.marker_violations;
    let mut ok = true;
    if ratio < threshold {
        eprintln!("gt-run: achieved/offered {ratio:.3} below threshold {threshold:.3}");
        ok = false;
    }
    if violations > 0 {
        eprintln!("gt-run: {violations} marker ordering violation(s)");
        ok = false;
    }
    ok
}

/// The multi-client path: a single load run, or the connections × rate
/// scaling grid when `--scale` is given.
fn run_load_mode(args: &Args, path: &str, registry: &SutRegistry) -> ExitCode {
    if let Some((connections_grid, rates)) = &args.scale {
        println!(
            "# gt-run ingress scaling curve: {} {} loop, seed {}",
            args.sut, args.loop_model, args.load_seed
        );
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10} {:>6}",
            "clients",
            "target[e/s]",
            "offered[e/s]",
            "achieved",
            "ratio",
            "p99[us]",
            "p999[us]",
            "viol"
        );
        let mut gate_ok = true;
        for &connections in connections_grid {
            for &rate in rates {
                let outcome = match run_load_cell(
                    path,
                    registry,
                    args,
                    &args.sut,
                    &args.options,
                    connections,
                    rate,
                ) {
                    Ok(outcome) => outcome,
                    Err(error) => {
                        eprintln!("gt-run: {connections} clients @ {rate:.0} e/s: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                let tail = gt_analysis::sojourn_quantiles(&outcome.log, "main");
                let (p99, p999) = tail.map_or((f64::NAN, f64::NAN), |t| (t.p99, t.p999));
                println!(
                    "{:>8} {:>12.0} {:>12.0} {:>12.0} {:>8.3} {:>10.0} {:>10.0} {:>6}",
                    connections,
                    rate,
                    outcome.load.offered_rate(),
                    outcome.load.achieved_rate(),
                    outcome.load.achieved_ratio(),
                    p99,
                    p999,
                    outcome.load.listener.marker_violations
                );
                gate_ok &= gate_holds(&outcome, args.assert_achieved);
            }
        }
        return if gate_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let connections = args.clients.unwrap_or(1);
    let outcome = match run_load_cell(
        path,
        registry,
        args,
        &args.sut,
        &args.options,
        connections,
        args.rate,
    ) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("gt-run: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# gt-run load: {} with {connections} clients, {} loop @ {:.0} e/s offered (seed {})",
        args.sut, args.loop_model, args.rate, args.load_seed
    );
    if let Some(spec) = &args.netem {
        println!("# netem schedule: {spec} (seed {})", args.fault_seed);
    }
    // A run that lost connections or clients still completes (the
    // barrier excuses dead connections) — surface the degradation.
    let degraded =
        outcome.load.listener.connections_lost > 0 || !outcome.load.client_failures.is_empty();
    println!(
        "run status          {:>12}",
        if degraded { "degraded" } else { "completed" }
    );
    println!("offered events      {:>12}", outcome.load.offered());
    println!("sent events         {:>12}", outcome.load.sent());
    println!("offered rate [e/s]  {:>12.0}", outcome.load.offered_rate());
    println!("achieved rate [e/s] {:>12.0}", outcome.load.achieved_rate());
    println!(
        "achieved/offered    {:>12.3}",
        outcome.load.achieved_ratio()
    );
    println!(
        "marker violations   {:>12}",
        outcome.load.listener.marker_violations
    );
    println!(
        "parse errors        {:>12}",
        outcome.load.listener.parse_errors
    );
    println!(
        "connections lost    {:>12}",
        outcome.load.listener.connections_lost
    );
    println!(
        "clients failed      {:>12}",
        outcome.load.client_failures.len()
    );
    println!("quiesced            {:>12}", outcome.quiesced);
    println!("\n# sojourn latency [us] per class (completion - scheduled arrival)");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "class", "n", "p50", "p99", "p999", "max"
    );
    for class in ["main"] {
        if let Some(t) = gt_analysis::sojourn_quantiles(&outcome.log, class) {
            println!(
                "{class:<10} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                t.n, t.p50, t.p99, t.p999, t.max
            );
        } else {
            println!("{class:<10} insufficient samples");
        }
    }
    println!("\n# {} final report", outcome.report.name);
    for (metric, value) in &outcome.report.summary {
        println!("{metric:<19} {value:>12.0}");
    }
    // Netem recovery: network faults correlated against the main class's
    // completion-rate series.
    if args.netem.is_some() {
        let windows = recovery_windows_from(
            &outcome.log,
            NETEM_SOURCE,
            "load",
            "achieved_rate.main",
            RECOVERY_FRACTION,
        );
        print_netem_recovery(&windows, "achieved_rate.main");
    }
    println!(
        "\n# merged result log: {} records",
        outcome.log.records().len()
    );
    if gate_holds(&outcome, args.assert_achieved) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The throughput-vs-shards scaling curve: one load cell per shard count
/// against the sharded variant, normalized by `gt_analysis::shard_scaling`.
fn run_shard_scaling_mode(
    args: &Args,
    path: &str,
    registry: &SutRegistry,
    counts: &[usize],
) -> ExitCode {
    let sut = sharded_name(&args.sut);
    let connections = args.clients.unwrap_or(1);
    println!(
        "# gt-run throughput-vs-shards: {sut}, {connections} clients, {} loop @ {:.0} e/s, seed {}",
        args.loop_model, args.rate, args.load_seed
    );
    let mut samples: Vec<(usize, f64)> = Vec::new();
    let mut gate_ok = true;
    for &shards in counts {
        let options = args.options.clone().set("shards", shards);
        let outcome =
            match run_load_cell(path, registry, args, &sut, &options, connections, args.rate) {
                Ok(outcome) => outcome,
                Err(error) => {
                    eprintln!("gt-run: shards={shards}: {error}");
                    return ExitCode::FAILURE;
                }
            };
        samples.push((shards, outcome.load.achieved_rate()));
        gate_ok &= gate_holds(&outcome, args.assert_achieved);
    }
    println!(
        "{:>8} {:>14} {:>10} {:>12}",
        "shards", "achieved[e/s]", "speedup", "efficiency"
    );
    for row in shard_scaling(&samples) {
        println!(
            "{:>8} {:>14.0} {:>10.2} {:>12.2}",
            row.shards, row.achieved, row.speedup, row.efficiency
        );
    }
    if gate_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The differential mode: the same stream through the serial platform at
/// `shards=1` and the sharded variant at `shards=N`, single connector
/// each; nonzero exit on any digest or computation divergence.
fn run_differential_mode(
    args: &Args,
    path: &str,
    registry: &SutRegistry,
    shards: usize,
) -> ExitCode {
    let stream = match gt_core::GraphStream::read_from_file(path) {
        Ok(stream) => stream,
        Err(error) => {
            eprintln!("gt-run: reading {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = serial_name(&args.sut).to_owned();
    let candidate = sharded_name(&args.sut);
    let baseline_options = args.options.clone().set("shards", 1);
    let candidate_options = args.options.clone().set("shards", shards);
    let outcome = match run_differential(
        &stream,
        args.rate,
        registry,
        (&baseline, &baseline_options),
        (&candidate, &candidate_options),
    ) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("gt-run: differential: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# gt-run differential: {baseline} (shards=1) vs {candidate} (shards={shards}) @ {:.0} e/s",
        args.rate
    );
    println!(
        "baseline events     {:>12.0}",
        outcome.baseline_report.get("events").unwrap_or(f64::NAN)
    );
    println!(
        "candidate events    {:>12.0}",
        outcome.candidate_report.get("events").unwrap_or(f64::NAN)
    );
    println!(
        "marker windows      {:>12}",
        outcome.baseline_digest.windows.len()
    );
    println!(
        "final vertices      {:>12}",
        outcome.baseline_digest.final_adjacency.len()
    );
    println!(
        "computations        {:>12}",
        // wcc + sssp + rank per window plus the final state
        3 * outcome.baseline_computations.len()
    );
    match &outcome.mismatch {
        None => {
            println!("verdict             {:>12}", "IDENTICAL");
            ExitCode::SUCCESS
        }
        Some(mismatch) => {
            println!("verdict             {:>12}", "DIVERGED");
            eprintln!("gt-run: differential mismatch: {mismatch}");
            ExitCode::FAILURE
        }
    }
}

/// What one matrix cell's factor assignment resolves to: a fully
/// validated run configuration. Built once per cell for fail-fast
/// validation, then again in the runner (cheap, pure string parsing).
struct CellPlan {
    stream: String,
    rate: f64,
    pattern: RatePattern,
    sut: String,
    options: SutOptions,
    /// 0 means single-sink replay; ≥ 1 switches to the load layer.
    clients: usize,
    loop_model: LoopModel,
    /// `;`-separated chaos schedule (matrix levels use `+` between
    /// clauses since `;` is reserved by the cell-id encoding).
    chaos: Option<String>,
    /// `;`-separated netem schedule, same `+` encoding as `chaos`.
    /// Valid for both single-sink and load cells.
    netem: Option<String>,
}

fn matrix_usage() -> String {
    format!(
        "usage: gt-run matrix <matrix.spec> [--stream <stream.csv>] [--journal <path>]\n\
         \x20 spec lines: matrix = NAME / repetitions = N / seed = N / design = full|ofat\n\
         \x20             factor NAME = LEVEL | LEVEL | ...\n\
         \x20 factors: sut (required, one of {}), rate, pattern\n\
         \x20          (uniform|diurnal:P:A|pareto:ALPHA:BURST:PEAK|flash:AT:F:HOLD),\n\
         \x20          shards, clients (0 = single-sink), loop, chaos (none or\n\
         \x20          clauses joined by `+`), netem (none or clauses joined by\n\
         \x20          `+`; valid in both modes), stream (per-cell file override)",
        builtin_registry().names().join("|")
    )
}

/// Resolves one cell's factor assignment into a [`CellPlan`], rejecting
/// unknown factor names and unparsable levels.
fn plan_cell(
    cell: &Assignment,
    default_stream: Option<&str>,
    registry: &SutRegistry,
) -> Result<CellPlan, String> {
    let mut plan = CellPlan {
        stream: default_stream.unwrap_or_default().to_owned(),
        rate: 10_000.0,
        pattern: RatePattern::Uniform,
        sut: String::new(),
        options: SutOptions::new(),
        clients: 0,
        loop_model: LoopModel::Open,
        chaos: None,
        netem: None,
    };
    let mut shards = None;
    for (name, value) in cell {
        match name.as_str() {
            "sut" => plan.sut = value.clone(),
            "stream" => plan.stream = value.clone(),
            "rate" => {
                plan.rate = value
                    .parse()
                    .map_err(|e| format!("bad rate `{value}`: {e}"))?;
                if !plan.rate.is_finite() || plan.rate <= 0.0 {
                    return Err(format!("rate `{value}` must be positive"));
                }
            }
            "pattern" => {
                plan.pattern = value
                    .parse()
                    .map_err(|e| format!("bad pattern `{value}`: {e}"))?;
            }
            "shards" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| format!("bad shard count `{value}`: {e}"))?;
                if n == 0 {
                    return Err("shards must be at least 1".into());
                }
                shards = Some(n);
            }
            "clients" => {
                plan.clients = value
                    .parse()
                    .map_err(|e| format!("bad client count `{value}`: {e}"))?;
            }
            "loop" => {
                plan.loop_model = value
                    .parse()
                    .map_err(|e| format!("bad loop model `{value}`: {e}"))?;
            }
            "chaos" => {
                if value != "none" {
                    plan.chaos = Some(value.replace('+', ";"));
                }
            }
            "netem" => {
                if value != "none" {
                    plan.netem = Some(value.replace('+', ";"));
                }
            }
            other => {
                return Err(format!(
                    "unknown factor `{other}` (known: sut, stream, rate, pattern, shards, \
                     clients, loop, chaos, netem)"
                ));
            }
        }
    }
    if plan.sut.is_empty() {
        return Err("the matrix needs a `sut` factor".into());
    }
    if let Some(n) = shards {
        plan.sut = sharded_name(&plan.sut);
        plan.options = plan.options.set("shards", n);
    }
    if !registry.names().contains(&plan.sut.as_str()) {
        return Err(format!(
            "unknown platform `{}` (known: {})",
            plan.sut,
            registry.names().join(", ")
        ));
    }
    if plan.stream.is_empty() {
        return Err("no stream for this cell: pass --stream or add a `stream` factor".into());
    }
    if plan.chaos.is_some() && plan.clients > 0 {
        return Err("chaos applies to single-sink cells; set clients to 0".into());
    }
    // Chaos/netem parse errors should surface during validation, not
    // after hours of completed cells (the seed only offsets jitter).
    if let Some(spec) = &plan.chaos {
        FaultSchedule::parse(spec, 0).map_err(|e| format!("bad chaos schedule: {e}"))?;
    }
    if let Some(spec) = &plan.netem {
        NetemSchedule::parse(spec, 0).map_err(|e| format!("bad netem schedule: {e}"))?;
    }
    Ok(plan)
}

/// Executes one cell-repetition and maps the outcome onto the journal's
/// `(status, headline metrics)` shape.
fn run_matrix_cell(
    plan: &CellPlan,
    seed: u64,
    registry: &SutRegistry,
) -> Result<CellRunResult, String> {
    if plan.clients > 0 {
        // Load mode: the load layer paces per-client arrival schedules,
        // so the rate pattern shapes the arrival intensity there.
        let mut file_plan =
            FileRunPlan::new(&plan.stream, plan.rate).at_level(EvaluationLevel::Level1);
        file_plan.load = Some(
            LoadPlan::single(plan.clients, plan.rate, plan.loop_model, seed)
                .with_pattern(plan.pattern.clone()),
        );
        let netem_cell = plan.netem.is_some();
        if let Some(spec) = &plan.netem {
            let schedule = NetemSchedule::parse(spec, seed).map_err(|e| format!("netem: {e}"))?;
            file_plan = file_plan.with_netem(NetemPlan::new(schedule));
        }
        let outcome = run_load_file_sut_experiment(file_plan, registry, &plan.sut, &plan.options)
            .map_err(|e| e.to_string())?;
        let mut metrics = vec![
            ("offered_rate".to_owned(), outcome.load.offered_rate()),
            ("achieved_rate".to_owned(), outcome.load.achieved_rate()),
            ("achieved_ratio".to_owned(), outcome.load.achieved_ratio()),
            (
                "marker_violations".to_owned(),
                outcome.load.listener.marker_violations as f64,
            ),
        ];
        if let Some(tail) = gt_analysis::sojourn_quantiles(&outcome.log, "main") {
            metrics.push(("p99_sojourn_us".to_owned(), tail.p99));
        }
        if netem_cell {
            metrics.push((
                "connections_lost".to_owned(),
                outcome.load.listener.connections_lost as f64,
            ));
        }
        return Ok(CellRunResult {
            status: RunStatus::Completed,
            metrics,
        });
    }

    // Single-sink replay: the pacer itself follows the rate pattern.
    let level = if plan.chaos.is_some() {
        EvaluationLevel::Level2
    } else {
        EvaluationLevel::Level1
    };
    let mut file_plan = FileRunPlan::new(&plan.stream, plan.rate).at_level(level);
    file_plan.session.replayer.pattern = plan.pattern.clone();
    file_plan.session.replayer.pattern_seed = seed;
    if let Some(spec) = &plan.chaos {
        let schedule = FaultSchedule::parse(spec, seed).map_err(|e| format!("chaos: {e}"))?;
        file_plan = file_plan
            .with_chaos(ChaosPlan::new(schedule))
            .with_watchdog(
                WatchdogConfig::stall_after(Duration::from_secs(30))
                    .with_deadline(Duration::from_secs(600)),
            );
    }
    if let Some(spec) = &plan.netem {
        let schedule = NetemSchedule::parse(spec, seed).map_err(|e| format!("netem: {e}"))?;
        file_plan = file_plan
            .with_netem(NetemPlan::new(schedule))
            .with_watchdog(
                WatchdogConfig::stall_after(Duration::from_secs(30))
                    .with_deadline(Duration::from_secs(600)),
            );
    }
    let outcome = run_file_sut_experiment(file_plan, registry, &plan.sut, &plan.options)
        .map_err(|e| e.to_string())?;
    let replay = &outcome.run.report.replay;
    Ok(CellRunResult {
        status: outcome.run.status.clone(),
        metrics: vec![
            ("achieved_rate".to_owned(), replay.achieved_rate),
            ("events".to_owned(), replay.graph_events as f64),
            ("duration_s".to_owned(), replay.duration_micros as f64 / 1e6),
        ],
    })
}

fn run_matrix_cli(argv: &[String]) -> Result<ExitCode, String> {
    let mut spec_path = None;
    let mut stream = None;
    let mut journal = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stream" => stream = Some(it.next().ok_or("--stream needs a path")?.clone()),
            "--journal" => journal = Some(it.next().ok_or("--journal needs a path")?.clone()),
            "--help" | "-h" => return Err(matrix_usage()),
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(other.to_owned())
            }
            other => return Err(format!("unknown argument `{other}`\n{}", matrix_usage())),
        }
    }
    let spec_path = spec_path.ok_or_else(matrix_usage)?;
    let text = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let matrix = ScenarioMatrix::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    let journal = journal.unwrap_or_else(|| format!("{spec_path}.journal.jsonl"));
    let registry = builtin_registry();

    // Fail fast: every cell must resolve to a runnable plan before the
    // first (possibly expensive) repetition starts.
    let cells = matrix.cells();
    if cells.is_empty() {
        return Err("the matrix has no cells; add `factor` lines".into());
    }
    for cell in &cells {
        plan_cell(cell, stream.as_deref(), &registry)
            .map_err(|e| format!("cell {}: {e}", cell_id(cell)))?;
    }

    print!("{matrix}");
    println!("journal: {journal}");
    let mut runner = |cell: &Assignment, _rep: u32, seed: u64| -> CellRunResult {
        let plan = plan_cell(cell, stream.as_deref(), &registry).expect("cells validated above");
        match run_matrix_cell(&plan, seed, &registry) {
            Ok(result) => result,
            Err(error) => {
                // The journal holds every finished repetition (flushed
                // per line), so aborting here loses nothing: rerunning
                // the same invocation resumes at this exact repetition.
                eprintln!("gt-run: cell {} failed: {error}", cell_id(cell));
                eprintln!("gt-run: completed runs are journaled in {journal}; rerun to resume");
                std::process::exit(1);
            }
        }
    };
    let mut progress = |cell: &str, rep: u32, resumed: bool| {
        if resumed {
            println!("  skip {cell} rep {rep} (journaled)");
        } else {
            println!("  ran  {cell} rep {rep}");
        }
    };
    let outcome =
        run_matrix_with_progress(&matrix, Path::new(&journal), &mut runner, &mut progress)
            .map_err(|e| format!("{journal}: {e}"))?;
    println!();
    print!("{}", render_matrix_table(&outcome.cells));
    println!(
        "matrix complete: {} runs total, {} executed, {} resumed from journal",
        outcome.progress.total, outcome.progress.executed, outcome.progress.resumed
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "matrix") {
        return match run_matrix_cli(&argv[1..]) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }

    let mut args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let registry = builtin_registry();

    // A single `--shards N` simply reroutes to the sharded variant with
    // that worker count; a list becomes the scaling-curve mode below.
    let shard_curve = match args.shards.take() {
        Some(list) if list.len() == 1 => {
            args.sut = sharded_name(&args.sut);
            args.options = args.options.clone().set("shards", list[0]);
            None
        }
        other => other,
    };

    // A-priori stream faults: derive the weaker stream before replay.
    let (path, fault_description, scratch) = match &args.faults {
        Some(spec) => match materialize_faults(&args.path, spec, args.fault_seed) {
            Ok((path, description)) => (path.clone(), Some(description), Some(path)),
            Err(error) => {
                eprintln!("gt-run: --faults {error}");
                return ExitCode::FAILURE;
            }
        },
        None => (args.path.clone(), None, None),
    };

    // Differential mode replaces the normal replay entirely: two
    // single-connector runs and a bit-exact comparison.
    if let Some(shards) = args.differential {
        let code = run_differential_mode(&args, &path, &registry, shards);
        if let Some(scratch) = scratch {
            let _ = std::fs::remove_file(scratch);
        }
        return code;
    }

    // The throughput-vs-shards curve: one load cell per shard count.
    if let Some(counts) = &shard_curve {
        let code = run_shard_scaling_mode(&args, &path, &registry, counts);
        if let Some(scratch) = scratch {
            let _ = std::fs::remove_file(scratch);
        }
        return code;
    }

    // Multi-client load mode bypasses the single-sink replay path
    // entirely: the load layer paces per-client arrival schedules.
    if args.clients.is_some() || args.scale.is_some() {
        let code = run_load_mode(&args, &path, &registry);
        if let Some(scratch) = scratch {
            let _ = std::fs::remove_file(scratch);
        }
        return code;
    }

    // Live chaos: parse the schedule, keep the journal for the summary,
    // and guard the run with the watchdog so a killed worker can never
    // hang the invocation.
    let mut plan = FileRunPlan::new(&path, args.rate).at_level(EvaluationLevel::Level2);
    // The pacer itself follows the rate pattern on the single-sink path;
    // the (pareto) pattern seed rides on --load-seed like the load path's.
    plan.session.replayer.pattern = args.pattern.clone();
    plan.session.replayer.pattern_seed = args.load_seed;
    let chaos_description = match &args.chaos {
        Some(spec) => match FaultSchedule::parse(spec, args.fault_seed) {
            Ok(schedule) => {
                let description = schedule.describe();
                plan = plan.with_chaos(ChaosPlan::new(schedule)).with_watchdog(
                    WatchdogConfig::stall_after(Duration::from_secs(30))
                        .with_deadline(Duration::from_secs(600)),
                );
                Some(description)
            }
            Err(error) => {
                eprintln!("gt-run: --chaos {error}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Network faults ride the same seed; the proxy front is started by
    // the SUT runner when the plan carries a netem schedule.
    if let Some(spec) = &args.netem {
        match NetemSchedule::parse(spec, args.fault_seed) {
            Ok(schedule) => plan = plan.with_netem(NetemPlan::new(schedule)),
            Err(error) => {
                eprintln!("gt-run: --netem {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    let outcome = match run_file_sut_experiment(plan, &registry, &args.sut, &args.options) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("gt-run: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(scratch) = scratch {
        let _ = std::fs::remove_file(scratch);
    }

    let replay = &outcome.run.report;
    println!("# gt-run: {} @ {} events/s", args.sut, args.rate);
    if let Some(faults) = &fault_description {
        println!("# stream faults: {faults} (seed {})", args.fault_seed);
    }
    if let Some(chaos) = &chaos_description {
        println!("# chaos schedule: {chaos} (seed {})", args.fault_seed);
    }
    if let Some(spec) = &args.netem {
        println!("# netem schedule: {spec} (seed {})", args.fault_seed);
    }
    println!("run status          {:>12}", outcome.run.status.to_string());
    println!("entries read        {:>12}", replay.entries_read);
    println!("graph events        {:>12}", replay.replay.graph_events);
    println!(
        "replay duration [s] {:>12.2}",
        replay.replay.duration_micros as f64 / 1e6
    );
    println!("achieved rate [e/s] {:>12.0}", replay.replay.achieved_rate);
    println!(
        "emit latency p99 [us] {:>10}",
        replay.emit_latency.quantile_upper_bound(0.99)
    );
    println!("quiesced            {:>12}", outcome.quiesced);
    println!("\n# {} final report", outcome.report.name);
    for (metric, value) in &outcome.report.summary {
        println!("{metric:<19} {value:>12.0}");
    }
    // Level-2 stage-pair latencies of the 1-in-N sampled events, when the
    // platform granted in-source tracing.
    let mut traced = false;
    for metric in TRACE_STAGE_METRICS {
        let values: Vec<f64> = outcome
            .run
            .log
            .series(TRACE_SOURCE, metric)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        if let Some(q) = Quantiles::of(&values) {
            if !traced {
                println!("\n# sampled stage latencies [us] (median / p99, n)");
                traced = true;
            }
            println!(
                "{metric:<26} {:>8.0} / {:>8.0}  n={}",
                q.median,
                q.p99,
                values.len()
            );
        }
    }
    // Chaos recovery summary: one row per injected fault, correlated
    // against the ingress-rate series.
    if chaos_description.is_some() {
        let windows = recovery_windows(&outcome.run.log, RECOVERY_FRACTION);
        if windows.is_empty() {
            println!("\n# chaos recovery: no faults fired");
        } else {
            println!(
                "\n# chaos recovery (recovered = {:.0}% of pre-fault rate)",
                RECOVERY_FRACTION * 100.0
            );
            println!(
                "{:<40} {:>8} {:>10} {:>7} {:>9} {:>6}",
                "fault", "t[s]", "dip[e/s]", "depth", "ttr[s]", "lost"
            );
            for w in &windows {
                let ttr = w
                    .time_to_recover_secs
                    .map_or_else(|| "never".to_owned(), |t| format!("{t:.2}"));
                println!(
                    "{:<40} {:>8.2} {:>10.0} {:>6.0}% {:>9} {:>6}",
                    w.fault,
                    w.t_fault_secs,
                    w.dip_rate,
                    w.dip_depth * 100.0,
                    ttr,
                    w.events_lost
                );
                if let Some((action, t)) = &w.recovery {
                    println!("  └ {action} at t={t:.2}s");
                }
            }
        }
    }
    // Netem recovery: network faults correlated against the replayer's
    // ingress-rate series.
    if args.netem.is_some() {
        let windows = recovery_windows_from(
            &outcome.run.log,
            NETEM_SOURCE,
            "replayer",
            "ingress_rate",
            RECOVERY_FRACTION,
        );
        print_netem_recovery(&windows, "ingress_rate");
    }
    println!(
        "\n# merged result log: {} records",
        outcome.run.log.records().len()
    );
    if outcome.run.status.is_aborted() {
        eprintln!("gt-run: run aborted by watchdog: {}", outcome.run.status);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! `gt-run` — one registry-selected experiment from the command line.
//!
//! Streams a graph stream file through the file-backed replay pipeline
//! into a platform chosen by name from the built-in [`SutRegistry`]
//! (`tide-store`, `tide-graph`), samples its native metrics at Level 1+,
//! and prints the platform's final report plus run health. This is the
//! paper's Figure 2 loop as a tool: generate a stream with `gt-generate`,
//! then run it against any registered system under test.
//!
//! ```text
//! gt-run <stream.csv> --sut <name> [--rate R] [--opt key=value ...]
//! ```

use std::process::ExitCode;

use gt_analysis::{Quantiles, TRACE_SOURCE, TRACE_STAGE_METRICS};
use gt_harness::{run_file_sut_experiment, EvaluationLevel, FileRunPlan, SutOptions, SutRegistry};

struct Args {
    path: String,
    sut: String,
    rate: f64,
    options: SutOptions,
}

/// The registry of built-in platforms.
fn builtin_registry() -> SutRegistry {
    let mut registry = SutRegistry::new();
    tide_store::sut::register(&mut registry);
    tide_graph::sut::register(&mut registry);
    registry
}

fn usage() -> String {
    let names = builtin_registry().names().join("|");
    format!("usage: gt-run <stream.csv> --sut <{names}> [--rate R] [--opt key=value ...]")
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut sut = None;
    let mut rate: f64 = 10_000.0;
    let mut options = SutOptions::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sut" => sut = Some(args.next().ok_or("--sut needs a value")?),
            "--rate" => {
                rate = args
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad rate: {e}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("rate must be positive".into());
                }
            }
            "--opt" => {
                let pair = args.next().ok_or("--opt needs key=value")?;
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad option `{pair}`: expected key=value"))?;
                options.insert(key, value);
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        path: path.ok_or_else(usage)?,
        sut: sut.ok_or_else(usage)?,
        rate,
        options,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let registry = builtin_registry();
    let plan = FileRunPlan::new(&args.path, args.rate).at_level(EvaluationLevel::Level2);
    let outcome = match run_file_sut_experiment(plan, &registry, &args.sut, &args.options) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("gt-run: {error}");
            return ExitCode::FAILURE;
        }
    };

    let replay = &outcome.run.report;
    println!("# gt-run: {} @ {} events/s", args.sut, args.rate);
    println!("entries read        {:>12}", replay.entries_read);
    println!("graph events        {:>12}", replay.replay.graph_events);
    println!(
        "replay duration [s] {:>12.2}",
        replay.replay.duration_micros as f64 / 1e6
    );
    println!("achieved rate [e/s] {:>12.0}", replay.replay.achieved_rate);
    println!(
        "emit latency p99 [us] {:>10}",
        replay.emit_latency.quantile_upper_bound(0.99)
    );
    println!("quiesced            {:>12}", outcome.quiesced);
    println!("\n# {} final report", outcome.report.name);
    for (metric, value) in &outcome.report.summary {
        println!("{metric:<19} {value:>12.0}");
    }
    // Level-2 stage-pair latencies of the 1-in-N sampled events, when the
    // platform granted in-source tracing.
    let mut traced = false;
    for metric in TRACE_STAGE_METRICS {
        let values: Vec<f64> = outcome
            .run
            .log
            .series(TRACE_SOURCE, metric)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        if let Some(q) = Quantiles::of(&values) {
            if !traced {
                println!("\n# sampled stage latencies [us] (median / p99, n)");
                traced = true;
            }
            println!(
                "{metric:<26} {:>8.0} / {:>8.0}  n={}",
                q.median,
                q.p99,
                values.len()
            );
        }
    }
    println!(
        "\n# merged result log: {} records",
        outcome.run.log.records().len()
    );
    ExitCode::SUCCESS
}

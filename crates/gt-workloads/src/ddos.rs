//! The DDoS use case (§2.4): a stream-based graph system "supervises a set
//! of servers … modeling traffic flow between the servers and remote
//! clients", and must detect "anomalous temporal traffic patterns".
//!
//! The generated stream has three phases, delimited by markers:
//!
//! 1. **Baseline** — benign clients connect to servers chosen uniformly;
//!    flow edges carry byte counts; flows are periodically updated and
//!    occasionally expire (edge removals).
//! 2. **Attack** (`attack-start` … `attack-end`) — a botnet of fresh
//!    clients floods one victim server; in-degree and traffic of the
//!    victim spike.
//! 3. **Recovery** — attack flows expire; baseline traffic continues.
//!
//! Detection is exercised in the `ddos_detection` example: in-degree and
//! traffic-rate monitoring over the evolving graph flags the victim
//! during phase 2.

use gt_core::prelude::*;
use gt_generator::GenContext;
use rand::RngExt;

/// Configuration of the DDoS stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdosWorkload {
    /// Monitored servers (vertices 0..servers).
    pub servers: u64,
    /// Benign client arrivals during the baseline phase.
    pub baseline_clients: u64,
    /// Botnet clients attacking during the attack phase.
    pub attack_clients: u64,
    /// The victim server (index into 0..servers).
    pub victim: u64,
    /// Flow-update events per phase (traffic volume churn).
    pub updates_per_phase: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdosWorkload {
    fn default() -> Self {
        DdosWorkload {
            servers: 10,
            baseline_clients: 300,
            attack_clients: 600,
            victim: 0,
            updates_per_phase: 200,
            seed: 7,
        }
    }
}

/// Marker emitted when the attack begins.
pub const ATTACK_START: &str = "attack-start";
/// Marker emitted when the attack ends.
pub const ATTACK_END: &str = "attack-end";

impl DdosWorkload {
    /// Generates the three-phase stream.
    pub fn generate(&self) -> GraphStream {
        assert!(self.victim < self.servers, "victim must be a server");
        let mut ctx = GenContext::new(self.seed);
        let mut stream = GraphStream::new();

        // Servers first.
        for _ in 0..self.servers {
            let id = ctx.allocate_vertex_id();
            let event = GraphEvent::AddVertex {
                id,
                state: State::from_fields([("role", "server".to_owned())]),
            };
            ctx.apply(&event).expect("fresh server id");
            stream.push(StreamEntry::Graph(event));
        }

        // Phase 1: baseline clients with benign flows.
        let mut client_ids = Vec::new();
        for _ in 0..self.baseline_clients {
            let client = self.spawn_client(&mut ctx, &mut stream, "client");
            client_ids.push(client);
            let server = VertexId(ctx.rng.random_range(0..self.servers));
            self.open_flow(&mut ctx, &mut stream, client, server, 1_000.0, 50_000.0);
        }
        self.churn_updates(&mut ctx, &mut stream, self.updates_per_phase);

        // Phase 2: the attack.
        stream.push(StreamEntry::marker(ATTACK_START));
        let victim = VertexId(self.victim);
        let mut bots = Vec::new();
        for _ in 0..self.attack_clients {
            let bot = self.spawn_client(&mut ctx, &mut stream, "client");
            bots.push(bot);
            // Attack flows look individually benign: modest byte counts.
            self.open_flow(&mut ctx, &mut stream, bot, victim, 500.0, 5_000.0);
        }
        self.churn_updates(&mut ctx, &mut stream, self.updates_per_phase);
        stream.push(StreamEntry::marker(ATTACK_END));

        // Phase 3: recovery — attack flows expire.
        for bot in bots {
            let edge = EdgeId::new(bot, victim);
            if ctx.graph.has_edge(edge) {
                let event = GraphEvent::RemoveEdge { id: edge };
                ctx.apply(&event).expect("flow exists");
                stream.push(StreamEntry::Graph(event));
            }
        }
        self.churn_updates(&mut ctx, &mut stream, self.updates_per_phase);
        stream
    }

    fn spawn_client(&self, ctx: &mut GenContext, stream: &mut GraphStream, role: &str) -> VertexId {
        let id = ctx.allocate_vertex_id();
        let event = GraphEvent::AddVertex {
            id,
            state: State::from_fields([("role", role.to_owned())]),
        };
        ctx.apply(&event).expect("fresh client id");
        stream.push(StreamEntry::Graph(event));
        id
    }

    fn open_flow(
        &self,
        ctx: &mut GenContext,
        stream: &mut GraphStream,
        client: VertexId,
        server: VertexId,
        min_bytes: f64,
        max_bytes: f64,
    ) {
        let id = EdgeId::new(client, server);
        if ctx.graph.has_edge(id) {
            return;
        }
        let bytes = ctx.rng.random_range(min_bytes..=max_bytes);
        let event = GraphEvent::AddEdge {
            id,
            state: State::weight(bytes),
        };
        ctx.apply(&event).expect("fresh flow");
        stream.push(StreamEntry::Graph(event));
    }

    /// Traffic volume churn: update the byte counter of random live flows.
    fn churn_updates(&self, ctx: &mut GenContext, stream: &mut GraphStream, count: u64) {
        for _ in 0..count {
            let Some(edge) = ctx.uniform_edge() else {
                return;
            };
            let bytes = ctx.rng.random_range(1_000.0..=100_000.0);
            let event = GraphEvent::UpdateEdge {
                id: edge,
                state: State::weight(bytes),
            };
            ctx.apply(&event).expect("edge exists");
            stream.push(StreamEntry::Graph(event));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::EvolvingGraph;

    #[test]
    fn stream_applies_and_has_markers() {
        let workload = DdosWorkload::default();
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        g.check_invariants().unwrap();
        assert_eq!(stream.stats().markers, 2);
        let names: Vec<&str> = stream
            .entries()
            .iter()
            .filter_map(|e| match e {
                StreamEntry::Marker(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, [ATTACK_START, ATTACK_END]);
    }

    #[test]
    fn victim_in_degree_spikes_during_attack() {
        let workload = DdosWorkload::default();
        let stream = workload.generate();
        let mut g = EvolvingGraph::new();
        let mut at_attack_end = 0usize;
        for entry in stream.entries() {
            match entry {
                StreamEntry::Graph(e) => {
                    g.apply(e).unwrap();
                }
                StreamEntry::Marker(name) if name == ATTACK_END => {
                    at_attack_end = g.in_degree(VertexId(workload.victim)).unwrap();
                }
                _ => {}
            }
        }
        let final_deg = g.in_degree(VertexId(workload.victim)).unwrap();
        // During the attack the victim holds the botnet flows…
        assert!(
            at_attack_end as u64 >= workload.attack_clients,
            "attack in-degree {at_attack_end}"
        );
        // …and recovery removes them.
        assert!(
            (final_deg as u64) < workload.attack_clients / 2,
            "recovered in-degree {final_deg}"
        );
    }

    #[test]
    fn non_victim_servers_keep_moderate_degree() {
        let workload = DdosWorkload::default();
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        // Expected baseline flows per server ≈ baseline/servers = 30.
        for s in 0..workload.servers {
            if s == workload.victim {
                continue;
            }
            let deg = g.in_degree(VertexId(s)).unwrap() as u64;
            assert!(deg < workload.baseline_clients / 2, "server {s}: {deg}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DdosWorkload::default().generate();
        let b = DdosWorkload::default().generate();
        assert_eq!(a, b);
        let c = DdosWorkload {
            seed: 8,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "victim must be a server")]
    fn invalid_victim_rejected() {
        DdosWorkload {
            victim: 99,
            servers: 10,
            ..Default::default()
        }
        .generate();
    }
}

//! The blockchain use case (§2.4): "new blocks represent micro-batches of
//! transactions … a stream-based graph processing system consumes the
//! stream of transactions and maintains a combined transaction/wallet
//! graph" with live statistics (balances, average transaction values,
//! distribution of holdings).
//!
//! The stream models wallets as vertices (state: balance) and transfers as
//! edges (state: amount). Blocks are delimited by `block-N` markers; each
//! block contains a micro-batch of transactions. Repeat transfers between
//! the same wallet pair update the edge (cumulative volume) instead of
//! duplicating it. Wallet balances are updated with each transfer, so
//! balance queries are exact on the reconstructed graph.

use std::collections::HashMap;

use gt_core::prelude::*;
use gt_generator::GenContext;
use rand::RngExt;

/// Configuration of the blockchain stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockchainWorkload {
    /// Number of blocks.
    pub blocks: u64,
    /// Transactions per block.
    pub txs_per_block: u64,
    /// Probability that a transaction involves a brand-new wallet.
    pub new_wallet_prob: f64,
    /// Initial balance granted to each new wallet (the "coinbase").
    pub initial_balance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlockchainWorkload {
    fn default() -> Self {
        BlockchainWorkload {
            blocks: 50,
            txs_per_block: 40,
            new_wallet_prob: 0.15,
            initial_balance: 100.0,
            seed: 13,
        }
    }
}

impl BlockchainWorkload {
    /// Generates the stream.
    pub fn generate(&self) -> GraphStream {
        assert!((0.0..=1.0).contains(&self.new_wallet_prob));
        let mut ctx = GenContext::new(self.seed);
        let mut stream = GraphStream::new();
        let mut balances: HashMap<VertexId, f64> = HashMap::new();
        let mut volumes: HashMap<EdgeId, f64> = HashMap::new();

        // Genesis wallets.
        for _ in 0..4 {
            self.new_wallet(&mut ctx, &mut stream, &mut balances);
        }

        for block in 0..self.blocks {
            for _ in 0..self.txs_per_block {
                if ctx.rng.random_bool(self.new_wallet_prob) {
                    self.new_wallet(&mut ctx, &mut stream, &mut balances);
                }
                self.transfer(&mut ctx, &mut stream, &mut balances, &mut volumes);
            }
            stream.push(StreamEntry::marker(format!("block-{block}")));
        }
        stream
    }

    fn new_wallet(
        &self,
        ctx: &mut GenContext,
        stream: &mut GraphStream,
        balances: &mut HashMap<VertexId, f64>,
    ) -> VertexId {
        let id = ctx.allocate_vertex_id();
        let event = GraphEvent::AddVertex {
            id,
            state: State::from_fields([("balance", format!("{}", self.initial_balance))]),
        };
        ctx.apply(&event).expect("fresh wallet id");
        stream.push(StreamEntry::Graph(event));
        balances.insert(id, self.initial_balance);
        id
    }

    fn transfer(
        &self,
        ctx: &mut GenContext,
        stream: &mut GraphStream,
        balances: &mut HashMap<VertexId, f64>,
        volumes: &mut HashMap<EdgeId, f64>,
    ) {
        // Sender: a wallet with funds; receiver: preferential attachment
        // (exchanges and merchants accumulate counterparties).
        for _ in 0..64 {
            let from = ctx.uniform_vertex();
            let to = ctx.degree_proportional_vertex();
            if from == to {
                continue;
            }
            let from_balance = balances.get(&from).copied().unwrap_or(0.0);
            if from_balance < 1.0 {
                continue;
            }
            let amount = ctx.rng.random_range(1.0..=from_balance);
            // Apply the transfer: balances move, the edge accumulates.
            *balances.get_mut(&from).expect("sender exists") -= amount;
            *balances.entry(to).or_insert(0.0) += amount;

            let edge = EdgeId::new(from, to);
            let total = volumes.entry(edge).or_insert(0.0);
            *total += amount;
            let edge_event = if ctx.graph.has_edge(edge) {
                GraphEvent::UpdateEdge {
                    id: edge,
                    state: State::weight(*total),
                }
            } else {
                GraphEvent::AddEdge {
                    id: edge,
                    state: State::weight(*total),
                }
            };
            ctx.apply(&edge_event).expect("validated edge event");
            stream.push(StreamEntry::Graph(edge_event));

            // Balance updates for both parties.
            for wallet in [from, to] {
                let event = GraphEvent::UpdateVertex {
                    id: wallet,
                    state: State::from_fields([("balance", format!("{}", balances[&wallet]))]),
                };
                ctx.apply(&event).expect("wallet exists");
                stream.push(StreamEntry::Graph(event));
            }
            return;
        }
        // All candidates were broke or self-pairs; skip this transaction.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::EvolvingGraph;

    #[test]
    fn stream_applies_and_blocks_are_marked() {
        let workload = BlockchainWorkload::default();
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        g.check_invariants().unwrap();
        assert_eq!(stream.stats().markers, workload.blocks as usize);
    }

    #[test]
    fn total_balance_is_conserved_per_reconstruction() {
        let workload = BlockchainWorkload {
            blocks: 20,
            txs_per_block: 30,
            ..Default::default()
        };
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        // Sum of balances = wallets * initial (transfers conserve money).
        let total: f64 = g
            .vertices_with_state()
            .filter_map(|(_, s)| s.get_field("balance")?.parse::<f64>().ok())
            .sum();
        let expected = g.vertex_count() as f64 * workload.initial_balance;
        assert!(
            (total - expected).abs() < 1e-6 * expected,
            "total {total} expected {expected}"
        );
    }

    #[test]
    fn no_negative_balances() {
        let stream = BlockchainWorkload::default().generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        for (id, state) in g.vertices_with_state() {
            let balance: f64 = state.get_field("balance").unwrap().parse().unwrap();
            assert!(balance >= -1e-9, "wallet {id} balance {balance}");
        }
    }

    #[test]
    fn edge_volume_accumulates() {
        let stream = BlockchainWorkload {
            blocks: 30,
            txs_per_block: 50,
            new_wallet_prob: 0.02,
            ..Default::default()
        }
        .generate();
        // With few wallets and many txs, repeat pairs must occur and be
        // expressed as UPDATE_EDGE rather than duplicate ADD_EDGE.
        let stats = stream.stats();
        assert!(stats.count(EventKind::UpdateEdge) > 0);
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            BlockchainWorkload::default().generate(),
            BlockchainWorkload::default().generate()
        );
    }
}

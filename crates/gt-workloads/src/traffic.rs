//! A road-traffic workload — the third evolving-graph domain §3.2 names
//! ("social networks, computer networks or road traffic networks").
//!
//! The road network itself is a fixed grid (topology changes are rare:
//! an occasional road closure/reopening), while the *state* churns
//! constantly: edge weights carry current travel times that follow a
//! rush-hour profile plus noise. This is the paper's "huge numbers of
//! state update operations" regime — the opposite corner of the workload
//! space from the growth-dominated social stream, which is exactly why a
//! benchmark suite needs both (§3.2 "Graph Evolution Properties").

use gt_core::prelude::*;
use gt_generator::GenContext;
use rand::RngExt;

/// Configuration of the road-traffic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficWorkload {
    /// Grid height (junction rows).
    pub rows: u64,
    /// Grid width (junction columns).
    pub cols: u64,
    /// Simulated ticks; each tick updates a batch of road segments.
    pub ticks: u64,
    /// Travel-time updates per tick.
    pub updates_per_tick: u64,
    /// Probability per tick of closing a random open road segment.
    pub closure_prob: f64,
    /// Base travel time of a free-flowing segment (arbitrary units).
    pub base_travel_time: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficWorkload {
    fn default() -> Self {
        TrafficWorkload {
            rows: 10,
            cols: 10,
            ticks: 100,
            updates_per_tick: 40,
            closure_prob: 0.05,
            base_travel_time: 10.0,
            seed: 5,
        }
    }
}

/// Marker emitted when the rush-hour phase begins (congestion rises).
pub const RUSH_HOUR_START: &str = "rush-hour-start";
/// Marker emitted when the rush-hour phase ends.
pub const RUSH_HOUR_END: &str = "rush-hour-end";

impl TrafficWorkload {
    /// Generates the stream: grid bootstrap with weighted segments, then
    /// `ticks` rounds of travel-time updates with a rush-hour congestion
    /// profile in the middle third, plus rare closures/reopenings.
    pub fn generate(&self) -> GraphStream {
        assert!(
            self.rows >= 2 && self.cols >= 2,
            "grid needs both dimensions"
        );
        let mut ctx = GenContext::new(self.seed);
        let mut stream = GraphStream::new();

        // Bootstrap: junctions + road segments in both directions, each
        // with an initial free-flow travel time.
        for id in 0..self.rows * self.cols {
            let event = GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::from_fields([("junction", id.to_string())]),
            };
            ctx.apply(&event).expect("fresh junction");
            stream.push(StreamEntry::Graph(event));
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let id = r * self.cols + c;
                let connect = |a: u64, b: u64, ctx: &mut GenContext, out: &mut GraphStream| {
                    for (src, dst) in [(a, b), (b, a)] {
                        let event = GraphEvent::AddEdge {
                            id: EdgeId::from((src, dst)),
                            state: State::weight(self.base_travel_time),
                        };
                        ctx.apply(&event).expect("fresh segment");
                        out.push(StreamEntry::Graph(event));
                    }
                };
                if c + 1 < self.cols {
                    connect(id, id + 1, &mut ctx, &mut stream);
                }
                if r + 1 < self.rows {
                    connect(id, id + self.cols, &mut ctx, &mut stream);
                }
            }
        }
        stream.push(StreamEntry::marker("bootstrap-done"));

        // Closed segments (removed edges) awaiting reopening, with their
        // base weight.
        let mut closed: Vec<EdgeId> = Vec::new();
        let rush_start = self.ticks / 3;
        let rush_end = self.ticks * 2 / 3;

        for tick in 0..self.ticks {
            if tick == rush_start {
                stream.push(StreamEntry::marker(RUSH_HOUR_START));
            }
            if tick == rush_end {
                stream.push(StreamEntry::marker(RUSH_HOUR_END));
            }
            // Congestion factor: elevated during rush hour.
            let congestion = if (rush_start..rush_end).contains(&tick) {
                3.0
            } else {
                1.0
            };

            for _ in 0..self.updates_per_tick {
                let Some(edge) = ctx.uniform_edge() else {
                    break;
                };
                let noise: f64 = ctx.rng.random_range(0.8..1.4);
                let travel_time = self.base_travel_time * congestion * noise;
                let event = GraphEvent::UpdateEdge {
                    id: edge,
                    state: State::weight(travel_time),
                };
                ctx.apply(&event).expect("segment exists");
                stream.push(StreamEntry::Graph(event));
            }

            // Rare topology churn: close a road, reopen a closed one.
            if ctx.rng.random_bool(self.closure_prob) {
                if let Some(edge) = ctx.uniform_edge() {
                    let event = GraphEvent::RemoveEdge { id: edge };
                    ctx.apply(&event).expect("segment exists");
                    stream.push(StreamEntry::Graph(event));
                    closed.push(edge);
                }
            }
            if !closed.is_empty() && ctx.rng.random_bool(self.closure_prob) {
                let edge = closed.remove(0);
                let event = GraphEvent::AddEdge {
                    id: edge,
                    state: State::weight(self.base_travel_time),
                };
                ctx.apply(&event).expect("segment was closed");
                stream.push(StreamEntry::Graph(event));
            }
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::EvolvingGraph;

    #[test]
    fn stream_applies_and_is_update_dominated() {
        let workload = TrafficWorkload::default();
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        g.check_invariants().unwrap();
        let stats = stream.stats();
        // State churn dominates: far more updates than topology changes.
        assert!(
            stats.count(EventKind::UpdateEdge) > stats.graph_events / 2,
            "updates {} of {}",
            stats.count(EventKind::UpdateEdge),
            stats.graph_events
        );
        assert_eq!(stats.markers, 3);
    }

    #[test]
    fn rush_hour_raises_mean_travel_time() {
        let workload = TrafficWorkload {
            closure_prob: 0.0,
            ..Default::default()
        };
        let stream = workload.generate();
        let mut g = EvolvingGraph::new();
        let mut before_rush = 0.0;
        let mut during_rush = 0.0;
        let mean_travel = |g: &EvolvingGraph| -> f64 {
            let weights: Vec<f64> = g.edges().filter_map(|(_, s)| s.as_weight()).collect();
            weights.iter().sum::<f64>() / weights.len() as f64
        };
        for entry in stream.entries() {
            match entry {
                StreamEntry::Graph(e) => {
                    g.apply(e).unwrap();
                }
                StreamEntry::Marker(name) if name == RUSH_HOUR_START => {
                    before_rush = mean_travel(&g);
                }
                StreamEntry::Marker(name) if name == RUSH_HOUR_END => {
                    during_rush = mean_travel(&g);
                }
                _ => {}
            }
        }
        assert!(
            during_rush > before_rush * 1.5,
            "rush {during_rush} vs before {before_rush}"
        );
        // And recovery after rush hour.
        let after = mean_travel(&g);
        assert!(after < during_rush, "after {after} vs rush {during_rush}");
    }

    #[test]
    fn closures_never_corrupt_the_graph() {
        let workload = TrafficWorkload {
            closure_prob: 0.5,
            ticks: 200,
            ..Default::default()
        };
        let stream = workload.generate();
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        g.check_invariants().unwrap();
        // The grid keeps all junctions.
        assert_eq!(g.vertex_count() as u64, workload.rows * workload.cols);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            TrafficWorkload::default().generate(),
            TrafficWorkload::default().generate()
        );
        let other = TrafficWorkload {
            seed: 6,
            ..Default::default()
        };
        assert_ne!(TrafficWorkload::default().generate(), other.generate());
    }

    #[test]
    #[should_panic(expected = "grid needs")]
    fn rejects_degenerate_grid() {
        TrafficWorkload {
            rows: 1,
            ..Default::default()
        }
        .generate();
    }
}

//! The chaos journal: what actually happened, when.
//!
//! Every fault the [`crate::ChaosSink`] fires — and every recovery it
//! observes — is appended to a shared journal. The harness folds the
//! journal into the merged `ResultLog` under the `chaos` source so fault
//! and recovery markers sit chronologically next to the stream metrics
//! they perturbed, ready for `gt_analysis::recovery_windows`.

use std::sync::{Arc, Mutex};

use gt_metrics::MetricRecord;

/// The metric source label chaos records are folded under.
pub const CHAOS_SOURCE: &str = "chaos";

/// Whether a journal entry marks a fault striking or the system's path
/// back to normal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEventKind {
    /// A scheduled fault fired.
    Fault,
    /// The corresponding recovery action completed (reconnect, stall end,
    /// worker restart).
    Recovery,
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Run-relative time, microseconds.
    pub t_micros: u64,
    /// Graph-event sequence number at which it happened (events handed to
    /// the sink so far).
    pub seq: u64,
    /// Fault or recovery.
    pub kind: ChaosEventKind,
    /// Human-readable description (`disconnect(lose=300)`,
    /// `restart(worker=1) ok`).
    pub description: String,
    /// Graph events lost to this fault (0 for stalls and recoveries).
    pub events_lost: u64,
}

/// A shared, append-only record of chaos activity. Clones share the log.
#[derive(Debug, Clone, Default)]
pub struct ChaosJournal {
    events: Arc<Mutex<Vec<ChaosEvent>>>,
}

impl ChaosJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry.
    pub fn push(&self, event: ChaosEvent) {
        self.events.lock().expect("chaos journal lock").push(event);
    }

    /// A snapshot of everything journaled so far, in order.
    pub fn events(&self) -> Vec<ChaosEvent> {
        self.events.lock().expect("chaos journal lock").clone()
    }

    /// The deterministic signature of a run: `(seq, description)` pairs.
    /// Identical `(schedule, seed)` against the same stream must produce
    /// identical signatures — timestamps are excluded because wall time
    /// varies between runs.
    pub fn signature(&self) -> Vec<(u64, String)> {
        self.events()
            .into_iter()
            .map(|e| (e.seq, e.description))
            .collect()
    }

    /// Renders the journal as metric records under [`CHAOS_SOURCE`]: a
    /// text record per entry (`fault` / `recovery` metric, the description
    /// as value) plus an `events_lost` int record for lossy faults.
    pub fn records(&self) -> Vec<MetricRecord> {
        self.records_with_source(CHAOS_SOURCE)
    }

    /// Like [`ChaosJournal::records`] but folded under an arbitrary source
    /// label, so other fault layers (gt-netem) can reuse the journal
    /// machinery without colliding with the chaos source.
    pub fn records_with_source(&self, source: &str) -> Vec<MetricRecord> {
        let mut out = Vec::new();
        for event in self.events() {
            let metric = match event.kind {
                ChaosEventKind::Fault => "fault",
                ChaosEventKind::Recovery => "recovery",
            };
            out.push(MetricRecord::text(
                event.t_micros,
                source,
                metric,
                event.description.clone(),
            ));
            if event.events_lost > 0 {
                out.push(MetricRecord::int(
                    event.t_micros,
                    source,
                    "events_lost",
                    event.events_lost as i64,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, kind: ChaosEventKind, description: &str, lost: u64) -> ChaosEvent {
        ChaosEvent {
            t_micros: seq * 10,
            seq,
            kind,
            description: description.to_owned(),
            events_lost: lost,
        }
    }

    #[test]
    fn journal_is_shared_and_ordered() {
        let journal = ChaosJournal::new();
        let clone = journal.clone();
        journal.push(entry(5, ChaosEventKind::Fault, "disconnect(lose=2)", 2));
        clone.push(entry(7, ChaosEventKind::Recovery, "reconnected", 0));
        assert_eq!(journal.events().len(), 2);
        assert_eq!(
            journal.signature(),
            vec![
                (5, "disconnect(lose=2)".to_owned()),
                (7, "reconnected".to_owned()),
            ]
        );
    }

    #[test]
    fn records_carry_loss_counts() {
        let journal = ChaosJournal::new();
        journal.push(entry(5, ChaosEventKind::Fault, "disconnect(lose=2)", 2));
        journal.push(entry(7, ChaosEventKind::Recovery, "reconnected", 0));
        let records = journal.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].source, CHAOS_SOURCE);
        assert_eq!(records[0].metric, "fault");
        assert_eq!(records[1].metric, "events_lost");
        assert_eq!(records[2].metric, "recovery");
    }
}

//! Deterministic fault schedules.
//!
//! A [`FaultSchedule`] pins every runtime fault to a position *in the
//! stream* — a graph-event sequence number or a marker label — never to
//! wall-clock time. That is the determinism contract: the same
//! `(schedule, seed)` against the same stream fires the same faults at the
//! same stream positions in the same order, run after run, so chaos
//! experiments are as repeatable as the a-priori `gt-faults`
//! transformations (paper §3.2).

use std::time::Duration;

/// Where in the stream a fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// After the given number of *graph events* have been handed to the
    /// sink (1-based: `AtSeq(100)` fires when event 100 arrives).
    AtSeq(u64),
    /// When the named marker passes through the sink.
    AtMarker(String),
}

/// What happens when a trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A forced transport disconnect: the next `lose` graph events are
    /// dropped on the floor (the platform never sees them), then delivery
    /// resumes — a connection reset with loss.
    Disconnect {
        /// Graph events lost while the transport is down.
        lose: u64,
    },
    /// A consumer stall / latency spike: delivery blocks for the duration,
    /// backpressuring the replayer.
    Stall {
        /// How long delivery blocks.
        duration: Duration,
    },
    /// A partial batch write: the next batched delivery is truncated to
    /// its first `keep` entries, the rest are lost — a write that died
    /// mid-buffer.
    PartialBatch {
        /// Entries of the truncated batch that still get through.
        keep: usize,
    },
    /// Kills a platform worker (store shard / engine worker) through the
    /// platform's [`gt_sut::WorkerSupervisor`], optionally restarting it a
    /// fixed number of graph events later.
    CrashWorker {
        /// The worker index to kill.
        worker: usize,
        /// Graph events after the crash at which to restart the worker;
        /// `None` leaves it dead for the rest of the run.
        restart_after: Option<u64>,
    },
}

impl FaultKind {
    /// Short human-readable form for logs and journals.
    pub fn describe(&self) -> String {
        match self {
            FaultKind::Disconnect { lose } => format!("disconnect(lose={lose})"),
            FaultKind::Stall { duration } => format!("stall(ms={})", duration.as_millis()),
            FaultKind::PartialBatch { keep } => format!("partial(keep={keep})"),
            FaultKind::CrashWorker {
                worker,
                restart_after,
            } => match restart_after {
                Some(n) => format!("crash(worker={worker}, restart=+{n})"),
                None => format!("crash(worker={worker})"),
            },
        }
    }
}

/// One scheduled fault: a trigger plus what it does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Where it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub kind: FaultKind,
}

/// A full, replayable chaos plan for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// The scheduled faults. Order matters only for faults sharing a
    /// trigger position; they fire in schedule order.
    pub faults: Vec<ScheduledFault>,
    /// Recorded with the run so future randomized fault kinds stay
    /// replayable; the current kinds are position-deterministic and do not
    /// consume it.
    pub seed: u64,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            faults: Vec::new(),
            seed,
        }
    }

    /// Appends a fault at a graph-event sequence number (builder style).
    #[must_use]
    pub fn at_seq(mut self, seq: u64, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault {
            trigger: FaultTrigger::AtSeq(seq),
            kind,
        });
        self
    }

    /// Appends a fault at a marker label (builder style).
    #[must_use]
    pub fn at_marker(mut self, marker: impl Into<String>, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault {
            trigger: FaultTrigger::AtMarker(marker.into()),
            kind,
        });
        self
    }

    /// Whether the schedule has no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// One-line description for run headers: the clauses that built it.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|f| {
                let at = match &f.trigger {
                    FaultTrigger::AtSeq(seq) => format!("@{seq}"),
                    FaultTrigger::AtMarker(name) => format!("@marker:{name}"),
                };
                format!("{}{at}", f.kind.describe())
            })
            .collect();
        parts.join("; ")
    }

    /// Parses the `gt-run --chaos` spec syntax: semicolon-separated
    /// clauses of the form `kind@trigger[,key=value…]`, where `trigger` is
    /// a graph-event sequence number or `marker:NAME`.
    ///
    /// ```text
    /// crash@5000,worker=1,restart=2000
    /// crash@marker:phase-2,worker=0
    /// disconnect@8000,lose=300
    /// stall@4000,ms=50
    /// partial@6000,keep=10
    /// ```
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut schedule = FaultSchedule::new(seed);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            schedule.faults.push(parse_clause(clause)?);
        }
        if schedule.is_empty() {
            return Err("empty chaos spec".into());
        }
        Ok(schedule)
    }
}

fn parse_clause(clause: &str) -> Result<ScheduledFault, String> {
    let mut parts = clause.split(',').map(str::trim);
    let head = parts.next().expect("split yields at least one part");
    let (kind_name, trigger) = head
        .split_once('@')
        .ok_or_else(|| format!("bad chaos clause `{clause}`: expected kind@trigger"))?;
    let trigger = if let Some(name) = trigger.strip_prefix("marker:") {
        if name.is_empty() {
            return Err(format!("bad chaos clause `{clause}`: empty marker name"));
        }
        FaultTrigger::AtMarker(name.to_owned())
    } else {
        FaultTrigger::AtSeq(
            trigger
                .parse()
                .map_err(|_| format!("bad chaos trigger `{trigger}`: expected N or marker:NAME"))?,
        )
    };

    let mut params = std::collections::BTreeMap::new();
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad chaos parameter `{part}`: expected key=value"))?;
        if params.insert(key, value).is_some() {
            return Err(format!("duplicate chaos parameter `{key}` in `{clause}`"));
        }
    }
    let take_u64 = |params: &mut std::collections::BTreeMap<&str, &str>, key: &str| {
        params
            .remove(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad chaos parameter `{key}={v}`: expected integer"))
            })
            .transpose()
    };

    let kind = match kind_name {
        "disconnect" => FaultKind::Disconnect {
            lose: take_u64(&mut params, "lose")?
                .ok_or_else(|| format!("`{clause}`: disconnect needs lose=N"))?,
        },
        "stall" => FaultKind::Stall {
            duration: Duration::from_millis(
                take_u64(&mut params, "ms")?
                    .ok_or_else(|| format!("`{clause}`: stall needs ms=N"))?,
            ),
        },
        "partial" => FaultKind::PartialBatch {
            keep: take_u64(&mut params, "keep")?
                .ok_or_else(|| format!("`{clause}`: partial needs keep=N"))?
                as usize,
        },
        "crash" => FaultKind::CrashWorker {
            worker: take_u64(&mut params, "worker")?
                .ok_or_else(|| format!("`{clause}`: crash needs worker=N"))?
                as usize,
            restart_after: take_u64(&mut params, "restart")?,
        },
        other => {
            return Err(format!(
                "unknown chaos kind `{other}` (expected disconnect|stall|partial|crash)"
            ))
        }
    };
    if let Some(key) = params.keys().next() {
        return Err(format!("unknown chaos parameter `{key}` in `{clause}`"));
    }
    Ok(ScheduledFault { trigger, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_trigger() {
        let schedule = FaultSchedule::parse(
            "crash@5000,worker=1,restart=2000; crash@marker:phase-2,worker=0; \
             disconnect@8000,lose=300; stall@4000,ms=50; partial@6000,keep=10",
            7,
        )
        .unwrap();
        assert_eq!(schedule.seed, 7);
        assert_eq!(schedule.faults.len(), 5);
        assert_eq!(
            schedule.faults[0],
            ScheduledFault {
                trigger: FaultTrigger::AtSeq(5000),
                kind: FaultKind::CrashWorker {
                    worker: 1,
                    restart_after: Some(2000),
                },
            }
        );
        assert_eq!(
            schedule.faults[1].trigger,
            FaultTrigger::AtMarker("phase-2".into())
        );
        assert_eq!(
            schedule.faults[1].kind,
            FaultKind::CrashWorker {
                worker: 0,
                restart_after: None,
            }
        );
        assert_eq!(schedule.faults[2].kind, FaultKind::Disconnect { lose: 300 });
        assert_eq!(
            schedule.faults[3].kind,
            FaultKind::Stall {
                duration: Duration::from_millis(50),
            }
        );
        assert_eq!(
            schedule.faults[4].kind,
            FaultKind::PartialBatch { keep: 10 }
        );
    }

    #[test]
    fn describe_round_trips_the_spec_shape() {
        let schedule =
            FaultSchedule::parse("crash@100,worker=0,restart=50; stall@marker:mid,ms=5", 0)
                .unwrap();
        assert_eq!(
            schedule.describe(),
            "crash(worker=0, restart=+50)@100; stall(ms=5)@marker:mid"
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "   ",
            "crash",
            "crash@",
            "crash@100",            // missing worker
            "warp@100,worker=0",    // unknown kind
            "crash@100,worker=x",   // non-integer
            "crash@100,worker=0,x", // not key=value
            "crash@marker:,worker=0",
            "disconnect@100",
            "stall@100",
            "partial@100",
            "crash@100,worker=0,worker=1",
            "crash@100,worker=0,frob=1",
        ] {
            assert!(
                FaultSchedule::parse(bad, 0).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn builder_matches_parser() {
        let built = FaultSchedule::new(3)
            .at_seq(10, FaultKind::Disconnect { lose: 5 })
            .at_marker("mid", FaultKind::PartialBatch { keep: 2 });
        let parsed = FaultSchedule::parse("disconnect@10,lose=5; partial@marker:mid,keep=2", 3);
        assert_eq!(built, parsed.unwrap());
    }
}

//! The chaos middleware sink.
//!
//! [`ChaosSink`] wraps any [`EventSink`] and injects the faults of a
//! [`FaultSchedule`] while a run is live: forced disconnects that lose
//! events, consumer stalls that backpressure the replayer, truncated batch
//! writes, and scheduled worker crashes delivered through the platform's
//! [`WorkerSupervisor`]. Everything it does is journaled with the stream
//! position it happened at, so runs are replayable and analyzable.

use std::io;
use std::sync::Arc;

use gt_core::prelude::*;
use gt_metrics::Clock;
use gt_replayer::{EventSink, SinkEvent};
use gt_sut::WorkerSupervisor;

use crate::journal::{ChaosEvent, ChaosEventKind, ChaosJournal};
use crate::schedule::{FaultKind, FaultSchedule, FaultTrigger};

/// An [`EventSink`] middleware that injects scheduled transport faults and
/// worker crashes into a live replay.
///
/// Sequence numbering counts *graph events handed to this sink*, 1-based;
/// a fault at `AtSeq(n)` fires when event `n` arrives and applies to that
/// event onward. Markers and control entries are never dropped (phase
/// structure survives, as with `gt-faults`), and marker-triggered faults
/// fire after the marker itself has been delivered.
pub struct ChaosSink<S> {
    inner: S,
    pending: Vec<Option<crate::schedule::ScheduledFault>>,
    journal: ChaosJournal,
    supervisor: Option<Arc<dyn WorkerSupervisor>>,
    clock: Arc<dyn Clock>,
    seq: u64,
    /// Graph events still to drop for an active disconnect.
    blackout: u64,
    /// Events dropped by the active disconnect so far.
    blackout_lost: u64,
    /// A fired-but-unapplied partial-batch fault.
    partial_keep: Option<usize>,
    /// `(due_seq, worker)` restarts scheduled by crash faults.
    restarts: Vec<(u64, usize)>,
}

impl<S: EventSink> ChaosSink<S> {
    /// Wraps `inner`, arming every fault of the schedule.
    pub fn new(
        inner: S,
        schedule: &FaultSchedule,
        journal: ChaosJournal,
        clock: Arc<dyn Clock>,
    ) -> Self {
        ChaosSink {
            inner,
            pending: schedule.faults.iter().cloned().map(Some).collect(),
            journal,
            supervisor: None,
            clock,
            seq: 0,
            blackout: 0,
            blackout_lost: 0,
            partial_keep: None,
            restarts: Vec::new(),
        }
    }

    /// Attaches the platform's crash/restart surface. Without one, crash
    /// faults are journaled as undeliverable instead of firing.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Arc<dyn WorkerSupervisor>) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// The journal this sink writes to.
    pub fn journal(&self) -> &ChaosJournal {
        &self.journal
    }

    /// Graph events handed to this sink so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn note(&self, kind: ChaosEventKind, description: String, events_lost: u64) {
        self.journal.push(ChaosEvent {
            t_micros: self.clock.now_micros(),
            seq: self.seq,
            kind,
            description,
            events_lost,
        });
    }

    fn fire(&mut self, index: usize) {
        let fault = self.pending[index].take().expect("fault fired twice");
        match fault.kind {
            FaultKind::Disconnect { lose } => {
                self.note(
                    ChaosEventKind::Fault,
                    fault.kind.describe(),
                    0, // actual losses land on the recovery entry
                );
                self.blackout = lose;
                self.blackout_lost = 0;
            }
            FaultKind::Stall { duration } => {
                self.note(ChaosEventKind::Fault, fault.kind.describe(), 0);
                std::thread::sleep(duration);
                self.note(
                    ChaosEventKind::Recovery,
                    format!("stall ended after {} ms", duration.as_millis()),
                    0,
                );
            }
            FaultKind::PartialBatch { keep } => {
                self.note(ChaosEventKind::Fault, fault.kind.describe(), 0);
                self.partial_keep = Some(keep);
            }
            FaultKind::CrashWorker {
                worker,
                restart_after,
            } => {
                let delivered = match &self.supervisor {
                    Some(supervisor) => supervisor.inject_crash(worker),
                    None => false,
                };
                let outcome = if delivered {
                    "ok"
                } else if self.supervisor.is_none() {
                    "no supervisor"
                } else {
                    "refused"
                };
                self.note(
                    ChaosEventKind::Fault,
                    format!("{} {outcome}", fault.kind.describe()),
                    0,
                );
                if delivered {
                    if let Some(after) = restart_after {
                        self.restarts.push((self.seq.saturating_add(after), worker));
                    }
                }
            }
        }
    }

    /// Fires every armed fault whose sequence trigger is due.
    fn fire_due_seq(&mut self) {
        for i in 0..self.pending.len() {
            let due = matches!(
                &self.pending[i],
                Some(f) if matches!(f.trigger, FaultTrigger::AtSeq(at) if at <= self.seq)
            );
            if due {
                self.fire(i);
            }
        }
    }

    /// Fires every armed fault waiting on this marker label.
    fn fire_due_marker(&mut self, name: &str) {
        for i in 0..self.pending.len() {
            let due = matches!(
                &self.pending[i],
                Some(f) if matches!(&f.trigger, FaultTrigger::AtMarker(m) if m == name)
            );
            if due {
                self.fire(i);
            }
        }
    }

    /// Performs restarts that have come due.
    fn run_due_restarts(&mut self) {
        while let Some(pos) = self.restarts.iter().position(|&(due, _)| due <= self.seq) {
            let (_, worker) = self.restarts.remove(pos);
            let ok = self
                .supervisor
                .as_ref()
                .map(|s| s.restart_worker(worker))
                .unwrap_or(false);
            self.note(
                ChaosEventKind::Recovery,
                format!(
                    "restart(worker={worker}) {}",
                    if ok { "ok" } else { "failed" }
                ),
                0,
            );
        }
    }

    /// Advances the stream position for one graph event and returns
    /// whether it should be delivered (false = lost to a blackout).
    fn admit_graph_event(&mut self) -> bool {
        self.seq += 1;
        self.fire_due_seq();
        self.run_due_restarts();
        if self.blackout > 0 {
            self.blackout -= 1;
            self.blackout_lost += 1;
            if self.blackout == 0 {
                self.note(
                    ChaosEventKind::Recovery,
                    format!("reconnected after {} lost events", self.blackout_lost),
                    self.blackout_lost,
                );
                self.blackout_lost = 0;
            }
            return false;
        }
        true
    }
}

impl<S: EventSink> EventSink for ChaosSink<S> {
    fn open(&mut self) -> io::Result<()> {
        self.inner.open()
    }

    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        match entry {
            StreamEntry::Graph(_) => {
                if self.admit_graph_event() {
                    self.inner.send(entry)?;
                }
                Ok(())
            }
            StreamEntry::Marker(name) => {
                self.inner.send(entry)?;
                let name = name.clone();
                self.fire_due_marker(&name);
                Ok(())
            }
            StreamEntry::Control(_) => self.inner.send(entry),
        }
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        let mut surviving: Vec<SharedEntry> = Vec::with_capacity(batch.len());
        let mut markers: Vec<String> = Vec::new();
        for entry in batch {
            match entry.as_ref() {
                StreamEntry::Graph(_) => {
                    if self.admit_graph_event() {
                        surviving.push(entry.clone());
                    }
                }
                StreamEntry::Marker(name) => {
                    surviving.push(entry.clone());
                    markers.push(name.clone());
                }
                StreamEntry::Control(_) => surviving.push(entry.clone()),
            }
        }
        if let Some(keep) = self.partial_keep.take() {
            if surviving.len() > keep {
                let dropped = (surviving.len() - keep) as u64;
                surviving.truncate(keep);
                self.note(
                    ChaosEventKind::Recovery,
                    format!("partial batch applied, dropped {dropped}"),
                    dropped,
                );
            } else {
                // Batch was already short enough; nothing lost.
                self.note(
                    ChaosEventKind::Recovery,
                    "partial batch applied, dropped 0".to_owned(),
                    0,
                );
            }
        }
        if !surviving.is_empty() {
            self.inner.send_batch(&surviving)?;
        }
        // Marker-triggered faults fire after their marker is delivered.
        for name in markers {
            self.fire_due_marker(&name);
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) -> io::Result<()> {
        if self.blackout > 0 && self.blackout_lost > 0 {
            self.note(
                ChaosEventKind::Recovery,
                format!(
                    "stream ended mid-disconnect, {} events lost",
                    self.blackout_lost
                ),
                self.blackout_lost,
            );
            self.blackout = 0;
            self.blackout_lost = 0;
        }
        self.inner.close()
    }

    fn drain_events(&mut self) -> Vec<SinkEvent> {
        self.inner.drain_events()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    use gt_metrics::ManualClock;
    use gt_replayer::CollectSink;

    use super::*;

    fn vertex(i: u64) -> StreamEntry {
        StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::empty(),
        })
    }

    fn chaos(schedule: FaultSchedule) -> (ChaosSink<CollectSink>, ChaosJournal) {
        let journal = ChaosJournal::new();
        let sink = ChaosSink::new(
            CollectSink::new(),
            &schedule,
            journal.clone(),
            Arc::new(ManualClock::new()),
        );
        (sink, journal)
    }

    #[test]
    fn disconnect_loses_exactly_lose_events() {
        let schedule = FaultSchedule::new(0).at_seq(3, FaultKind::Disconnect { lose: 4 });
        let (mut sink, journal) = chaos(schedule);
        for i in 0..10 {
            sink.send(&vertex(i)).unwrap();
        }
        sink.close().unwrap();
        // Events 3..=6 (1-based seq) are lost: 10 in, 6 delivered.
        assert_eq!(sink.inner.entries.len(), 6);
        let signature = journal.signature();
        assert_eq!(signature.len(), 2);
        assert_eq!(signature[0], (3, "disconnect(lose=4)".to_owned()));
        assert_eq!(
            signature[1],
            (6, "reconnected after 4 lost events".to_owned())
        );
        let lost: u64 = journal.events().iter().map(|e| e.events_lost).sum();
        assert_eq!(lost, 4);
    }

    #[test]
    fn disconnect_truncated_by_stream_end_still_reports_loss() {
        let schedule = FaultSchedule::new(0).at_seq(4, FaultKind::Disconnect { lose: 100 });
        let (mut sink, journal) = chaos(schedule);
        for i in 0..6 {
            sink.send(&vertex(i)).unwrap();
        }
        sink.close().unwrap();
        assert_eq!(sink.inner.entries.len(), 3);
        let lost: u64 = journal.events().iter().map(|e| e.events_lost).sum();
        assert_eq!(lost, 3);
    }

    #[test]
    fn markers_survive_blackouts_and_trigger_faults() {
        let schedule = FaultSchedule::new(0)
            .at_seq(1, FaultKind::Disconnect { lose: 100 })
            .at_marker(
                "mid",
                FaultKind::Stall {
                    duration: Duration::from_millis(1),
                },
            );
        let (mut sink, journal) = chaos(schedule);
        sink.send(&vertex(0)).unwrap();
        sink.send(&StreamEntry::marker("mid")).unwrap();
        sink.send(&vertex(1)).unwrap();
        sink.close().unwrap();
        // Both graph events lost, marker delivered.
        assert_eq!(sink.inner.entries.len(), 1);
        assert!(sink.inner.entries[0].is_marker());
        let descriptions: Vec<String> = journal
            .events()
            .iter()
            .map(|e| e.description.clone())
            .collect();
        assert!(descriptions.iter().any(|d| d == "stall(ms=1)"));
        assert!(descriptions.iter().any(|d| d.starts_with("stall ended")));
    }

    #[test]
    fn partial_batch_truncates_next_batch_only() {
        let schedule = FaultSchedule::new(0).at_seq(2, FaultKind::PartialBatch { keep: 1 });
        let (mut sink, journal) = chaos(schedule);
        let batch: Vec<SharedEntry> = (0..4).map(|i| SharedEntry::new(vertex(i))).collect();
        sink.send_batch(&batch).unwrap();
        let batch2: Vec<SharedEntry> = (4..8).map(|i| SharedEntry::new(vertex(i))).collect();
        sink.send_batch(&batch2).unwrap();
        sink.close().unwrap();
        // First batch truncated to 1, second untouched.
        assert_eq!(sink.inner.entries.len(), 1 + 4);
        let lost: u64 = journal.events().iter().map(|e| e.events_lost).sum();
        assert_eq!(lost, 3);
    }

    #[test]
    fn crash_without_supervisor_is_journaled_not_fatal() {
        let schedule = FaultSchedule::new(0).at_seq(
            2,
            FaultKind::CrashWorker {
                worker: 0,
                restart_after: Some(1),
            },
        );
        let (mut sink, journal) = chaos(schedule);
        for i in 0..5 {
            sink.send(&vertex(i)).unwrap();
        }
        sink.close().unwrap();
        assert_eq!(sink.inner.entries.len(), 5);
        assert_eq!(
            journal.signature(),
            vec![(2, "crash(worker=0, restart=+1) no supervisor".to_owned())]
        );
    }

    struct FakeSupervisor {
        crashes: AtomicUsize,
        restarts: AtomicUsize,
    }

    impl WorkerSupervisor for FakeSupervisor {
        fn worker_count(&self) -> usize {
            2
        }
        fn inject_crash(&self, worker: usize) -> bool {
            self.crashes.fetch_add(1, Ordering::SeqCst);
            worker < 2
        }
        fn restart_worker(&self, worker: usize) -> bool {
            self.restarts.fetch_add(1, Ordering::SeqCst);
            worker < 2
        }
    }

    #[test]
    fn crash_and_scheduled_restart_reach_the_supervisor() {
        let supervisor = Arc::new(FakeSupervisor {
            crashes: AtomicUsize::new(0),
            restarts: AtomicUsize::new(0),
        });
        let schedule = FaultSchedule::new(0).at_seq(
            2,
            FaultKind::CrashWorker {
                worker: 1,
                restart_after: Some(3),
            },
        );
        let journal = ChaosJournal::new();
        let mut sink = ChaosSink::new(
            CollectSink::new(),
            &schedule,
            journal.clone(),
            Arc::new(ManualClock::new()),
        )
        .with_supervisor(supervisor.clone());
        for i in 0..8 {
            sink.send(&vertex(i)).unwrap();
        }
        sink.close().unwrap();
        assert_eq!(supervisor.crashes.load(Ordering::SeqCst), 1);
        assert_eq!(supervisor.restarts.load(Ordering::SeqCst), 1);
        assert_eq!(
            journal.signature(),
            vec![
                (2, "crash(worker=1, restart=+3) ok".to_owned()),
                (5, "restart(worker=1) ok".to_owned()),
            ]
        );
        // No events were lost by the crash fault itself.
        assert_eq!(sink.inner.entries.len(), 8);
    }

    #[test]
    fn identical_schedule_yields_identical_signature() {
        let spec = "disconnect@3,lose=2; partial@7,keep=1; crash@9,worker=0";
        let run = || {
            let schedule = FaultSchedule::parse(spec, 42).unwrap();
            let (mut sink, journal) = chaos(schedule);
            for i in 0..6 {
                sink.send(&vertex(i)).unwrap();
            }
            let batch: Vec<SharedEntry> = (6..12).map(|i| SharedEntry::new(vertex(i))).collect();
            sink.send_batch(&batch).unwrap();
            sink.close().unwrap();
            journal.signature()
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run());
    }

    #[test]
    fn mixed_batch_counts_only_graph_events() {
        let schedule = FaultSchedule::new(0).at_marker("mid", FaultKind::Disconnect { lose: 1 });
        let (mut sink, journal) = chaos(schedule);
        let batch: Vec<SharedEntry> = vec![
            SharedEntry::new(vertex(0)),
            SharedEntry::new(StreamEntry::marker("mid")),
            SharedEntry::new(vertex(1)),
        ];
        sink.send_batch(&batch).unwrap();
        sink.close().unwrap();
        // The marker fires *after* batch delivery, so both graph events of
        // this batch got through; the blackout applies to later events.
        assert_eq!(sink.inner.entries.len(), 3);
        sink.send(&vertex(2)).unwrap();
        assert_eq!(sink.inner.entries.len(), 3);
        assert_eq!(journal.events().last().unwrap().events_lost, 1);
    }
}

#![warn(missing_docs)]

//! # gt-chaos
//!
//! **Runtime** fault injection for GraphTides experiments — the live
//! counterpart of `gt-faults` (which derives faulty streams a-priori,
//! paper §3.2). Where `gt-faults` asks *"how does the platform handle a
//! stream that was already unreliable?"*, this crate asks *"what happens
//! when faults strike **during** the run?"* — transport resets, consumer
//! stalls, truncated writes, and crashed platform workers.
//!
//! * [`schedule`] — [`FaultSchedule`]: faults pinned to stream positions
//!   (graph-event sequence numbers or marker labels), never wall-clock
//!   time, so identical `(schedule, seed)` yields an identical fault event
//!   sequence across runs. Parses the `gt-run --chaos` spec syntax.
//! * [`sink`] — [`ChaosSink`]: middleware wrapping any
//!   [`gt_replayer::EventSink`], injecting transport faults in-line and
//!   delivering worker crashes/restarts through the platform's
//!   [`gt_sut::WorkerSupervisor`].
//! * [`journal`] — [`ChaosJournal`]: the shared record of every fault and
//!   recovery, folded into the harness `ResultLog` under the
//!   [`CHAOS_SOURCE`] label for `gt_analysis::recovery_windows`.

pub mod journal;
pub mod schedule;
pub mod sink;

pub use journal::{ChaosEvent, ChaosEventKind, ChaosJournal, CHAOS_SOURCE};
pub use schedule::{FaultKind, FaultSchedule, FaultTrigger, ScheduledFault};
pub use sink::ChaosSink;

//! Generation context: the shadow graph, entity indexes for O(1) random
//! selection, the id allocator, and the selection strategies of Table 3.

use std::collections::HashMap;

use gt_core::prelude::*;
use gt_graph::{ApplyError, EvolvingGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::ZipfSampler;

/// How a target vertex is selected for an operation (Table 3 "Vertex/Edge
/// Selection Functions").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VertexSelector {
    /// Uniform over existing vertices.
    Uniform,
    /// Probability proportional to current total degree ("Zipf based on
    /// degree, bias towards strongly connected vertices"). Implemented
    /// exactly by drawing a uniform edge and one of its endpoints; falls
    /// back to uniform when the graph has no edges.
    DegreeProportional,
    /// Bias toward weakly connected vertices ("bias towards less connected
    /// vertices"): a tournament of `k` uniform candidates, keeping the one
    /// with the smallest total degree.
    LowDegreeTournament {
        /// Tournament size (≥ 1); larger means stronger bias.
        k: usize,
    },
    /// Zipf over vertex recency rank: rank 1 is the *most recently added*
    /// vertex. Models sustained attention on fresh entities.
    ZipfRecency {
        /// Zipf exponent.
        exponent: f64,
    },
}

impl VertexSelector {
    fn select(&self, ctx: &mut GenContext) -> Option<VertexId> {
        if ctx.vertices.is_empty() {
            return None;
        }
        match *self {
            VertexSelector::Uniform => Some(ctx.uniform_vertex()),
            VertexSelector::DegreeProportional => Some(ctx.degree_proportional_vertex()),
            VertexSelector::LowDegreeTournament { k } => Some(ctx.low_degree_vertex(k.max(1))),
            VertexSelector::ZipfRecency { exponent } => {
                let sampler = ZipfSampler::new(exponent);
                let rank = sampler.sample(ctx.vertices.len(), &mut ctx.rng);
                // Rank 1 = newest = last element of the insertion-ordered list.
                Some(ctx.vertices[ctx.vertices.len() - rank])
            }
        }
    }
}

/// Mutable generation state shared with [`crate::EvolutionModel`]
/// implementations — the Rust analogue of Listing 1's `globalContext`, plus
/// the shadow graph the generator uses to keep streams valid.
pub struct GenContext {
    /// The shadow graph: the exact graph a strict consumer would hold after
    /// the events emitted so far.
    pub graph: EvolvingGraph,
    /// Deterministic RNG for all selection randomness.
    pub rng: StdRng,
    vertices: Vec<VertexId>,
    vertex_pos: HashMap<VertexId, usize>,
    edges: Vec<EdgeId>,
    edge_pos: HashMap<EdgeId, usize>,
    next_id: u64,
    /// Free-form numeric registers for custom models (Listing 1 lets the
    /// user thread arbitrary context; custom [`crate::EvolutionModel`]s own
    /// their state, this map is for quick prototyping).
    pub registers: HashMap<String, f64>,
}

impl GenContext {
    /// Creates an empty context with a deterministic RNG.
    pub fn new(seed: u64) -> Self {
        GenContext {
            graph: EvolvingGraph::new(),
            rng: StdRng::seed_from_u64(seed),
            vertices: Vec::new(),
            vertex_pos: HashMap::new(),
            edges: Vec::new(),
            edge_pos: HashMap::new(),
            next_id: 0,
            registers: HashMap::new(),
        }
    }

    /// Number of live vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Allocates a fresh, never-used vertex id.
    pub fn allocate_vertex_id(&mut self) -> VertexId {
        let id = VertexId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Selects with the given strategy.
    pub fn select_vertex(&mut self, selector: VertexSelector) -> Option<VertexId> {
        selector.select(self)
    }

    /// A uniformly random live vertex.
    ///
    /// # Panics
    /// If the graph has no vertices.
    pub fn uniform_vertex(&mut self) -> VertexId {
        let i = self.rng.random_range(0..self.vertices.len());
        self.vertices[i]
    }

    /// A vertex drawn with probability proportional to total degree
    /// (uniform edge, then a uniformly chosen endpoint). Falls back to
    /// uniform if the graph has no edges.
    pub fn degree_proportional_vertex(&mut self) -> VertexId {
        if self.edges.is_empty() {
            return self.uniform_vertex();
        }
        let e = self.edges[self.rng.random_range(0..self.edges.len())];
        if self.rng.random_bool(0.5) {
            e.src
        } else {
            e.dst
        }
    }

    /// The lowest-total-degree vertex among `k` uniform candidates.
    pub fn low_degree_vertex(&mut self, k: usize) -> VertexId {
        let mut best = self.uniform_vertex();
        let mut best_deg = self.graph.degree(best).unwrap_or(0);
        for _ in 1..k {
            let cand = self.uniform_vertex();
            let deg = self.graph.degree(cand).unwrap_or(0);
            if deg < best_deg {
                best = cand;
                best_deg = deg;
            }
        }
        best
    }

    /// A uniformly random live edge, if any exist.
    pub fn uniform_edge(&mut self) -> Option<EdgeId> {
        if self.edges.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..self.edges.len());
        Some(self.edges[i])
    }

    /// Applies an event to the shadow graph, keeping the entity indexes in
    /// sync. Strict semantics: precondition violations are returned.
    pub fn apply(&mut self, event: &GraphEvent) -> Result<(), ApplyError> {
        // For vertex removal, capture incident edges *before* the cascade.
        let cascaded: Vec<EdgeId> = match event {
            GraphEvent::RemoveVertex { id } => {
                let out = self
                    .graph
                    .out_neighbors(*id)
                    .map(|dst| EdgeId::new(*id, dst));
                let inc = self
                    .graph
                    .in_neighbors(*id)
                    .map(|src| EdgeId::new(src, *id));
                out.chain(inc).collect()
            }
            _ => Vec::new(),
        };

        self.graph.apply(event)?;

        match event {
            GraphEvent::AddVertex { id, .. } => {
                self.vertex_pos.insert(*id, self.vertices.len());
                self.vertices.push(*id);
                self.next_id = self.next_id.max(id.0 + 1);
            }
            GraphEvent::RemoveVertex { id } => {
                self.remove_vertex_from_index(*id);
                for e in cascaded {
                    self.remove_edge_from_index(e);
                }
            }
            GraphEvent::AddEdge { id, .. } => {
                self.edge_pos.insert(*id, self.edges.len());
                self.edges.push(*id);
            }
            GraphEvent::RemoveEdge { id } => {
                self.remove_edge_from_index(*id);
            }
            GraphEvent::UpdateVertex { .. } | GraphEvent::UpdateEdge { .. } => {}
        }
        Ok(())
    }

    fn remove_vertex_from_index(&mut self, id: VertexId) {
        if let Some(pos) = self.vertex_pos.remove(&id) {
            self.vertices.swap_remove(pos);
            if pos < self.vertices.len() {
                self.vertex_pos.insert(self.vertices[pos], pos);
            }
        }
    }

    fn remove_edge_from_index(&mut self, id: EdgeId) {
        if let Some(pos) = self.edge_pos.remove(&id) {
            self.edges.swap_remove(pos);
            if pos < self.edges.len() {
                self.edge_pos.insert(self.edges[pos], pos);
            }
        }
    }

    /// Checks that the entity indexes mirror the shadow graph exactly.
    /// O(V + E); for tests.
    pub fn check_index_invariants(&self) -> Result<(), String> {
        if self.vertices.len() != self.graph.vertex_count() {
            return Err(format!(
                "vertex index has {} entries, graph has {}",
                self.vertices.len(),
                self.graph.vertex_count()
            ));
        }
        if self.edges.len() != self.graph.edge_count() {
            return Err(format!(
                "edge index has {} entries, graph has {}",
                self.edges.len(),
                self.graph.edge_count()
            ));
        }
        for (i, v) in self.vertices.iter().enumerate() {
            if !self.graph.has_vertex(*v) {
                return Err(format!("index holds missing vertex {v}"));
            }
            if self.vertex_pos.get(v) != Some(&i) {
                return Err(format!("vertex {v} position map out of sync"));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if !self.graph.has_edge(*e) {
                return Err(format!("index holds missing edge {e}"));
            }
            if self.edge_pos.get(e) != Some(&i) {
                return Err(format!("edge {e} position map out of sync"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with_path(n: u64) -> GenContext {
        let mut ctx = GenContext::new(5);
        for event in gt_graph::builders::path(n).graph_events() {
            ctx.apply(event).unwrap();
        }
        ctx
    }

    #[test]
    fn allocation_is_fresh_after_bootstrap() {
        let mut ctx = ctx_with_path(5);
        let id = ctx.allocate_vertex_id();
        assert_eq!(id, VertexId(5));
        assert!(!ctx.graph.has_vertex(id));
    }

    #[test]
    fn indexes_track_applies() {
        let mut ctx = ctx_with_path(4);
        assert_eq!(ctx.vertex_count(), 4);
        assert_eq!(ctx.edge_count(), 3);
        ctx.apply(&GraphEvent::RemoveVertex { id: VertexId(1) })
            .unwrap();
        assert_eq!(ctx.vertex_count(), 3);
        // Vertex 1 had edges 0->1 and 1->2.
        assert_eq!(ctx.edge_count(), 1);
        ctx.check_index_invariants().unwrap();
    }

    #[test]
    fn uniform_edge_on_empty_graph_is_none() {
        let mut ctx = GenContext::new(0);
        assert_eq!(ctx.uniform_edge(), None);
        assert_eq!(ctx.select_vertex(VertexSelector::Uniform), None);
    }

    #[test]
    fn degree_proportional_prefers_hub() {
        // Star with center 0: center holds half of all endpoint slots.
        let mut ctx = GenContext::new(11);
        for event in gt_graph::builders::star(50).graph_events() {
            ctx.apply(event).unwrap();
        }
        let mut center_hits = 0;
        for _ in 0..2_000 {
            if ctx.degree_proportional_vertex() == VertexId(0) {
                center_hits += 1;
            }
        }
        // Expected ~50%; uniform would give 2%.
        assert!(center_hits > 600, "center hit {center_hits}/2000");
    }

    #[test]
    fn low_degree_tournament_avoids_hub() {
        let mut ctx = GenContext::new(12);
        for event in gt_graph::builders::star(50).graph_events() {
            ctx.apply(event).unwrap();
        }
        let mut center_hits = 0;
        for _ in 0..2_000 {
            if ctx.low_degree_vertex(8) == VertexId(0) {
                center_hits += 1;
            }
        }
        // Center has max degree; it should almost never win a min-degree
        // tournament of size 8.
        assert!(center_hits < 20, "center hit {center_hits}/2000");
    }

    #[test]
    fn zipf_recency_prefers_new_vertices() {
        let mut ctx = ctx_with_path(100);
        let mut newest_hits = 0;
        for _ in 0..2_000 {
            let v = ctx
                .select_vertex(VertexSelector::ZipfRecency { exponent: 1.2 })
                .unwrap();
            if v.0 >= 90 {
                newest_hits += 1;
            }
        }
        // Strong bias toward the newest decile (uniform would give ~200).
        assert!(newest_hits > 700, "newest hits {newest_hits}/2000");
    }

    #[test]
    fn apply_rejects_invalid_events_and_keeps_indexes() {
        let mut ctx = ctx_with_path(3);
        let err = ctx.apply(&GraphEvent::AddVertex {
            id: VertexId(0),
            state: State::empty(),
        });
        assert!(err.is_err());
        ctx.check_index_invariants().unwrap();
    }
}

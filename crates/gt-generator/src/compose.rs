//! Stream composition.
//!
//! The paper's stream files are "typically split into two parts, divided by
//! a marker and a pause event. The first phase bootstraps the initial graph
//! and warms up the system under test, while the second represents the main
//! evaluation phase" (§4.1). [`StreamComposer`] assembles such files from
//! segments, markers, and control events.

use std::time::Duration;

use gt_core::prelude::*;

/// A fluent builder for complete graph stream files.
#[derive(Debug, Clone, Default)]
pub struct StreamComposer {
    out: GraphStream,
}

impl StreamComposer {
    /// Starts an empty composition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends all entries of a segment.
    #[must_use]
    pub fn segment(mut self, segment: GraphStream) -> Self {
        self.out.extend(segment);
        self
    }

    /// Appends a named marker.
    #[must_use]
    pub fn marker(mut self, name: impl Into<String>) -> Self {
        self.out.push(StreamEntry::marker(name));
        self
    }

    /// Appends a pause control event.
    #[must_use]
    pub fn pause(mut self, duration: Duration) -> Self {
        self.out.push(StreamEntry::pause(duration));
        self
    }

    /// Appends a speed-factor control event.
    #[must_use]
    pub fn speed(mut self, factor: f64) -> Self {
        self.out.push(StreamEntry::speed(factor));
        self
    }

    /// Appends a segment with a marker every `every` graph events, named
    /// `{prefix}-{counter}`. Useful for watermark-style latency probes
    /// (§4.5).
    #[must_use]
    pub fn segment_with_markers(
        mut self,
        segment: GraphStream,
        every: usize,
        prefix: &str,
    ) -> Self {
        assert!(every > 0, "marker interval must be positive");
        let mut seen = 0usize;
        let mut counter = 0usize;
        for entry in segment {
            let is_graph = entry.is_graph();
            self.out.push(entry);
            if is_graph {
                seen += 1;
                if seen % every == 0 {
                    self.out
                        .push(StreamEntry::marker(format!("{prefix}-{counter}")));
                    counter += 1;
                }
            }
        }
        self
    }

    /// Finishes the composition.
    pub fn build(self) -> GraphStream {
        self.out
    }

    /// The canonical two-phase layout: bootstrap segment, then a
    /// `bootstrap-done` marker and a pause, then the evaluation segment and
    /// a final `stream-end` marker.
    pub fn two_phase(
        bootstrap: GraphStream,
        warmup_pause: Duration,
        evaluation: GraphStream,
    ) -> GraphStream {
        StreamComposer::new()
            .segment(bootstrap)
            .marker("bootstrap-done")
            .pause(warmup_pause)
            .segment(evaluation)
            .marker("stream-end")
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertices(range: std::ops::Range<u64>) -> GraphStream {
        range
            .map(|id| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(id),
                    state: State::empty(),
                })
            })
            .collect()
    }

    #[test]
    fn two_phase_layout() {
        let stream =
            StreamComposer::two_phase(vertices(0..3), Duration::from_secs(1), vertices(3..5));
        let entries = stream.entries();
        assert_eq!(entries.len(), 3 + 1 + 1 + 2 + 1);
        assert_eq!(entries[3], StreamEntry::marker("bootstrap-done"));
        assert_eq!(entries[4], StreamEntry::pause(Duration::from_secs(1)));
        assert_eq!(entries[7], StreamEntry::marker("stream-end"));
    }

    #[test]
    fn markers_every_n_events() {
        let stream = StreamComposer::new()
            .segment_with_markers(vertices(0..10), 3, "wm")
            .build();
        let markers: Vec<_> = stream
            .entries()
            .iter()
            .filter_map(|e| match e {
                StreamEntry::Marker(name) => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(markers, ["wm-0", "wm-1", "wm-2"]);
        // Marker follows every third graph event.
        assert!(stream.entries()[3].is_marker());
        assert!(stream.entries()[7].is_marker());
    }

    #[test]
    fn speed_and_pause_controls() {
        let stream = StreamComposer::new()
            .segment(vertices(0..2))
            .speed(2.0)
            .segment(vertices(2..4))
            .speed(1.0)
            .pause(Duration::from_millis(50))
            .build();
        assert_eq!(stream.stats().controls, 3);
        assert_eq!(stream.stats().graph_events, 4);
    }

    #[test]
    #[should_panic(expected = "marker interval")]
    fn zero_marker_interval_panics() {
        let _ = StreamComposer::new().segment_with_markers(GraphStream::new(), 0, "x");
    }
}

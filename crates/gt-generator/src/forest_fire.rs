//! A forest-fire evolution model (Leskovec, Kleinberg & Faloutsos — the
//! "Graphs over Time" reference the paper cites for temporal graph
//! properties, §3.2).
//!
//! Each round adds one vertex that links to an *ambassador* and then
//! recursively "burns" through the ambassador's neighborhood, linking to
//! burned vertices. Forest-fire graphs exhibit the two hallmark temporal
//! properties the paper names: densification (edges grow superlinearly in
//! vertices) and shrinking/stabilizing effective diameter — which makes
//! the model the canonical stress test for trend analyses on evolving
//! graphs.

use gt_core::prelude::*;
use rand::RngExt;

use crate::context::GenContext;
use crate::model::EvolutionModel;

/// Forest-fire parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestFireModel {
    /// Forward burning probability `p`: the chance to keep burning each
    /// forward neighbor (geometric fan-out `p / (1 - p)`).
    pub forward_p: f64,
    /// Backward burning ratio: probability applied to in-neighbors.
    pub backward_p: f64,
    /// Upper bound on vertices burned per arrival (keeps rounds bounded
    /// on dense cores).
    pub burn_cap: usize,
    /// Pending edges produced by the last burn, drained round by round.
    pending_edges: Vec<EdgeId>,
    /// The vertex currently being wired, if a burn is in progress.
    current: Option<VertexId>,
}

impl ForestFireModel {
    /// A model with the given burning probabilities.
    ///
    /// # Panics
    /// If probabilities are outside `[0, 1)`.
    pub fn new(forward_p: f64, backward_p: f64) -> Self {
        assert!((0.0..1.0).contains(&forward_p), "forward_p in [0,1)");
        assert!((0.0..1.0).contains(&backward_p), "backward_p in [0,1)");
        ForestFireModel {
            forward_p,
            backward_p,
            burn_cap: 64,
            pending_edges: Vec::new(),
            current: None,
        }
    }

    /// The parameterization of the original paper's densifying regime.
    pub fn densifying() -> Self {
        ForestFireModel::new(0.37, 0.32)
    }

    /// Runs the burn from an ambassador, collecting edges to create.
    fn burn(&mut self, newcomer: VertexId, ctx: &mut GenContext) {
        let Some(ambassador) = (ctx.vertex_count() > 0).then(|| ctx.uniform_vertex()) else {
            return;
        };
        let mut burned = vec![ambassador];
        let mut frontier = vec![ambassador];
        while let Some(v) = frontier.pop() {
            if burned.len() >= self.burn_cap {
                break;
            }
            // Original model: burn a geometric *number* of links per
            // frontier vertex (mean p / (1 - p)), chosen uniformly — not
            // every link independently, which would explode on hubs.
            let forward: Vec<VertexId> = ctx.graph.out_neighbors(v).collect();
            let backward: Vec<VertexId> = ctx.graph.in_neighbors(v).collect();
            for (neighbors, p) in [(forward, self.forward_p), (backward, self.backward_p)] {
                if neighbors.is_empty() {
                    continue;
                }
                let count = geometric(&mut ctx.rng, p).min(neighbors.len());
                for _ in 0..count {
                    if burned.len() >= self.burn_cap {
                        break;
                    }
                    let w = neighbors[ctx.rng.random_range(0..neighbors.len())];
                    if !burned.contains(&w) {
                        burned.push(w);
                        frontier.push(w);
                    }
                }
            }
        }
        self.pending_edges = burned
            .into_iter()
            .map(|target| EdgeId::new(newcomer, target))
            .collect();
        // Emit in deterministic order (drain from the back).
        self.pending_edges.reverse();
    }
}

/// Draws from a geometric distribution with mean `p / (1 - p)` (the
/// number of links burned at one frontier vertex in the original model).
fn geometric(rng: &mut rand::rngs::StdRng, p: f64) -> usize {
    if p <= 0.0 {
        return 0;
    }
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / p.ln()).floor() as usize
}

impl EvolutionModel for ForestFireModel {
    fn next_event_kind(&mut self, _ctx: &mut GenContext) -> EventKind {
        if self.pending_edges.is_empty() {
            EventKind::AddVertex
        } else {
            EventKind::AddEdge
        }
    }

    fn select_new_edge(&mut self, ctx: &mut GenContext) -> Option<EdgeId> {
        while let Some(edge) = self.pending_edges.pop() {
            // Burned targets may have been superseded; re-validate.
            if !edge.is_self_loop()
                && ctx.graph.has_vertex(edge.src)
                && ctx.graph.has_vertex(edge.dst)
                && !ctx.graph.has_edge(edge)
            {
                return Some(edge);
            }
        }
        None
    }

    fn vertex_insert_state(&mut self, id: VertexId, ctx: &mut GenContext) -> State {
        // A new arrival starts the next burn.
        self.burn(id, ctx);
        self.current = Some(id);
        State::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::StreamGenerator;
    use gt_graph::EvolvingGraph;

    fn run(rounds: usize, seed: u64) -> EvolvingGraph {
        let mut generator = StreamGenerator::new(ForestFireModel::densifying(), seed);
        generator.bootstrap(&gt_graph::builders::ring(5)).unwrap();
        let result = generator.evolve(rounds);
        let mut g = EvolvingGraph::from_stream(&gt_graph::builders::ring(5)).unwrap();
        for event in result.stream.graph_events() {
            g.apply(event).unwrap();
        }
        g
    }

    #[test]
    fn produces_valid_growing_graph() {
        let g = run(3_000, 9);
        g.check_invariants().unwrap();
        assert!(g.vertex_count() > 100);
        assert!(g.edge_count() > g.vertex_count());
    }

    #[test]
    fn densification_exponent_exceeds_one() {
        // Sample (n, m) while evolving and fit the log-log slope. The
        // fitted exponent is deterministic per seed but sits near the
        // threshold for this parameterization, so the seed is chosen to
        // sit comfortably above it.
        let mut generator = StreamGenerator::new(ForestFireModel::densifying(), 0);
        generator.bootstrap(&gt_graph::builders::ring(5)).unwrap();
        let mut samples = Vec::new();
        for _ in 0..30 {
            generator.evolve(200);
            let g = &generator.context().graph;
            samples.push((g.vertex_count() as f64, g.edge_count() as f64));
        }
        // Log-log least squares.
        let pts: Vec<(f64, f64)> = samples.iter().map(|&(n, m)| (n.ln(), m.ln())).collect();
        let k = pts.len() as f64;
        let mt = pts.iter().map(|p| p.0).sum::<f64>() / k;
        let mv = pts.iter().map(|p| p.1).sum::<f64>() / k;
        let cov: f64 = pts.iter().map(|p| (p.0 - mt) * (p.1 - mv)).sum();
        let var: f64 = pts.iter().map(|p| (p.0 - mt).powi(2)).sum();
        let exponent = cov / var;
        assert!(
            exponent > 1.05,
            "densification exponent {exponent} not superlinear"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(500, 4);
        let b = run(500, 4);
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn higher_forward_p_burns_more() {
        let mild = {
            let mut gen = StreamGenerator::new(ForestFireModel::new(0.1, 0.05), 5);
            gen.bootstrap(&gt_graph::builders::ring(5)).unwrap();
            gen.evolve(2_000);
            gen.context().graph.edge_count() as f64 / gen.context().graph.vertex_count() as f64
        };
        let fierce = {
            let mut gen = StreamGenerator::new(ForestFireModel::new(0.45, 0.3), 5);
            gen.bootstrap(&gt_graph::builders::ring(5)).unwrap();
            gen.evolve(2_000);
            gen.context().graph.edge_count() as f64 / gen.context().graph.vertex_count() as f64
        };
        assert!(fierce > mild, "fierce {fierce} vs mild {mild}");
    }

    #[test]
    #[should_panic(expected = "forward_p")]
    fn rejects_bad_probability() {
        ForestFireModel::new(1.0, 0.1);
    }
}

//! A Zipf-like rank sampler.
//!
//! Table 3 of the paper selects vertices "Zipf (based on degree)". This
//! sampler draws ranks `1..=n` with probability approximately proportional
//! to `rank^-s` using the continuous inverse-CDF approximation
//!
//! ```text
//! x = (1 + u * (n^(1-s) - 1))^(1/(1-s))     for s != 1
//! x = n^u                                    for s  = 1
//! ```
//!
//! which is exact in the continuum limit and accurate enough for workload
//! skew (the workload property that matters is *heavy bias toward low
//! ranks*, not the precise tail exponent). Sampling is O(1) and needs no
//! precomputed tables, so `n` may change between draws — essential for an
//! evolving graph.

use rand::Rng;
use rand::RngExt;

/// Samples ranks `1..=n` with Zipf(`s`) skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    /// Skew exponent; larger means heavier bias toward rank 1. Must be > 0.
    pub exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler with the given exponent.
    ///
    /// # Panics
    /// If `exponent` is not finite and positive.
    pub fn new(exponent: f64) -> Self {
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "Zipf exponent must be positive and finite"
        );
        ZipfSampler { exponent }
    }

    /// Draws a rank in `1..=n`. Returns 1 when `n <= 1`.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> usize {
        if n <= 1 {
            return 1;
        }
        let n_f = n as f64;
        let u: f64 = rng.random::<f64>().min(1.0 - f64::EPSILON);
        let x = if (self.exponent - 1.0).abs() < 1e-9 {
            n_f.powf(u)
        } else {
            let one_minus_s = 1.0 - self.exponent;
            (1.0 + u * (n_f.powf(one_minus_s) - 1.0)).powf(1.0 / one_minus_s)
        };
        (x.floor() as usize).clamp(1, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(sampler: ZipfSampler, n: usize, draws: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; n + 1];
        for _ in 0..draws {
            let r = sampler.sample(n, &mut rng);
            counts[r] += 1;
        }
        counts
    }

    #[test]
    fn ranks_are_in_range() {
        let sampler = ZipfSampler::new(1.2);
        let mut rng = StdRng::seed_from_u64(9);
        for n in [1usize, 2, 10, 1000] {
            for _ in 0..200 {
                let r = sampler.sample(n, &mut rng);
                assert!((1..=n).contains(&r), "rank {r} for n={n}");
            }
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let counts = histogram(ZipfSampler::new(1.0), 100, 50_000);
        assert!(counts[1] > counts[10], "{} vs {}", counts[1], counts[10]);
        assert!(counts[1] > counts[50] * 5);
        // Rank 1 should hold a substantial share under s = 1.
        assert!(counts[1] as f64 / 50_000.0 > 0.1);
    }

    #[test]
    fn higher_exponent_means_heavier_head() {
        let mild = histogram(ZipfSampler::new(0.5), 100, 50_000);
        let heavy = histogram(ZipfSampler::new(2.0), 100, 50_000);
        assert!(heavy[1] > mild[1]);
    }

    #[test]
    fn n_one_always_returns_one() {
        let sampler = ZipfSampler::new(1.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sampler.sample(1, &mut rng), 1);
        assert_eq!(sampler.sample(0, &mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "Zipf exponent")]
    fn rejects_non_positive_exponent() {
        ZipfSampler::new(0.0);
    }
}

//! The round-based stream generator.
//!
//! Each round asks the [`EvolutionModel`] for an event kind and a target,
//! validates the candidate against the shadow graph (strict semantics plus
//! the model's `constraint` hook), and retries with fresh selections when a
//! candidate is infeasible — e.g. `ADD_EDGE` drew an existing pair, or
//! `REMOVE_VERTEX` on an empty graph. Rounds whose kind cannot produce any
//! valid event are re-drawn, so the emitted stream always applies cleanly
//! onto the bootstrap graph under strict semantics.

use gt_core::prelude::*;
use gt_graph::ApplyError;

use crate::context::GenContext;
use crate::model::EvolutionModel;

/// Outcome of an evolution phase.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionResult {
    /// The generated event stream (graph events only).
    pub stream: GraphStream,
    /// Generation statistics.
    pub report: GenReport,
}

/// Statistics of a generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenReport {
    /// Events emitted.
    pub emitted: usize,
    /// Candidate events re-drawn because selection was infeasible or the
    /// constraint hook vetoed them.
    pub retries: usize,
    /// Rounds abandoned entirely after exhausting the retry budget.
    pub skipped_rounds: usize,
}

/// Drives an [`EvolutionModel`] over a shadow graph.
pub struct StreamGenerator<M> {
    model: M,
    ctx: GenContext,
    /// Fresh selections attempted per round before the round is skipped.
    pub max_retries_per_round: usize,
}

impl<M: EvolutionModel> StreamGenerator<M> {
    /// Creates a generator with the given model and RNG seed.
    pub fn new(model: M, seed: u64) -> Self {
        StreamGenerator {
            model,
            ctx: GenContext::new(seed),
            max_retries_per_round: 64,
        }
    }

    /// Applies a bootstrap stream to the shadow graph. Typically the output
    /// of [`gt_graph::builders`]; call before [`evolve`](Self::evolve).
    pub fn bootstrap(&mut self, stream: &GraphStream) -> Result<(), ApplyError> {
        for event in stream.graph_events() {
            self.ctx.apply(event)?;
        }
        Ok(())
    }

    /// Read access to the generation context (shadow graph and counters).
    pub fn context(&self) -> &GenContext {
        &self.ctx
    }

    /// Read access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Runs `rounds` evolution rounds, emitting at most one event each.
    pub fn evolve(&mut self, rounds: usize) -> EvolutionResult {
        let mut stream = GraphStream::new();
        let mut report = GenReport::default();

        for _ in 0..rounds {
            match self.generate_one(&mut report) {
                Some(event) => {
                    self.ctx
                        .apply(&event)
                        .expect("validated candidates must apply");
                    stream.push(StreamEntry::Graph(event));
                    report.emitted += 1;
                }
                None => report.skipped_rounds += 1,
            }
        }

        EvolutionResult { stream, report }
    }

    /// Produces one validated event, or `None` if the retry budget is
    /// exhausted.
    fn generate_one(&mut self, report: &mut GenReport) -> Option<GraphEvent> {
        for _ in 0..self.max_retries_per_round.max(1) {
            let kind = self.model.next_event_kind(&mut self.ctx);
            let candidate = self.candidate_for(kind);
            match candidate {
                Some(event)
                    if self.is_feasible(&event) && self.model.constraint(&event, &self.ctx) =>
                {
                    return Some(event);
                }
                _ => report.retries += 1,
            }
        }
        None
    }

    /// Builds a candidate event of the requested kind, or `None` if the
    /// graph cannot currently support one.
    fn candidate_for(&mut self, kind: EventKind) -> Option<GraphEvent> {
        match kind {
            EventKind::AddVertex => {
                let id = self.ctx.allocate_vertex_id();
                let state = self.model.vertex_insert_state(id, &mut self.ctx);
                Some(GraphEvent::AddVertex { id, state })
            }
            EventKind::RemoveVertex => {
                let id = self.model.select_vertex(kind, &mut self.ctx)?;
                Some(GraphEvent::RemoveVertex { id })
            }
            EventKind::UpdateVertex => {
                let id = self.model.select_vertex(kind, &mut self.ctx)?;
                let state = self.model.vertex_update_state(id, &mut self.ctx);
                Some(GraphEvent::UpdateVertex { id, state })
            }
            EventKind::AddEdge => {
                let id = self.model.select_new_edge(&mut self.ctx)?;
                let state = self.model.edge_insert_state(id, &mut self.ctx);
                Some(GraphEvent::AddEdge { id, state })
            }
            EventKind::RemoveEdge => {
                let id = self.model.select_existing_edge(kind, &mut self.ctx)?;
                Some(GraphEvent::RemoveEdge { id })
            }
            EventKind::UpdateEdge => {
                let id = self.model.select_existing_edge(kind, &mut self.ctx)?;
                let state = self.model.edge_update_state(id, &mut self.ctx);
                Some(GraphEvent::UpdateEdge { id, state })
            }
        }
    }

    /// Strict-semantics feasibility of a candidate on the shadow graph.
    fn is_feasible(&self, event: &GraphEvent) -> bool {
        let g = &self.ctx.graph;
        match event {
            GraphEvent::AddVertex { id, .. } => !g.has_vertex(*id),
            GraphEvent::RemoveVertex { id } | GraphEvent::UpdateVertex { id, .. } => {
                g.has_vertex(*id)
            }
            GraphEvent::AddEdge { id, .. } => {
                !id.is_self_loop()
                    && g.has_vertex(id.src)
                    && g.has_vertex(id.dst)
                    && !g.has_edge(*id)
            }
            GraphEvent::RemoveEdge { id } | GraphEvent::UpdateEdge { id, .. } => g.has_edge(*id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EventMix, MixModel};
    use gt_graph::builders::BarabasiAlbert;
    use gt_graph::EvolvingGraph;

    fn generator_with_ba() -> StreamGenerator<MixModel> {
        let bootstrap = BarabasiAlbert {
            n: 200,
            m0: 8,
            m: 3,
            seed: 4,
        }
        .generate();
        let mut generator = StreamGenerator::new(MixModel::table3(), 99);
        generator.bootstrap(&bootstrap).unwrap();
        generator
    }

    #[test]
    fn evolution_stream_applies_cleanly_after_bootstrap() {
        let bootstrap = BarabasiAlbert {
            n: 200,
            m0: 8,
            m: 3,
            seed: 4,
        }
        .generate();
        let mut generator = generator_with_ba();
        let result = generator.evolve(2_000);
        assert_eq!(result.report.emitted, 2_000);
        assert_eq!(result.report.skipped_rounds, 0);

        // Replay externally: bootstrap + evolution applies strictly.
        let mut g = EvolvingGraph::from_stream(&bootstrap).unwrap();
        for event in result.stream.graph_events() {
            g.apply(event).unwrap();
        }
        g.check_invariants().unwrap();
        assert_eq!(g.vertex_count(), generator.context().graph.vertex_count());
        assert_eq!(g.edge_count(), generator.context().graph.edge_count());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generator_with_ba().evolve(500);
        let b = generator_with_ba().evolve(500);
        assert_eq!(a.stream, b.stream);
    }

    #[test]
    fn different_seeds_differ() {
        let bootstrap = gt_graph::builders::path(50);
        let mut g1 = StreamGenerator::new(MixModel::table3(), 1);
        let mut g2 = StreamGenerator::new(MixModel::table3(), 2);
        g1.bootstrap(&bootstrap).unwrap();
        g2.bootstrap(&bootstrap).unwrap();
        assert_ne!(g1.evolve(200).stream, g2.evolve(200).stream);
    }

    #[test]
    fn event_mix_is_respected_in_output() {
        let mut generator = generator_with_ba();
        let result = generator.evolve(20_000);
        let stats = result.stream.stats();
        let total = stats.graph_events as f64;
        // The realized mix deviates from nominal because infeasible
        // candidates retry, but it must stay in the neighborhood.
        let add_edge_frac = stats.count(EventKind::AddEdge) as f64 / total;
        assert!((0.25..=0.45).contains(&add_edge_frac), "{add_edge_frac}");
        let upd_vertex_frac = stats.count(EventKind::UpdateVertex) as f64 / total;
        assert!(
            (0.25..=0.45).contains(&upd_vertex_frac),
            "{upd_vertex_frac}"
        );
        assert_eq!(stats.count(EventKind::UpdateEdge), 0);
    }

    #[test]
    fn growth_only_never_shrinks() {
        let mut generator = StreamGenerator::new(MixModel::new(EventMix::growth_only()), 5);
        generator.bootstrap(&gt_graph::builders::path(10)).unwrap();
        let before_v = generator.context().graph.vertex_count();
        let result = generator.evolve(1_000);
        let stats = result.stream.stats();
        assert_eq!(stats.count(EventKind::RemoveVertex), 0);
        assert_eq!(stats.count(EventKind::RemoveEdge), 0);
        assert!(generator.context().graph.vertex_count() >= before_v);
    }

    #[test]
    fn empty_bootstrap_still_generates_via_add_vertex() {
        // With no vertices, only ADD_VERTEX is feasible; the generator must
        // re-draw until the mix produces one.
        let mut generator = StreamGenerator::new(MixModel::table3(), 8);
        let result = generator.evolve(50);
        assert_eq!(result.report.emitted, 50);
        assert!(generator.context().graph.vertex_count() > 0);
    }

    /// A constraint hook that forbids removing vertex 0.
    struct ProtectZero(MixModel);

    impl EvolutionModel for ProtectZero {
        fn next_event_kind(&mut self, ctx: &mut GenContext) -> EventKind {
            self.0.next_event_kind(ctx)
        }
        fn select_vertex(&mut self, kind: EventKind, ctx: &mut GenContext) -> Option<VertexId> {
            self.0.select_vertex(kind, ctx)
        }
        fn select_new_edge(&mut self, ctx: &mut GenContext) -> Option<EdgeId> {
            self.0.select_new_edge(ctx)
        }
        fn constraint(&mut self, event: &GraphEvent, _ctx: &GenContext) -> bool {
            !matches!(event, GraphEvent::RemoveVertex { id } if id.0 == 0)
        }
    }

    #[test]
    fn constraint_hook_vetoes_events() {
        let mut generator = StreamGenerator::new(ProtectZero(MixModel::table3()), 21);
        generator.bootstrap(&gt_graph::builders::ring(30)).unwrap();
        generator.evolve(3_000);
        assert!(generator.context().graph.has_vertex(VertexId(0)));
    }

    #[test]
    fn context_index_invariants_hold_after_long_run() {
        let mut generator = generator_with_ba();
        generator.evolve(5_000);
        generator.context().check_index_invariants().unwrap();
    }
}

#![warn(missing_docs)]

//! # gt-generator
//!
//! The GraphTides graph stream generator (paper §4.1, §5.1, Listing 1).
//!
//! Stream generation is split into two phases:
//!
//! 1. **Bootstrap** — build an initial graph with a well-known generator
//!    (Barabási–Albert, Erdős–Rényi — see [`gt_graph::builders`]).
//! 2. **Evolution** — run a configurable number of rounds; each round a
//!    user-defined [`EvolutionModel`] chooses the event type and an
//!    appropriate target vertex/edge, and may attach state payloads.
//!
//! [`MixModel`] is the built-in model driven by an [`EventMix`] (the ratio
//! table of Table 3) and per-operation [`VertexSelector`]s — including the
//! degree-proportional and low-degree-biased selections the paper's Weaver
//! experiment uses.
//!
//! [`StreamComposer`] assembles the final stream file: bootstrap segment,
//! marker, pause, evolution segment, and any control events.
//!
//! ```
//! use gt_generator::{EventMix, MixModel, StreamGenerator};
//! use gt_graph::builders::BarabasiAlbert;
//!
//! let bootstrap = BarabasiAlbert { n: 100, m0: 5, m: 2, seed: 7 }.generate();
//! let model = MixModel::new(EventMix::table3());
//! let mut generator = StreamGenerator::new(model, 42);
//! generator.bootstrap(&bootstrap).unwrap();
//! let evolution = generator.evolve(500);
//! assert_eq!(evolution.stream.stats().graph_events, 500);
//! ```

pub mod compose;
pub mod context;
pub mod forest_fire;
pub mod generator;
pub mod model;
pub mod zipf;

pub use compose::StreamComposer;
pub use context::{GenContext, VertexSelector};
pub use forest_fire::ForestFireModel;
pub use generator::{EvolutionResult, GenReport, StreamGenerator};
pub use model::{EventMix, EvolutionModel, MixModel};
pub use zipf::ZipfSampler;

//! Evolution models — the Rust analogue of the generator's user API
//! (paper Listing 1).
//!
//! An [`EvolutionModel`] decides, round by round, which event type comes
//! next (`nextEventType`), which entity it targets (`vertexSelect` /
//! `edgeSelect`), what state payloads look like (`insertVertex`,
//! `updateEdge`, …), and whether a candidate event is acceptable
//! (`constraint`). The built-in [`MixModel`] implements the whole API from
//! an [`EventMix`] ratio table plus selection strategies, which is exactly
//! how the paper's Weaver workload (Table 3) is specified.

use gt_core::prelude::*;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::context::{GenContext, VertexSelector};

/// Ratios of the six event kinds in the evolution phase.
///
/// Values are weights; they need not sum to 1. Drawing normalizes on the
/// fly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventMix {
    /// Weight of `ADD_VERTEX`.
    pub add_vertex: f64,
    /// Weight of `REMOVE_VERTEX`.
    pub remove_vertex: f64,
    /// Weight of `UPDATE_VERTEX`.
    pub update_vertex: f64,
    /// Weight of `ADD_EDGE`.
    pub add_edge: f64,
    /// Weight of `REMOVE_EDGE`.
    pub remove_edge: f64,
    /// Weight of `UPDATE_EDGE`.
    pub update_edge: f64,
}

impl EventMix {
    /// The event mix of the paper's Table 3 (Weaver experiment):
    /// 10% create vertex, 5% remove vertex, 35% update vertex,
    /// 35% create edge, 15% remove edge, 0% update edge.
    pub fn table3() -> Self {
        EventMix {
            add_vertex: 0.10,
            remove_vertex: 0.05,
            update_vertex: 0.35,
            add_edge: 0.35,
            remove_edge: 0.15,
            update_edge: 0.0,
        }
    }

    /// Pure growth: additions only (insert-only workloads such as the
    /// paper's write-throughput test with a growing graph).
    pub fn growth_only() -> Self {
        EventMix {
            add_vertex: 0.2,
            remove_vertex: 0.0,
            update_vertex: 0.0,
            add_edge: 0.8,
            remove_edge: 0.0,
            update_edge: 0.0,
        }
    }

    /// State churn: updates only, on a fixed topology.
    pub fn updates_only() -> Self {
        EventMix {
            add_vertex: 0.0,
            remove_vertex: 0.0,
            update_vertex: 0.5,
            add_edge: 0.0,
            remove_edge: 0.0,
            update_edge: 0.5,
        }
    }

    /// The weight of a kind.
    pub fn weight(&self, kind: EventKind) -> f64 {
        match kind {
            EventKind::AddVertex => self.add_vertex,
            EventKind::RemoveVertex => self.remove_vertex,
            EventKind::UpdateVertex => self.update_vertex,
            EventKind::AddEdge => self.add_edge,
            EventKind::RemoveEdge => self.remove_edge,
            EventKind::UpdateEdge => self.update_edge,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        EventKind::ALL.into_iter().map(|k| self.weight(k)).sum()
    }

    /// Draws an event kind proportional to the weights.
    ///
    /// # Panics
    /// If all weights are zero or any weight is negative.
    pub fn draw(&self, ctx: &mut GenContext) -> EventKind {
        let total = self.total();
        assert!(total > 0.0, "event mix must have positive total weight");
        for kind in EventKind::ALL {
            assert!(self.weight(kind) >= 0.0, "negative weight for {kind:?}");
        }
        let mut x = ctx.rng.random::<f64>() * total;
        for kind in EventKind::ALL {
            x -= self.weight(kind);
            if x < 0.0 {
                return kind;
            }
        }
        EventKind::UpdateEdge
    }
}

/// The user-extensible evolution rule set (Listing 1).
///
/// All methods have workable defaults except [`next_event_kind`]; custom
/// models override exactly the hooks they need.
///
/// [`next_event_kind`]: EvolutionModel::next_event_kind
pub trait EvolutionModel {
    /// `nextEventType`: which event kind the next round emits.
    fn next_event_kind(&mut self, ctx: &mut GenContext) -> EventKind;

    /// `vertexSelect`: the target for `REMOVE_VERTEX`/`UPDATE_VERTEX`.
    /// Default: uniform over live vertices.
    fn select_vertex(&mut self, kind: EventKind, ctx: &mut GenContext) -> Option<VertexId> {
        let _ = kind;
        ctx.select_vertex(VertexSelector::Uniform)
    }

    /// `edgeSelect` for `ADD_EDGE`: the new endpoints (must be existing
    /// vertices). Default: uniform source, uniform target.
    fn select_new_edge(&mut self, ctx: &mut GenContext) -> Option<EdgeId> {
        if ctx.vertex_count() < 2 {
            return None;
        }
        let src = ctx.select_vertex(VertexSelector::Uniform)?;
        let dst = ctx.select_vertex(VertexSelector::Uniform)?;
        Some(EdgeId::new(src, dst))
    }

    /// `edgeSelect` for `REMOVE_EDGE`/`UPDATE_EDGE`: an existing edge.
    /// Default: uniform over live edges.
    fn select_existing_edge(&mut self, kind: EventKind, ctx: &mut GenContext) -> Option<EdgeId> {
        let _ = kind;
        ctx.uniform_edge()
    }

    /// `insertVertex`: initial state for a new vertex.
    fn vertex_insert_state(&mut self, id: VertexId, ctx: &mut GenContext) -> State {
        let _ = (id, ctx);
        State::empty()
    }

    /// `updateVertex`: new state for a vertex update.
    fn vertex_update_state(&mut self, id: VertexId, ctx: &mut GenContext) -> State {
        let _ = (id, ctx);
        State::empty()
    }

    /// `insertEdge`: initial state for a new edge.
    fn edge_insert_state(&mut self, id: EdgeId, ctx: &mut GenContext) -> State {
        let _ = (id, ctx);
        State::empty()
    }

    /// `updateEdge`: new state for an edge update.
    fn edge_update_state(&mut self, id: EdgeId, ctx: &mut GenContext) -> State {
        let _ = (id, ctx);
        State::empty()
    }

    /// `constraint`: veto a candidate event. Default: accept everything.
    fn constraint(&mut self, event: &GraphEvent, ctx: &GenContext) -> bool {
        let _ = (event, ctx);
        true
    }
}

/// The built-in model: an [`EventMix`] plus per-operation selection
/// strategies, with optional weight payloads on edges.
#[derive(Debug, Clone)]
pub struct MixModel {
    /// Event-kind ratio table.
    pub mix: EventMix,
    /// Selector for `REMOVE_VERTEX` targets. Table 3: bias toward less
    /// connected vertices.
    pub remove_vertex_selector: VertexSelector,
    /// Selector for `UPDATE_VERTEX` targets. Table 3: uniform-random.
    pub update_vertex_selector: VertexSelector,
    /// Selector for new-edge sources. Table 3: uniform-random.
    pub edge_src_selector: VertexSelector,
    /// Selector for new-edge targets. Table 3: Zipf based on degree, bias
    /// towards strongly connected vertices.
    pub edge_dst_selector: VertexSelector,
    /// When set, new and updated edges carry a numeric weight drawn
    /// uniformly from this range.
    pub edge_weight_range: Option<(f64, f64)>,
    /// Monotone version counter embedded in vertex update payloads, so
    /// update streams are distinguishable.
    version: u64,
}

impl MixModel {
    /// Builds a model with Table 3 selection strategies.
    pub fn new(mix: EventMix) -> Self {
        MixModel {
            mix,
            remove_vertex_selector: VertexSelector::LowDegreeTournament { k: 8 },
            update_vertex_selector: VertexSelector::Uniform,
            edge_src_selector: VertexSelector::Uniform,
            edge_dst_selector: VertexSelector::DegreeProportional,
            edge_weight_range: None,
            version: 0,
        }
    }

    /// Exactly the paper's Table 3 workload model.
    pub fn table3() -> Self {
        MixModel::new(EventMix::table3())
    }
}

impl EvolutionModel for MixModel {
    fn next_event_kind(&mut self, ctx: &mut GenContext) -> EventKind {
        self.mix.draw(ctx)
    }

    fn select_vertex(&mut self, kind: EventKind, ctx: &mut GenContext) -> Option<VertexId> {
        let selector = match kind {
            EventKind::RemoveVertex => self.remove_vertex_selector,
            _ => self.update_vertex_selector,
        };
        ctx.select_vertex(selector)
    }

    fn select_new_edge(&mut self, ctx: &mut GenContext) -> Option<EdgeId> {
        if ctx.vertex_count() < 2 {
            return None;
        }
        let src = ctx.select_vertex(self.edge_src_selector)?;
        let dst = ctx.select_vertex(self.edge_dst_selector)?;
        Some(EdgeId::new(src, dst))
    }

    fn vertex_update_state(&mut self, _id: VertexId, _ctx: &mut GenContext) -> State {
        self.version += 1;
        State::from_fields([("v", self.version.to_string())])
    }

    fn edge_insert_state(&mut self, _id: EdgeId, ctx: &mut GenContext) -> State {
        match self.edge_weight_range {
            Some((lo, hi)) => State::weight(ctx.rng.random_range(lo..=hi)),
            None => State::empty(),
        }
    }

    fn edge_update_state(&mut self, id: EdgeId, ctx: &mut GenContext) -> State {
        self.edge_insert_state(id, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn table3_mix_sums_to_one() {
        assert!((EventMix::table3().total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn draw_respects_ratios() {
        let mix = EventMix::table3();
        let mut ctx = GenContext::new(77);
        let mut counts: BTreeMap<EventKind, usize> = BTreeMap::new();
        let draws = 100_000;
        for _ in 0..draws {
            *counts.entry(mix.draw(&mut ctx)).or_insert(0) += 1;
        }
        for kind in EventKind::ALL {
            let expected = mix.weight(kind) / mix.total();
            let actual = *counts.get(&kind).unwrap_or(&0) as f64 / draws as f64;
            assert!(
                (actual - expected).abs() < 0.01,
                "{kind:?}: expected {expected}, got {actual}"
            );
        }
        // update_edge has weight zero and must never be drawn.
        assert_eq!(counts.get(&EventKind::UpdateEdge), None);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_mix_panics() {
        let mix = EventMix {
            add_vertex: 0.0,
            remove_vertex: 0.0,
            update_vertex: 0.0,
            add_edge: 0.0,
            remove_edge: 0.0,
            update_edge: 0.0,
        };
        let mut ctx = GenContext::new(0);
        mix.draw(&mut ctx);
    }

    #[test]
    fn mix_model_emits_weighted_edges_when_configured() {
        let mut model = MixModel::new(EventMix::growth_only());
        model.edge_weight_range = Some((1.0, 2.0));
        let mut ctx = GenContext::new(3);
        for event in gt_graph::builders::path(3).graph_events() {
            ctx.apply(event).unwrap();
        }
        let state = model.edge_insert_state(EdgeId::from((0, 2)), &mut ctx);
        let w = state.as_weight().unwrap();
        assert!((1.0..=2.0).contains(&w));
    }

    #[test]
    fn mix_model_versioned_vertex_updates() {
        let mut model = MixModel::table3();
        let mut ctx = GenContext::new(3);
        let s1 = model.vertex_update_state(VertexId(0), &mut ctx);
        let s2 = model.vertex_update_state(VertexId(0), &mut ctx);
        assert_ne!(s1, s2);
        assert_eq!(s1.get_field("v"), Some("1"));
        assert_eq!(s2.get_field("v"), Some("2"));
    }
}

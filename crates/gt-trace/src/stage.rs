//! The pipeline stage taxonomy.

/// Number of distinct tracepoint stages.
pub const STAGE_COUNT: usize = 5;

/// Where in the pipeline a tracepoint sits, in stream order.
///
/// The first three stages live in the replayer process (`gt-replayer`),
/// the last two inside the system under test behind its connector. Not
/// every pipeline has every stage: an in-memory replay has no
/// [`Stage::ReaderDequeue`], a file-to-socket replay has no
/// [`Stage::EngineApply`]. The collector only reports stage pairs whose
/// both ends actually stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The reader thread's entry dequeued from the bounded file-pipeline
    /// channel, just before the paced emitter sees it.
    ReaderDequeue = 0,
    /// The replayer released the event to the sink according to its
    /// pacing schedule.
    PacedEmit = 1,
    /// The session's sink wrapper accepted the event for dispatch
    /// (socket write, connector hand-off).
    SinkWrite = 2,
    /// The platform connector received the event inside the system under
    /// test.
    ConnectorRecv = 3,
    /// A platform worker/shard applied the event to its graph state.
    EngineApply = 4,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::ReaderDequeue,
        Stage::PacedEmit,
        Stage::SinkWrite,
        Stage::ConnectorRecv,
        Stage::EngineApply,
    ];

    /// Stable dense index for per-stage arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ReaderDequeue => "reader_dequeue",
            Stage::PacedEmit => "paced_emit",
            Stage::SinkWrite => "sink_write",
            Stage::ConnectorRecv => "connector_recv",
            Stage::EngineApply => "engine_apply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::ALL.len(), STAGE_COUNT);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), STAGE_COUNT);
    }
}

//! A bounded single-producer / single-consumer stamp ring.
//!
//! Each [`crate::Probe`] owns one ring; the collector thread is the only
//! consumer. Slots are pairs of atomics with release/acquire publication
//! on the cursors, so the ring is lock-free and allocation-free on the
//! producer side without any `unsafe`. A full ring *drops* the stamp and
//! counts the drop — a tracer must shed load, never block the pipeline
//! it is measuring.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::stage::Stage;

/// One `(seq, t_micros)` stamp slot.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    t: AtomicU64,
}

/// The SPSC stamp ring shared between one probe and the collector.
#[derive(Debug)]
pub(crate) struct Ring {
    stage: Stage,
    slots: Box<[Slot]>,
    /// Producer cursor: index of the next write. Only the probe advances
    /// it (release), the collector reads it (acquire).
    head: AtomicU64,
    /// Consumer cursor: index of the next read. Only the collector
    /// advances it (release), the probe reads it (acquire).
    tail: AtomicU64,
    /// Stamps lost to a full ring.
    dropped: AtomicU64,
}

impl Ring {
    pub(crate) fn new(stage: Stage, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Ring {
            stage,
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    t: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn stage(&self) -> Stage {
        self.stage
    }

    /// Producer side: publishes one stamp, or drops it when the collector
    /// has fallen a full ring behind.
    #[inline]
    pub(crate) fn push(&self, seq: u64, t_micros: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.seq.store(seq, Ordering::Relaxed);
        slot.t.store(t_micros, Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: appends every published stamp to `out` and frees
    /// the slots.
    pub(crate) fn drain(&self, out: &mut Vec<(u64, u64)>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            let slot = &self.slots[(tail % self.slots.len() as u64) as usize];
            out.push((
                slot.seq.load(Ordering::Relaxed),
                slot.t.load(Ordering::Relaxed),
            ));
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_in_order() {
        let ring = Ring::new(Stage::PacedEmit, 8);
        for i in 0..5u64 {
            ring.push(i, i * 10);
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out, [(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(ring.dropped(), 0);
        // Drained slots are reusable.
        ring.push(9, 90);
        out.clear();
        ring.drain(&mut out);
        assert_eq!(out, [(9, 90)]);
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let ring = Ring::new(Stage::PacedEmit, 4);
        for i in 0..10u64 {
            ring.push(i, i);
        }
        assert_eq!(ring.dropped(), 6);
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 4, "only the first four fit");
        assert_eq!(out[0], (0, 0));
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_when_paced() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::new(Stage::EngineApply, 1024));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    ring.push(i, i);
                    if i % 512 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while out.len() + (ring.dropped() as usize) < 50_000 {
            buf.clear();
            ring.drain(&mut buf);
            out.extend_from_slice(&buf);
            std::thread::yield_now();
        }
        producer.join().unwrap();
        // Whatever was not dropped arrives intact and in order.
        for pair in out.windows(2) {
            assert!(pair[0].0 < pair[1].0, "out of order: {pair:?}");
        }
        assert_eq!(out.len() as u64 + ring.dropped(), 50_000);
    }
}

//! The tracer: probe factory, collector thread, and the trace report.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gt_metrics::{Clock, Histogram, MetricRecord, MetricsHub};

use crate::ring::Ring;
use crate::stage::{Stage, STAGE_COUNT};

/// Source label on all emitted trace records and hub histograms.
pub const TRACE_SOURCE: &str = "trace";

/// The stage pairs the collector reports, as
/// `(earlier stage, later stage, metric name)`. Metric names double as
/// hub histogram names under the `trace` source, so a Level-1
/// `HubSampler` publishes `<name>.count` / `.mean` / `.p99` / `.max`
/// series while the run is live.
pub const PAIR_METRICS: [(Stage, Stage, &str); 4] = [
    (
        Stage::ReaderDequeue,
        Stage::PacedEmit,
        "reader_to_emit_micros",
    ),
    (Stage::PacedEmit, Stage::SinkWrite, "emit_to_sink_micros"),
    (
        Stage::PacedEmit,
        Stage::ConnectorRecv,
        "emit_to_connector_micros",
    ),
    (
        Stage::ConnectorRecv,
        Stage::EngineApply,
        "connector_to_apply_micros",
    ),
];

/// Tracing parameters. The defaults bound overhead to well under the 5%
/// ingest budget (see the `ingest/tracing` bench rows): non-sampled
/// events cost one counter increment and one modulo test.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Sample 1-in-N graph events (by global stream position). 1 traces
    /// everything — useful in tests, too hot for production rates.
    pub sample_every: u64,
    /// Stamp slots per probe ring. A full ring drops stamps (counted)
    /// rather than blocking the pipeline.
    pub ring_capacity: usize,
    /// How often the collector thread drains the rings.
    pub drain_interval: Duration,
    /// Cap on concurrently pending (partially matched) sequence numbers;
    /// the oldest are evicted beyond this.
    pub max_pending: usize,
    /// Cap on accumulated per-sample records (histograms keep counting
    /// past it).
    pub max_records: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            ring_capacity: 4096,
            drain_interval: Duration::from_millis(2),
            max_pending: 65_536,
            max_records: 100_000,
        }
    }
}

impl TraceConfig {
    /// Sets the sampling rate (builder style).
    #[must_use]
    pub fn sampling(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }
}

/// State shared between the tracer handles and the collector thread.
struct Shared {
    rings: Mutex<Vec<Arc<Ring>>>,
    stop: AtomicBool,
}

/// What one finished trace collected.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// One record per matched stage pair of a sampled event (source
    /// [`TRACE_SOURCE`], metric from [`PAIR_METRICS`], integer value =
    /// stage-to-stage latency in microseconds, timestamped at the later
    /// stage). Merge these into the run's `ResultLog` to slice latency
    /// by marker window.
    pub records: Vec<MetricRecord>,
    /// Stage-pair latencies recorded (across all pairs).
    pub matched: u64,
    /// Stamps lost to full probe rings.
    pub dropped: u64,
    /// Partially matched sequences evicted by the pending cap.
    pub evicted: u64,
    /// Matched pairs beyond [`TraceConfig::max_records`] that were
    /// counted in the histograms but not kept as records.
    pub truncated: u64,
}

/// A per-producer-thread tracepoint.
///
/// Obtain one from [`Tracer::probe`] per (thread, stage). For stages
/// that see events in stream order the probe counts them itself
/// ([`Probe::stamp`] / [`Probe::stamp_n`]); stages that process out of
/// order stamp an externally carried sequence number
/// ([`Probe::stamp_seq`]). Non-sampled events cost one counter bump and
/// one modulo test — no clock read, no shared-memory write.
pub struct Probe {
    ring: Arc<Ring>,
    clock: Arc<dyn Clock>,
    sample_every: u64,
    next_seq: Cell<u64>,
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("stage", &self.ring.stage())
            .field("sample_every", &self.sample_every)
            .field("next_seq", &self.next_seq.get())
            .finish()
    }
}

impl Probe {
    /// Stamps the next graph event in stream order.
    #[inline]
    pub fn stamp(&self) {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        if seq % self.sample_every == 0 {
            self.ring.push(seq, self.clock.now_micros());
        }
    }

    /// Stamps `n` consecutive stream-order graph events with a single
    /// clock read (batch dispatch).
    #[inline]
    pub fn stamp_n(&self, n: u64) {
        if n == 0 {
            return;
        }
        let first = self.next_seq.get();
        self.next_seq.set(first + n);
        let rem = first % self.sample_every;
        let mut seq = if rem == 0 {
            first
        } else {
            first + (self.sample_every - rem)
        };
        if seq >= first + n {
            return;
        }
        let t = self.clock.now_micros();
        while seq < first + n {
            self.ring.push(seq, t);
            seq += self.sample_every;
        }
    }

    /// Stamps the graph event with the given global stream sequence
    /// number (stages that process events out of stream order, e.g.
    /// sharded appliers).
    #[inline]
    pub fn stamp_seq(&self, seq: u64) {
        if seq % self.sample_every == 0 {
            self.ring.push(seq, self.clock.now_micros());
        }
    }
}

/// Per-sequence match state in the collector.
#[derive(Default)]
struct SeqState {
    t: [Option<u64>; STAGE_COUNT],
    recorded: u8,
}

/// The trace controller: hands out [`Probe`]s and runs the collector
/// thread that drains their rings, matches stamps by sequence number,
/// and publishes stage-pair latencies.
///
/// Cloning shares the tracer; [`Tracer::stop`] (first call wins) joins
/// the collector and returns the [`TraceReport`].
#[derive(Clone)]
pub struct Tracer {
    config: TraceConfig,
    clock: Arc<dyn Clock>,
    shared: Arc<Shared>,
    collector: Arc<Mutex<Option<JoinHandle<TraceReport>>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Starts a tracer (and its collector thread). Stage-pair histograms
    /// named per [`PAIR_METRICS`] are registered in `hub`; `clock` must
    /// be the run clock shared with the replayer so trace timestamps
    /// align with markers.
    pub fn new(config: TraceConfig, clock: Arc<dyn Clock>, hub: &MetricsHub) -> Self {
        let mut config = config;
        config.sample_every = config.sample_every.max(1);
        let shared = Arc::new(Shared {
            rings: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let hists: Vec<Histogram> = PAIR_METRICS
            .iter()
            .map(|(_, _, name)| hub.histogram(name))
            .collect();
        let handle = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("gt-trace".into())
                .spawn(move || collector_loop(&shared, &config, &hists))
                .expect("spawn gt-trace collector thread")
        };
        Tracer {
            config,
            clock,
            shared,
            collector: Arc::new(Mutex::new(Some(handle))),
        }
    }

    /// The configured 1-in-N sampling rate.
    pub fn sample_every(&self) -> u64 {
        self.config.sample_every
    }

    /// Creates a tracepoint for one (thread, stage). Probes may be
    /// created at any time — platform threads that outlive tracer
    /// installation register lazily — and their rings are picked up by
    /// the collector on its next drain.
    pub fn probe(&self, stage: Stage) -> Probe {
        let ring = Arc::new(Ring::new(stage, self.config.ring_capacity));
        self.shared
            .rings
            .lock()
            .expect("ring registry poisoned")
            .push(Arc::clone(&ring));
        Probe {
            ring,
            clock: Arc::clone(&self.clock),
            sample_every: self.config.sample_every,
            next_seq: Cell::new(0),
        }
    }

    /// Stops the collector (after a final drain) and returns everything
    /// it matched. Subsequent calls on any clone return an empty report.
    pub fn stop(&self) -> TraceReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        let handle = self
            .collector
            .lock()
            .expect("collector handle poisoned")
            .take();
        match handle {
            Some(h) => {
                // Wake the collector out of its drain-interval park so
                // stop returns promptly instead of waiting a full cycle.
                h.thread().unpark();
                h.join().unwrap_or_default()
            }
            None => TraceReport::default(),
        }
    }
}

/// The collector thread body: drain → match → publish, at
/// `drain_interval`, with one final drain after stop.
fn collector_loop(shared: &Shared, config: &TraceConfig, hists: &[Histogram]) -> TraceReport {
    let mut pending: BTreeMap<u64, SeqState> = BTreeMap::new();
    let mut report = TraceReport::default();
    let mut buf: Vec<(u64, u64)> = Vec::with_capacity(config.ring_capacity);
    loop {
        let stopping = shared.stop.load(Ordering::Relaxed);
        // Re-read the registry every cycle: probes created after the
        // thread started (lazy platform-side registration) must be seen.
        let rings: Vec<Arc<Ring>> = shared.rings.lock().expect("ring registry poisoned").clone();
        for ring in &rings {
            buf.clear();
            ring.drain(&mut buf);
            let stage = ring.stage().index();
            for &(seq, t) in &buf {
                ingest(&mut pending, &mut report, config, hists, stage, seq, t);
            }
        }
        if stopping {
            report.dropped = rings.iter().map(|r| r.dropped()).sum();
            return report;
        }
        sleep_interruptible(config.drain_interval, &shared.stop);
    }
}

/// Folds one stamp into the match state, publishing every stage pair it
/// completes.
fn ingest(
    pending: &mut BTreeMap<u64, SeqState>,
    report: &mut TraceReport,
    config: &TraceConfig,
    hists: &[Histogram],
    stage: usize,
    seq: u64,
    t: u64,
) {
    let state = pending.entry(seq).or_default();
    if state.t[stage].is_none() {
        state.t[stage] = Some(t);
    }
    for (i, (a, b, name)) in PAIR_METRICS.iter().enumerate() {
        if state.recorded & (1 << i) != 0 {
            continue;
        }
        if let (Some(ta), Some(tb)) = (state.t[a.index()], state.t[b.index()]) {
            state.recorded |= 1 << i;
            // Stamps are taken in pipeline order, so tb >= ta up to clock
            // granularity; saturate as belt and braces.
            let delta = tb.saturating_sub(ta);
            hists[i].record(delta);
            report.matched += 1;
            if report.records.len() < config.max_records {
                report
                    .records
                    .push(MetricRecord::int(tb, TRACE_SOURCE, name, delta as i64));
            } else {
                report.truncated += 1;
            }
        }
    }
    while pending.len() > config.max_pending {
        pending.pop_first();
        report.evicted += 1;
    }
}

/// Sleeps `total` in short slices so `stop` never waits a full interval.
fn sleep_interruptible(total: Duration, stop: &AtomicBool) {
    // Parked rather than slept: `Tracer::stop` unparks the collector, so
    // shutdown latency is bounded by one drain, not one interval. The
    // unpark token makes a wake-before-park return immediately, closing
    // the race with a stop raised between the flag check and the park.
    let deadline = std::time::Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let now = std::time::Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::park_timeout(deadline - now);
    }
}

/// A lazily installed tracer slot for platform threads that are spawned
/// *before* the harness can hand them a tracer (engines start eagerly in
/// `SystemUnderTest::start`, tracer installation happens afterwards).
///
/// Worker threads poll [`TracerCell::probe`] until it yields a probe:
/// while no tracer is installed, that is a single relaxed atomic load
/// per call — cheap enough for per-event use.
#[derive(Clone, Default)]
pub struct TracerCell(Arc<CellInner>);

#[derive(Default)]
struct CellInner {
    installed: AtomicBool,
    tracer: Mutex<Option<Tracer>>,
}

impl fmt::Debug for TracerCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracerCell")
            .field("installed", &self.0.installed.load(Ordering::Relaxed))
            .finish()
    }
}

impl TracerCell {
    /// An empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the shared tracer. Probes created from the
    /// previous tracer keep stamping into it.
    pub fn install(&self, tracer: &Tracer) {
        *self.0.tracer.lock().expect("tracer slot poisoned") = Some(tracer.clone());
        self.0.installed.store(true, Ordering::Release);
    }

    /// A probe for `stage` from the installed tracer, or `None` while no
    /// tracer is installed (the fast path: one atomic load).
    #[inline]
    pub fn probe(&self, stage: Stage) -> Option<Probe> {
        if !self.0.installed.load(Ordering::Acquire) {
            return None;
        }
        self.0
            .tracer
            .lock()
            .expect("tracer slot poisoned")
            .as_ref()
            .map(|t| t.probe(stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::ManualClock;

    fn manual() -> (Arc<ManualClock>, Arc<dyn Clock>) {
        let clock = Arc::new(ManualClock::new());
        (Arc::clone(&clock), clock as Arc<dyn Clock>)
    }

    #[test]
    fn matches_stage_pairs_by_sequence() {
        let (manual, clock) = manual();
        let hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &hub);
        let emit = tracer.probe(Stage::PacedEmit);
        let conn = tracer.probe(Stage::ConnectorRecv);
        let apply = tracer.probe(Stage::EngineApply);

        for i in 0..10u64 {
            manual.set_micros(1_000 * i);
            emit.stamp();
            manual.set_micros(1_000 * i + 40);
            conn.stamp();
            // Shards apply out of order but carry the sequence.
            manual.set_micros(1_000 * i + 100);
            apply.stamp_seq(i);
        }
        let report = tracer.stop();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.evicted, 0);
        // Two pairs complete per event: emit→connector and
        // connector→apply.
        assert_eq!(report.matched, 20);
        let e2c: Vec<&MetricRecord> = report
            .records
            .iter()
            .filter(|r| r.metric == "emit_to_connector_micros")
            .collect();
        assert_eq!(e2c.len(), 10);
        for r in &e2c {
            assert_eq!(r.source, TRACE_SOURCE);
            assert_eq!(r.value.as_f64(), Some(40.0));
        }
        let c2a = report
            .records
            .iter()
            .filter(|r| r.metric == "connector_to_apply_micros")
            .count();
        assert_eq!(c2a, 10);
        // The hub histograms saw the same samples (live L1 publication).
        let hist = hub.histogram("emit_to_connector_micros").snapshot();
        assert_eq!(hist.count, 10);
        assert_eq!(hist.max, 40);
    }

    #[test]
    fn sampling_stamps_the_same_events_at_every_stage() {
        let (_, clock) = manual();
        let hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(16), clock, &hub);
        let emit = tracer.probe(Stage::PacedEmit);
        let conn = tracer.probe(Stage::ConnectorRecv);
        // Emit stamps in mixed batch sizes, the connector one by one: the
        // sampled sequence set must still be identical.
        emit.stamp_n(10);
        emit.stamp_n(30);
        for _ in 0..60 {
            emit.stamp();
        }
        for _ in 0..100 {
            conn.stamp();
        }
        let report = tracer.stop();
        // Sampled seqs: 0, 16, …, 96 → 7 matched pairs.
        let pairs: Vec<&MetricRecord> = report
            .records
            .iter()
            .filter(|r| r.metric == "emit_to_connector_micros")
            .collect();
        assert_eq!(pairs.len(), 7, "expected 7 sampled events");
        assert_eq!(report.matched, 7);
    }

    #[test]
    fn unmatched_stages_report_nothing() {
        let (_, clock) = manual();
        let hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &hub);
        let emit = tracer.probe(Stage::PacedEmit);
        emit.stamp_n(50);
        let report = tracer.stop();
        assert_eq!(report.matched, 0);
        assert!(report.records.is_empty());
        assert_eq!(hub.histogram("emit_to_connector_micros").count(), 0);
    }

    #[test]
    fn late_probes_are_picked_up() {
        // A platform worker registers its probe only after the run (and
        // the collector) started — the lazy TracerCell path.
        let (_, clock) = manual();
        let hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &hub);
        let cell = TracerCell::new();
        assert!(cell.probe(Stage::EngineApply).is_none());

        let emit = tracer.probe(Stage::ConnectorRecv);
        emit.stamp_n(8);
        cell.install(&tracer);
        let apply = cell.probe(Stage::EngineApply).expect("installed");
        for seq in 0..8 {
            apply.stamp_seq(seq);
        }
        let report = tracer.stop();
        assert_eq!(report.matched, 8);
    }

    #[test]
    fn pending_cap_evicts_oldest() {
        let (_, clock) = manual();
        let hub = MetricsHub::new();
        let mut config = TraceConfig::default().sampling(1);
        config.max_pending = 16;
        let tracer = Tracer::new(config, clock, &hub);
        let emit = tracer.probe(Stage::PacedEmit);
        // 1000 forever-unmatched stamps: the pending map must stay
        // bounded.
        emit.stamp_n(1_000);
        let report = tracer.stop();
        assert!(
            report.evicted >= 1_000 - 16 - 1,
            "evicted {}",
            report.evicted
        );
        assert_eq!(report.matched, 0);
    }

    #[test]
    fn record_cap_truncates_but_histograms_keep_counting() {
        let (_, clock) = manual();
        let hub = MetricsHub::new();
        let mut config = TraceConfig::default().sampling(1);
        config.max_records = 10;
        let tracer = Tracer::new(config, clock, &hub);
        let emit = tracer.probe(Stage::PacedEmit);
        let conn = tracer.probe(Stage::ConnectorRecv);
        emit.stamp_n(100);
        conn.stamp_n(100);
        let report = tracer.stop();
        assert_eq!(report.matched, 100);
        assert_eq!(report.records.len(), 10);
        assert_eq!(report.truncated, 90);
        assert_eq!(hub.histogram("emit_to_connector_micros").count(), 100);
    }

    #[test]
    fn stop_is_idempotent_across_clones() {
        let (_, clock) = manual();
        let hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default(), clock, &hub);
        let clone = tracer.clone();
        let _ = tracer.stop();
        let second = clone.stop();
        assert_eq!(second.matched, 0);
        assert!(second.records.is_empty());
    }

    // Wall-clock overhead guard: run by the dedicated CI timing job
    // (`cargo test --release -- --ignored`). The precise < 5% ingest
    // budget is measured by the `ingest/tracing` criterion rows; this
    // assertion is deliberately generous so shared runners don't flake.
    #[test]
    #[ignore = "wall-clock timing; run via the CI timing job"]
    fn sampled_tracing_overhead_stays_bounded() {
        use std::hint::black_box;
        use std::time::Instant;
        const EVENTS: u64 = 2_000_000;

        // Baseline: the per-event work of a dispatch loop without
        // tracing (a counter bump the optimizer cannot elide).
        let mut acc = 0u64;
        let start = Instant::now();
        for i in 0..EVENTS {
            acc = acc.wrapping_add(black_box(i));
        }
        let baseline = start.elapsed();
        black_box(acc);

        let clock: Arc<dyn Clock> = Arc::new(gt_metrics::WallClock::start());
        let hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(64), clock, &hub);
        let probe = tracer.probe(Stage::PacedEmit);
        let mut acc = 0u64;
        let start = Instant::now();
        for i in 0..EVENTS {
            acc = acc.wrapping_add(black_box(i));
            probe.stamp();
        }
        let traced = start.elapsed();
        black_box(acc);
        tracer.stop();

        // The absolute per-event cost is what the 5% ingest budget is
        // about: at 1-in-64 sampling a stamp must stay in the
        // few-nanosecond range (5% of the ~100 ns/event connector path).
        let per_event_nanos =
            (traced.as_nanos().saturating_sub(baseline.as_nanos())) as f64 / EVENTS as f64;
        assert!(
            per_event_nanos < 25.0,
            "sampled stamp costs {per_event_nanos:.1} ns/event (budget 25 ns)"
        );
    }
}

#![warn(missing_docs)]

//! # gt-trace
//!
//! Level-2 in-source event tracing (paper §4.3): sampled per-event
//! tracepoints that stamp a graph event at each pipeline stage and turn
//! matched stage pairs into end-to-end latency breakdowns.
//!
//! The paper's third evaluation level instruments the system under test
//! *in source*. Always-on per-event tracing would perturb the very
//! latencies it measures, so — following the bounded-overhead style of
//! production stream processors (Flink's latency markers) — this crate
//! samples 1-in-N events and keeps the hot path to one modulo test, with
//! a clock read and a lock-free ring push only for sampled events:
//!
//! ```text
//! reader ──► paced emit ──► sink write ──► connector ──► engine apply
//!   │probe       │probe         │probe        │probe         │probe
//!   ▼            ▼              ▼             ▼              ▼
//!  ring          ring           ring          ring           ring      (per thread)
//!   └────────────┴──────┬───────┴─────────────┴──────────────┘
//!                       ▼  collector thread (drains, matches seqs)
//!        stage-pair Histograms in the MetricsHub  +  per-sample records
//! ```
//!
//! **Correlation without metadata.** Events are never tagged: every
//! stage counts the graph events flowing through it, and because the
//! pipeline preserves stream order at each tracepoint, position *is*
//! identity. All probes sample the same rule (`seq % N == 0`), so the
//! same events are stamped at every stage and a [`Stage::EngineApply`]
//! stamp for seq 128 matches the [`Stage::PacedEmit`] stamp for seq 128.
//! Stages that process out of stream order (sharded appliers) stamp with
//! an externally carried sequence number ([`Probe::stamp_seq`]).
//!
//! The collector publishes each matched stage pair twice: live into
//! [`gt_metrics::Histogram`]s (so a Level-1 `HubSampler` emits
//! `count`/`mean`/`p99`/`max` series for free while the run is still
//! going), and as one [`gt_metrics::MetricRecord`] per sampled event
//! (source `trace`), timestamped at the later stage — which is what lets
//! `gt-analysis` slice latency spikes by marker window afterwards.

mod ring;
mod stage;
mod tracer;

pub use stage::{Stage, STAGE_COUNT};
pub use tracer::{Probe, TraceConfig, TraceReport, Tracer, TracerCell, PAIR_METRICS, TRACE_SOURCE};

//! Percentile estimation with linear interpolation.
//!
//! All entry points are NaN-safe: a degraded sampler occasionally emits
//! `NaN` (a division by a zero interval, a salvaged partial log), and one
//! such sample must not abort the analysis of an otherwise healthy run.
//! NaNs are filtered out and *flagged* — [`CleanSeries`] carries the
//! count, so reports can annotate rather than silently drop.

/// A series with its NaN samples filtered out and counted.
///
/// The typed result of [`CleanSeries::of`]: `values` is the finite-sortable
/// remainder (NaN-free, ascending), `nan_count` how many samples were
/// dropped. An all-NaN input yields an empty `values`, which downstream
/// consumers degrade to an "insufficient samples" row.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanSeries {
    /// The NaN-free samples, sorted ascending.
    pub values: Vec<f64>,
    /// How many NaN samples were dropped.
    pub nan_count: usize,
}

impl CleanSeries {
    /// Filters NaNs out of `values` and sorts the remainder ascending
    /// (total order, so signed infinities and zeros sort deterministically).
    pub fn of(values: &[f64]) -> CleanSeries {
        let mut clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        clean.sort_by(f64::total_cmp);
        CleanSeries {
            nan_count: values.len() - clean.len(),
            values: clean,
        }
    }

    /// Whether any usable samples remain.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of usable samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The `p`-th percentile of the clean samples; `None` if none remain.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(percentile_sorted(&self.values, p))
    }
}

/// The `p`-th percentile (`0.0..=100.0`) of `values` using linear
/// interpolation between closest ranks. NaN samples are ignored; returns
/// `None` when no usable (non-NaN) samples remain.
///
/// The input need not be sorted; a sorted copy is made internally. For
/// repeated queries over the same data, use [`CleanSeries::of`] once and
/// query it, or sort and call [`percentile_sorted`].
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    CleanSeries::of(values).percentile(p)
}

/// Like [`percentile`], but requires `sorted` to be ascending.
///
/// # Panics
/// If `sorted` is empty or `p` is outside `0.0..=100.0`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A bundle of the quantiles GraphTides plots use: min, p5, median, p95,
/// p99, max (Figure 3a reports "range covers 95%, 5th percentile to
/// maximum").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Minimum value.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum value.
    pub max: f64,
}

impl Quantiles {
    /// Computes the bundle, ignoring NaN samples. Returns `None` when no
    /// usable samples remain — including a non-empty but all-NaN input,
    /// so callers must degrade gracefully rather than `expect` on
    /// non-emptiness of the raw series.
    pub fn of(values: &[f64]) -> Option<Quantiles> {
        let clean = CleanSeries::of(values);
        let sorted = &clean.values;
        if sorted.is_empty() {
            return None;
        }
        Some(Quantiles {
            min: sorted[0],
            p5: percentile_sorted(sorted, 5.0),
            median: percentile_sorted(sorted, 50.0),
            p95: percentile_sorted(sorted, 95.0),
            p99: percentile_sorted(sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Tail quantiles for sojourn-latency analysis: p50/p95/p99/p999 plus the
/// sample count the estimate rests on (a p999 from 50 samples is noise;
/// the count lets reports say so).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailQuantiles {
    /// Usable (non-NaN) samples behind the estimates.
    pub n: usize,
    /// NaN samples dropped from the input.
    pub nan_count: usize,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum value.
    pub max: f64,
}

impl TailQuantiles {
    /// Computes the tail bundle, ignoring NaN samples. Returns `None`
    /// when no usable samples remain.
    pub fn of(values: &[f64]) -> Option<TailQuantiles> {
        let clean = CleanSeries::of(values);
        let sorted = &clean.values;
        if sorted.is_empty() {
            return None;
        }
        Some(TailQuantiles {
            n: sorted.len(),
            nan_count: clean.nan_count,
            p50: percentile_sorted(sorted, 50.0),
            p95: percentile_sorted(sorted, 95.0),
            p99: percentile_sorted(sorted, 99.0),
            p999: percentile_sorted(sorted, 99.9),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
        assert_eq!(percentile(&[4.0, 1.0, 2.0, 3.0], 50.0), Some(2.5));
    }

    #[test]
    fn extremes() {
        let v = [5.0, 1.0, 9.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(9.0));
    }

    #[test]
    fn interpolation() {
        // 0..=10: p25 lands exactly on 2.5.
        let v: Vec<f64> = (0..=10).map(f64::from).collect();
        assert_eq!(percentile(&v, 25.0), Some(2.5));
        assert_eq!(percentile(&v, 95.0), Some(9.5));
    }

    #[test]
    fn single_value() {
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(Quantiles::of(&[]), None);
        assert_eq!(TailQuantiles::of(&[]), None);
    }

    // Regression: a single NaN rate sample from a degraded sampler used
    // to panic the sort and kill the whole report.
    #[test]
    fn nan_samples_are_filtered_not_fatal() {
        let v = [3.0, f64::NAN, 1.0, 2.0, f64::NAN];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        let q = Quantiles::of(&v).expect("three usable samples");
        assert_eq!(q.min, 1.0);
        assert_eq!(q.max, 3.0);
        let clean = CleanSeries::of(&v);
        assert_eq!(clean.len(), 3);
        assert_eq!(clean.nan_count, 2, "dropped NaNs are flagged, not hidden");
    }

    #[test]
    fn all_nan_degrades_to_none() {
        let v = [f64::NAN, f64::NAN];
        assert_eq!(percentile(&v, 50.0), None);
        assert_eq!(Quantiles::of(&v), None);
        let clean = CleanSeries::of(&v);
        assert!(clean.is_empty());
        assert_eq!(clean.nan_count, 2);
    }

    #[test]
    fn infinities_sort_deterministically() {
        let v = [f64::INFINITY, 1.0, f64::NEG_INFINITY];
        let q = Quantiles::of(&v).unwrap();
        assert_eq!(q.min, f64::NEG_INFINITY);
        assert_eq!(q.max, f64::INFINITY);
    }

    #[test]
    fn quantiles_bundle_is_ordered() {
        let v: Vec<f64> = (0..1000).map(f64::from).collect();
        let q = Quantiles::of(&v).unwrap();
        assert!(q.min <= q.p5);
        assert!(q.p5 <= q.median);
        assert!(q.median <= q.p95);
        assert!(q.p95 <= q.p99);
        assert!(q.p99 <= q.max);
        assert_eq!(q.min, 0.0);
        assert_eq!(q.max, 999.0);
        assert!((q.median - 499.5).abs() < 1e-9);
    }

    #[test]
    fn tail_quantiles_reach_into_the_tail() {
        // 10_000 samples 0..10_000: p999 ≈ 9989, far above p99 ≈ 9899.
        let v: Vec<f64> = (0..10_000).map(f64::from).collect();
        let t = TailQuantiles::of(&v).unwrap();
        assert_eq!(t.n, 10_000);
        assert!(t.p99 < t.p999);
        assert!((t.p999 - 9989.0).abs() < 1.0, "p999 = {}", t.p999);
        assert_eq!(t.max, 9999.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_percentile_panics() {
        percentile_sorted(&[1.0], 101.0);
    }
}

//! Percentile estimation with linear interpolation.

/// The `p`-th percentile (`0.0..=100.0`) of `values` using linear
/// interpolation between closest ranks. Returns `None` for empty input.
///
/// The input need not be sorted; a sorted copy is made internally. For
/// repeated queries over the same data, sort once and use
/// [`percentile_sorted`].
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    Some(percentile_sorted(&sorted, p))
}

/// Like [`percentile`], but requires `sorted` to be ascending.
///
/// # Panics
/// If `sorted` is empty or `p` is outside `0.0..=100.0`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A bundle of the quantiles GraphTides plots use: min, p5, median, p95,
/// p99, max (Figure 3a reports "range covers 95%, 5th percentile to
/// maximum").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Minimum value.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum value.
    pub max: f64,
}

impl Quantiles {
    /// Computes the bundle. Returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Quantiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
        Some(Quantiles {
            min: sorted[0],
            p5: percentile_sorted(&sorted, 5.0),
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
        assert_eq!(percentile(&[4.0, 1.0, 2.0, 3.0], 50.0), Some(2.5));
    }

    #[test]
    fn extremes() {
        let v = [5.0, 1.0, 9.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(9.0));
    }

    #[test]
    fn interpolation() {
        // 0..=10: p25 lands exactly on 2.5.
        let v: Vec<f64> = (0..=10).map(f64::from).collect();
        assert_eq!(percentile(&v, 25.0), Some(2.5));
        assert_eq!(percentile(&v, 95.0), Some(9.5));
    }

    #[test]
    fn single_value() {
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(Quantiles::of(&[]), None);
    }

    #[test]
    fn quantiles_bundle_is_ordered() {
        let v: Vec<f64> = (0..1000).map(f64::from).collect();
        let q = Quantiles::of(&v).unwrap();
        assert!(q.min <= q.p5);
        assert!(q.p5 <= q.median);
        assert!(q.median <= q.p95);
        assert!(q.p95 <= q.p99);
        assert!(q.p99 <= q.max);
        assert_eq!(q.min, 0.0);
        assert_eq!(q.max, 999.0);
        assert!((q.median - 499.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_percentile_panics() {
        percentile_sorted(&[1.0], 101.0);
    }
}

//! Time-series utilities for runtime metric analysis.
//!
//! Metrics in GraphTides are timestamped samples; the standard assessments
//! (stacked time-series plots, rate-over-time curves like Figures 3b–3d)
//! need bucketing, rate estimation, and alignment.

use serde::{Deserialize, Serialize};

/// A timestamped series of `(seconds_since_run_start, value)` samples,
/// kept in ascending time order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from samples, sorting by time.
    pub fn from_samples(mut samples: Vec<(f64, f64)>) -> Self {
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("timestamps must not be NaN"));
        TimeSeries { samples }
    }

    /// Appends a sample; must be at or after the last timestamp.
    ///
    /// # Panics
    /// If `t` precedes the latest sample.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "timestamps must be monotone: {t} < {last}");
        }
        self.samples.push((t, value));
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Just the values.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, v)| v).collect()
    }

    /// Mean value per fixed-width bucket over `[start, end)`. Buckets with
    /// no samples yield `None`.
    pub fn bucket_mean(&self, start: f64, end: f64, width: f64) -> Vec<Option<f64>> {
        assert!(width > 0.0, "bucket width must be positive");
        let buckets = ((end - start) / width).ceil().max(0.0) as usize;
        let mut sums = vec![(0.0f64, 0u64); buckets];
        for &(t, v) in &self.samples {
            if t < start || t >= end {
                continue;
            }
            let idx = ((t - start) / width) as usize;
            if idx < buckets {
                sums[idx].0 += v;
                sums[idx].1 += 1;
            }
        }
        sums.into_iter()
            .map(|(s, c)| (c > 0).then(|| s / c as f64))
            .collect()
    }

    /// Value range of the series, `None` when empty.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        self.samples.iter().fold(None, |acc, &(_, v)| match acc {
            None => Some((v, v)),
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
        })
    }
}

/// Converts raw event timestamps into an events-per-second series — the
/// replayer-side ingress rate measurement (§4.3 "Streaming Metrics").
#[derive(Debug, Clone, Default)]
pub struct RateSeries {
    timestamps: Vec<f64>,
}

impl RateSeries {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event at `t` seconds.
    pub fn record(&mut self, t: f64) {
        self.timestamps.push(t);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Events per second in fixed-width buckets over `[start, end)`,
    /// as a [`TimeSeries`] stamped at bucket starts.
    pub fn rate(&self, start: f64, end: f64, width: f64) -> TimeSeries {
        assert!(width > 0.0, "bucket width must be positive");
        let buckets = ((end - start) / width).ceil().max(0.0) as usize;
        let mut counts = vec![0u64; buckets];
        for &t in &self.timestamps {
            if t < start || t >= end {
                continue;
            }
            let idx = ((t - start) / width) as usize;
            if idx < buckets {
                counts[idx] += 1;
            }
        }
        TimeSeries::from_samples(
            counts
                .into_iter()
                .enumerate()
                .map(|(i, c)| (start + i as f64 * width, c as f64 / width))
                .collect(),
        )
    }

    /// Overall mean rate between first and last event (`None` if fewer
    /// than 2 events or zero elapsed time).
    pub fn mean_rate(&self) -> Option<f64> {
        if self.timestamps.len() < 2 {
            return None;
        }
        let lo = self
            .timestamps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .timestamps
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let elapsed = hi - lo;
        (elapsed > 0.0).then(|| (self.timestamps.len() - 1) as f64 / elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_monotonicity() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(1.0, 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn push_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(5.0, 1.0);
        ts.push(4.0, 1.0);
    }

    #[test]
    fn from_samples_sorts() {
        let ts = TimeSeries::from_samples(vec![(2.0, 20.0), (1.0, 10.0)]);
        assert_eq!(ts.samples(), [(1.0, 10.0), (2.0, 20.0)]);
    }

    #[test]
    fn bucket_means() {
        let ts = TimeSeries::from_samples(vec![(0.1, 1.0), (0.9, 3.0), (1.5, 10.0), (3.2, 7.0)]);
        let buckets = ts.bucket_mean(0.0, 4.0, 1.0);
        assert_eq!(buckets, [Some(2.0), Some(10.0), None, Some(7.0)]);
    }

    #[test]
    fn bucket_ignores_out_of_window() {
        let ts = TimeSeries::from_samples(vec![(-1.0, 5.0), (10.0, 5.0), (0.5, 2.0)]);
        let buckets = ts.bucket_mean(0.0, 1.0, 1.0);
        assert_eq!(buckets, [Some(2.0)]);
    }

    #[test]
    fn rate_estimation() {
        let mut rs = RateSeries::new();
        // 10 events in the first second, 5 in the second.
        for i in 0..10 {
            rs.record(i as f64 * 0.1);
        }
        for i in 0..5 {
            rs.record(1.0 + i as f64 * 0.2);
        }
        let rate = rs.rate(0.0, 2.0, 1.0);
        assert_eq!(rate.samples(), [(0.0, 10.0), (1.0, 5.0)]);
    }

    #[test]
    fn mean_rate() {
        let mut rs = RateSeries::new();
        for i in 0..=100 {
            rs.record(i as f64 * 0.01); // 100 events/s over 1 second
        }
        let rate = rs.mean_rate().unwrap();
        assert!((rate - 100.0).abs() < 1e-9, "rate {rate}");
        assert!(RateSeries::new().mean_rate().is_none());
    }

    #[test]
    fn min_max() {
        let ts = TimeSeries::from_samples(vec![(0.0, 3.0), (1.0, -1.0), (2.0, 9.0)]);
        assert_eq!(ts.min_max(), Some((-1.0, 9.0)));
        assert_eq!(TimeSeries::new().min_max(), None);
    }
}

//! Trend analysis over metric time series — Table 1's "trend analyses on
//! graph properties" and §3.2's temporal graph properties (densification
//! laws, growth rates).

use serde::{Deserialize, Serialize};

/// An ordinary-least-squares line fit over `(t, value)` samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trend {
    /// Slope: value change per unit time.
    pub slope: f64,
    /// Intercept at `t = 0`.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Samples fitted.
    pub n: usize,
}

impl Trend {
    /// The fitted value at time `t`.
    pub fn predict(&self, t: f64) -> f64 {
        self.intercept + self.slope * t
    }

    /// Whether the series grows over time with a decent fit.
    pub fn is_growing(&self, min_r_squared: f64) -> bool {
        self.slope > 0.0 && self.r_squared >= min_r_squared
    }
}

/// Fits a least-squares line; `None` with fewer than 2 samples or a
/// degenerate (constant-time) input.
pub fn linear_trend(samples: &[(f64, f64)]) -> Option<Trend> {
    let n = samples.len();
    if n < 2 {
        return None;
    }
    let n_f = n as f64;
    let mean_t = samples.iter().map(|&(t, _)| t).sum::<f64>() / n_f;
    let mean_v = samples.iter().map(|&(_, v)| v).sum::<f64>() / n_f;
    let mut cov = 0.0;
    let mut var_t = 0.0;
    let mut var_v = 0.0;
    for &(t, v) in samples {
        let dt = t - mean_t;
        let dv = v - mean_v;
        cov += dt * dv;
        var_t += dt * dt;
        var_v += dv * dv;
    }
    if var_t == 0.0 {
        return None;
    }
    let slope = cov / var_t;
    let intercept = mean_v - slope * mean_t;
    let r_squared = if var_v == 0.0 {
        1.0 // constant series: perfectly described by slope 0
    } else {
        (cov * cov) / (var_t * var_v)
    };
    Some(Trend {
        slope,
        intercept,
        r_squared,
        n,
    })
}

/// The densification exponent of Leskovec et al.'s densification law
/// `m ∝ n^a`, fitted as the slope of `log m` over `log n`. Social graphs
/// typically show `1 < a < 2` (edges grow superlinearly in vertices).
/// `None` when fewer than 2 usable (positive) samples exist.
pub fn densification_exponent(samples: &[(usize, usize)]) -> Option<f64> {
    let log_samples: Vec<(f64, f64)> = samples
        .iter()
        .filter(|&&(n, m)| n > 1 && m > 0)
        .map(|&(n, m)| ((n as f64).ln(), (m as f64).ln()))
        .collect();
    linear_trend(&log_samples).map(|t| t.slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let trend = linear_trend(&samples).unwrap();
        assert!((trend.slope - 2.0).abs() < 1e-12);
        assert!((trend.intercept - 3.0).abs() < 1e-12);
        assert!((trend.r_squared - 1.0).abs() < 1e-12);
        assert!((trend.predict(20.0) - 43.0).abs() < 1e-12);
        assert!(trend.is_growing(0.9));
    }

    #[test]
    fn noisy_line_keeps_slope_sign() {
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let t = i as f64;
                (t, 10.0 - 0.5 * t + if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let trend = linear_trend(&samples).unwrap();
        assert!(trend.slope < 0.0);
        assert!(!trend.is_growing(0.0));
        assert!(trend.r_squared > 0.8);
    }

    #[test]
    fn constant_series() {
        let samples: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        let trend = linear_trend(&samples).unwrap();
        assert_eq!(trend.slope, 0.0);
        assert_eq!(trend.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_trend(&[]).is_none());
        assert!(linear_trend(&[(1.0, 2.0)]).is_none());
        // All samples at the same time: undefined slope.
        assert!(linear_trend(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn densification_law_recovered() {
        // m = n^1.3 exactly.
        let samples: Vec<(usize, usize)> = (10..200)
            .step_by(10)
            .map(|n| (n, (n as f64).powf(1.3).round() as usize))
            .collect();
        let a = densification_exponent(&samples).unwrap();
        assert!((a - 1.3).abs() < 0.02, "exponent {a}");
    }

    #[test]
    fn densification_filters_degenerate_points() {
        assert!(densification_exponent(&[(0, 0), (1, 0)]).is_none());
        let a = densification_exponent(&[(0, 0), (10, 10), (100, 100)]).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
    }
}

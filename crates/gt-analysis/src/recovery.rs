//! Recovery-window analysis for chaos runs.
//!
//! A chaos run's merged log carries the fault/recovery journal (source
//! `chaos`) chronologically interleaved with the replayer's ingress-rate
//! series. [`recovery_windows`] correlates the two: for every fault it
//! measures the throughput baseline before the hit, the depth and
//! duration of the dip after it, the time until the rate climbed back to
//! a caller-chosen fraction of the baseline, and the events lost (and
//! duplicated, for platforms that report duplicates) to the fault — the
//! numbers a robustness experiment exists to produce.

use gt_metrics::{MetricValue, ResultLog};

/// The result-log source under which chaos journals are folded. Kept as
/// a string constant so this crate analyses chaos output without
/// depending on the injector (same decoupling as
/// [`crate::markers::TRACE_SOURCE`]).
pub const CHAOS_SOURCE: &str = "chaos";

/// What happened around one injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryWindow {
    /// The fault's journal description (`crash(worker=1, restart=+200)
    /// ok`, `disconnect(lose=300)`, …).
    pub fault: String,
    /// When the fault fired, seconds since run start.
    pub t_fault_secs: f64,
    /// Mean ingress rate over the pre-fault window (since the previous
    /// fault, or run start), events/s. `0.0` when no rate samples
    /// precede the fault.
    pub baseline_rate: f64,
    /// Lowest ingress rate observed between this fault and the next (or
    /// run end), events/s.
    pub dip_rate: f64,
    /// Relative dip depth, `1 - dip_rate / baseline_rate` clamped to
    /// `[0, 1]`; `0.0` when there is no usable baseline.
    pub dip_depth: f64,
    /// Seconds from the fault until the rate first climbed back to the
    /// recovery fraction of the baseline. `None` = never recovered
    /// within this window (or no usable baseline).
    pub time_to_recover_secs: Option<f64>,
    /// The first journaled recovery action inside the window
    /// (`restart(worker=1) ok`, `reconnected after 300 lost events`),
    /// with its time in seconds since run start.
    pub recovery: Option<(String, f64)>,
    /// Graph events lost to faults inside this window (from the
    /// journal's `events_lost` records).
    pub events_lost: u64,
    /// Graph events applied more than once during recovery, for
    /// platforms that journal `events_duplicated`. The bundled platforms
    /// replay under an exclusive lock and report none.
    pub events_duplicated: u64,
}

/// Text records for one metric under `source` as `(seconds,
/// description)`.
fn journal_texts(log: &ResultLog, source: &str, metric: &str) -> Vec<(f64, String)> {
    log.records()
        .iter()
        .filter(|r| r.source == source && r.metric == metric)
        .filter_map(|r| match &r.value {
            MetricValue::Text(text) => Some((r.t_secs(), text.clone())),
            _ => None,
        })
        .collect()
}

/// Sums an int-valued journal metric over `[start, end)` seconds.
fn journal_sum(log: &ResultLog, source: &str, metric: &str, start: f64, end: f64) -> u64 {
    log.records()
        .iter()
        .filter(|r| r.source == source && r.metric == metric)
        .filter(|r| {
            let t = r.t_secs();
            t >= start && t < end
        })
        .filter_map(|r| r.value.as_f64())
        .sum::<f64>() as u64
}

/// Correlates the chaos journal with the replayer's ingress-rate series:
/// one [`RecoveryWindow`] per journaled fault, in fault order.
///
/// `recovery_fraction` defines "recovered": the first post-fault rate
/// sample at or above `recovery_fraction * baseline` closes the
/// time-to-recover clock (0.9 is a reasonable default — throughput back
/// to 90 % of the pre-fault mean).
///
/// Window boundaries are the fault times themselves: samples between
/// fault *n* and fault *n + 1* belong to window *n*, and the baseline of
/// window *n* is the mean rate of window *n − 1* (run start for the
/// first). Stacked faults therefore measure each fault against the
/// (possibly already degraded) regime it actually interrupted.
pub fn recovery_windows(log: &ResultLog, recovery_fraction: f64) -> Vec<RecoveryWindow> {
    recovery_windows_from(
        log,
        CHAOS_SOURCE,
        "replayer",
        "ingress_rate",
        recovery_fraction,
    )
}

/// [`recovery_windows`] with the journal source and the rate series
/// chosen by the caller.
///
/// The chaos injector folds its journal under source `chaos` and the
/// single-sink replayer publishes `ingress_rate`; the netem proxy folds
/// under source `netem` and a load run's throughput lives in the
/// per-connection `achieved_rate.*` series instead. This variant
/// correlates any fault/recovery journal (text metrics `fault` and
/// `recovery`, int metrics `events_lost`/`events_duplicated` under
/// `fault_source`) against any `(rate_source, rate_metric)` float
/// series. Window semantics are identical to [`recovery_windows`].
pub fn recovery_windows_from(
    log: &ResultLog,
    fault_source: &str,
    rate_source: &str,
    rate_metric: &str,
    recovery_fraction: f64,
) -> Vec<RecoveryWindow> {
    let faults = journal_texts(log, fault_source, "fault");
    if faults.is_empty() {
        return Vec::new();
    }
    let recoveries = journal_texts(log, fault_source, "recovery");
    let rate = log.series(rate_source, rate_metric);

    let mut windows = Vec::with_capacity(faults.len());
    for (i, (t_fault, fault)) in faults.iter().enumerate() {
        let window_start = if i == 0 { 0.0 } else { faults[i - 1].0 };
        let window_end = faults
            .get(i + 1)
            .map_or(f64::INFINITY, |&(t_next, _)| t_next);

        let pre: Vec<f64> = rate
            .iter()
            .filter(|&&(t, _)| t >= window_start && t < *t_fault)
            .map(|&(_, v)| v)
            .collect();
        let baseline_rate = if pre.is_empty() {
            0.0
        } else {
            pre.iter().sum::<f64>() / pre.len() as f64
        };

        let post: Vec<(f64, f64)> = rate
            .iter()
            .filter(|&&(t, _)| t >= *t_fault && t < window_end)
            .copied()
            .collect();
        let dip_rate = post.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        let dip_rate = if dip_rate.is_finite() { dip_rate } else { 0.0 };
        let dip_depth = if baseline_rate > 0.0 {
            (1.0 - dip_rate / baseline_rate).clamp(0.0, 1.0)
        } else {
            0.0
        };

        let time_to_recover_secs = if baseline_rate > 0.0 {
            post.iter()
                .find(|&&(_, v)| v >= recovery_fraction * baseline_rate)
                .map(|&(t, _)| t - t_fault)
        } else {
            None
        };

        let recovery = recoveries
            .iter()
            .find(|&&(t, _)| t >= *t_fault && t < window_end)
            .map(|(t, text)| (text.clone(), *t));

        windows.push(RecoveryWindow {
            fault: fault.clone(),
            t_fault_secs: *t_fault,
            baseline_rate,
            dip_rate,
            dip_depth,
            time_to_recover_secs,
            recovery,
            events_lost: journal_sum(log, fault_source, "events_lost", *t_fault, window_end),
            events_duplicated: journal_sum(
                log,
                fault_source,
                "events_duplicated",
                *t_fault,
                window_end,
            ),
        });
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::MetricRecord;

    fn micros(secs: f64) -> u64 {
        (secs * 1e6) as u64
    }

    fn rate(t: f64, v: f64) -> MetricRecord {
        MetricRecord::float(micros(t), "replayer", "ingress_rate", v)
    }

    fn fault(t: f64, text: &str) -> MetricRecord {
        MetricRecord::text(micros(t), CHAOS_SOURCE, "fault", text)
    }

    fn recovery(t: f64, text: &str) -> MetricRecord {
        MetricRecord::text(micros(t), CHAOS_SOURCE, "recovery", text)
    }

    fn lost(t: f64, n: i64) -> MetricRecord {
        MetricRecord::int(micros(t), CHAOS_SOURCE, "events_lost", n)
    }

    #[test]
    fn empty_log_has_no_windows() {
        let log = ResultLog::from_records(vec![rate(1.0, 100.0)]);
        assert!(recovery_windows(&log, 0.9).is_empty());
    }

    #[test]
    fn single_fault_measures_dip_and_recovery_time() {
        // Steady 100 ev/s, a crash at t=3 dips to 20, back above 90 at
        // t=6: baseline 100, dip depth 0.8, TTR 3 s.
        let log = ResultLog::from_records(vec![
            rate(1.0, 100.0),
            rate(2.0, 100.0),
            fault(3.0, "crash(worker=0) ok"),
            rate(3.5, 20.0),
            rate(4.5, 60.0),
            recovery(5.0, "restart(worker=0) ok"),
            rate(6.0, 95.0),
            rate(7.0, 100.0),
        ]);
        let windows = recovery_windows(&log, 0.9);
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.fault, "crash(worker=0) ok");
        assert!((w.t_fault_secs - 3.0).abs() < 1e-9);
        assert!((w.baseline_rate - 100.0).abs() < 1e-9);
        assert!((w.dip_rate - 20.0).abs() < 1e-9);
        assert!((w.dip_depth - 0.8).abs() < 1e-9);
        assert!((w.time_to_recover_secs.unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(w.recovery, Some(("restart(worker=0) ok".to_owned(), 5.0)));
        assert_eq!(w.events_lost, 0);
    }

    #[test]
    fn stacked_faults_partition_the_timeline() {
        let log = ResultLog::from_records(vec![
            rate(1.0, 100.0),
            fault(2.0, "disconnect(lose=50)"),
            rate(2.5, 40.0),
            lost(3.0, 50),
            recovery(3.0, "reconnected after 50 lost events"),
            rate(3.5, 80.0),
            fault(4.0, "stall(ms=500)"),
            rate(4.5, 10.0),
            recovery(5.0, "stall ended after 500 ms"),
            rate(5.5, 90.0),
        ]);
        let windows = recovery_windows(&log, 0.9);
        assert_eq!(windows.len(), 2);
        // Window 0: baseline from [0, 2), losses inside [2, 4).
        assert!((windows[0].baseline_rate - 100.0).abs() < 1e-9);
        assert_eq!(windows[0].events_lost, 50);
        assert!((windows[0].dip_rate - 40.0).abs() < 1e-9);
        // Window 1's baseline is the degraded regime between the faults.
        assert!((windows[1].baseline_rate - 60.0).abs() < 1e-9);
        assert_eq!(windows[1].events_lost, 0);
        assert!((windows[1].dip_rate - 10.0).abs() < 1e-9);
        assert_eq!(
            windows[1].recovery.as_ref().unwrap().0,
            "stall ended after 500 ms"
        );
    }

    #[test]
    fn unrecovered_fault_has_no_ttr() {
        let log = ResultLog::from_records(vec![
            rate(1.0, 100.0),
            fault(2.0, "crash(worker=1) ok"),
            rate(3.0, 30.0),
            rate(4.0, 35.0),
        ]);
        let windows = recovery_windows(&log, 0.9);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].time_to_recover_secs, None);
        assert_eq!(windows[0].recovery, None);
        assert!((windows[0].dip_depth - 0.7).abs() < 1e-9);
    }

    #[test]
    fn parameterized_sources_correlate_netem_against_load_rate() {
        // A netem partition journaled under source `netem`, correlated
        // against a load connection's achieved-rate series — nothing
        // under the default chaos/replayer sources.
        let log = ResultLog::from_records(vec![
            MetricRecord::float(micros(1.0), "load", "achieved_rate.main", 200.0),
            MetricRecord::text(micros(2.0), "netem", "fault", "partition(dur=500ms)@2s"),
            MetricRecord::float(micros(2.3), "load", "achieved_rate.main", 40.0),
            MetricRecord::text(
                micros(2.5),
                "netem",
                "recovery",
                "heal(partition(dur=500ms)@2s)",
            ),
            MetricRecord::float(micros(3.0), "load", "achieved_rate.main", 190.0),
        ]);
        assert!(recovery_windows(&log, 0.9).is_empty());
        let windows = recovery_windows_from(&log, "netem", "load", "achieved_rate.main", 0.9);
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.fault, "partition(dur=500ms)@2s");
        assert!((w.baseline_rate - 200.0).abs() < 1e-9);
        assert!((w.dip_rate - 40.0).abs() < 1e-9);
        assert!((w.time_to_recover_secs.unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(
            w.recovery.as_ref().unwrap().0,
            "heal(partition(dur=500ms)@2s)"
        );
    }

    #[test]
    fn missing_baseline_degrades_gracefully() {
        // Fault before any rate sample: no baseline, no TTR, depth 0.
        let log = ResultLog::from_records(vec![
            fault(0.5, "disconnect(lose=10)"),
            lost(0.6, 10),
            rate(1.0, 50.0),
        ]);
        let windows = recovery_windows(&log, 0.9);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].baseline_rate, 0.0);
        assert_eq!(windows[0].dip_depth, 0.0);
        assert_eq!(windows[0].time_to_recover_secs, None);
        assert_eq!(windows[0].events_lost, 10);
    }
}

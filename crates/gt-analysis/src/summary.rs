//! Aggregate summaries and confidence-interval comparison (§4.5).
//!
//! The paper's methodology requires "at least n ≥ 30 test runs for each
//! configuration due to the central limit theory", after which systems are
//! compared via 95% confidence intervals of aggregated metrics:
//! non-overlapping intervals are significantly different.

use serde::{Deserialize, Serialize};

/// Two-sided 97.5% Student-t critical values for degrees of freedom
/// 1..=29, indexed by `df - 1`. Below the paper's n ≥ 30 rule the normal
/// z = 1.96 understates interval widths badly (df = 2 needs 4.30, more
/// than twice the normal width); above it the t distribution is within
/// ~2% of z and the table hands over to 1.96.
const T_CRITICAL_975: [f64; 29] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045,
];

/// The 97.5% critical value for a mean estimated from `n` observations:
/// Student-t for small samples, z = 1.96 once the paper's n ≥ 30 rule
/// licenses the normal approximation.
pub fn critical_value_95(n: u64) -> f64 {
    if n >= 30 {
        1.96
    } else {
        // ci95 requires n >= 2, so df = n - 1 is in 1..=28 here.
        T_CRITICAL_975[(n.max(2) - 2) as usize]
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (Bessel-corrected); 0 with fewer than 2 points.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The 95% confidence interval of the mean: Student-t critical
    /// values below n = 30 (where the normal z = 1.96 understates the
    /// width), the normal approximation the paper's n ≥ 30 rule licenses
    /// from there on.
    ///
    /// Returns `None` with fewer than 2 observations.
    pub fn ci95(&self) -> Option<ConfidenceInterval> {
        if self.n < 2 {
            return None;
        }
        let half = critical_value_95(self.n) * self.stddev() / (self.n as f64).sqrt();
        Some(ConfidenceInterval {
            mean: self.mean,
            lo: self.mean - half,
            hi: self.mean + half,
            n: self.n,
        })
    }

    /// Whether the sample size meets the paper's n ≥ 30 guideline.
    pub fn meets_n30(&self) -> bool {
        self.n >= 30
    }
}

/// A confidence interval of a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Sample size.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Whether this interval overlaps another.
    ///
    /// Only meaningful for well-formed intervals: a NaN bound makes every
    /// comparison false, so a degenerate interval silently reads as
    /// "disjoint" here — callers must check [`Self::is_degenerate`] first
    /// (as [`compare_ci95`] does) instead of trusting this answer.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Whether any bound is non-finite (NaN-poisoned input, infinite
    /// variance). A degenerate interval supports no verdict.
    pub fn is_degenerate(&self) -> bool {
        !(self.mean.is_finite() && self.lo.is_finite() && self.hi.is_finite())
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// The paper's comparison rule: the verdict of comparing two systems by
/// CI95 of an aggregated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `a`'s interval lies entirely above `b`'s: significantly greater.
    AGreater,
    /// `b`'s interval lies entirely above `a`'s.
    BGreater,
    /// Intervals overlap: no significant difference at this level.
    NotSignificant,
}

/// A CI95 verdict together with the methodology caveat it carries: a
/// significant difference from 3 runs is not the paper's significant
/// difference from 30.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CiComparison {
    /// The overlap verdict.
    pub verdict: Comparison,
    /// Whether *both* samples meet the paper's n ≥ 30 rule. A `false`
    /// here means the verdict rests on small-sample t intervals and must
    /// be reported as provisional.
    pub meets_n30: bool,
}

impl CiComparison {
    /// Whether this is a significant difference that also meets the
    /// paper's n ≥ 30 repetition rule — the only verdict the orchestrator
    /// reports as conclusive.
    pub fn is_conclusive(&self) -> bool {
        self.meets_n30 && self.verdict != Comparison::NotSignificant
    }
}

/// Compares two samples via non-overlapping CI95 (§4.5). Returns `None`
/// when either sample is too small for an interval, or when either
/// interval is degenerate (NaN-poisoned metrics must yield "no verdict",
/// never a spurious significant difference — with a NaN bound every
/// float comparison is false, which the overlap logic would otherwise
/// misread as disjoint intervals).
pub fn compare_ci95(a: &Summary, b: &Summary) -> Option<CiComparison> {
    let (ca, cb) = (a.ci95()?, b.ci95()?);
    if ca.is_degenerate() || cb.is_degenerate() {
        return None;
    }
    let verdict = if ca.overlaps(&cb) {
        Comparison::NotSignificant
    } else if ca.lo > cb.hi {
        Comparison::AGreater
    } else {
        Comparison::BGreater
    };
    Some(CiComparison {
        verdict,
        meets_n30: a.meets_n30() && b.meets_n30(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&values);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_and_singleton() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert!(s.ci95().is_none());
        let one = Summary::of(&[3.0]);
        assert_eq!(one.mean(), 3.0);
        assert!(one.ci95().is_none());
    }

    #[test]
    fn ci_shrinks_with_n() {
        let narrow = Summary::of(
            &vec![10.0; 100]
                .iter()
                .enumerate()
                .map(|(i, v)| v + (i % 2) as f64)
                .collect::<Vec<_>>(),
        );
        let wide = Summary::of(&[10.0, 11.0, 10.0, 11.0]);
        let cn = narrow.ci95().unwrap();
        let cw = wide.ci95().unwrap();
        assert!(cn.hi - cn.lo < cw.hi - cw.lo);
    }

    #[test]
    fn comparison_verdicts() {
        let a = Summary::of(&(0..40).map(|i| 100.0 + (i % 3) as f64).collect::<Vec<_>>());
        let b = Summary::of(&(0..40).map(|i| 10.0 + (i % 3) as f64).collect::<Vec<_>>());
        let ab = compare_ci95(&a, &b).unwrap();
        assert_eq!(ab.verdict, Comparison::AGreater);
        assert!(ab.meets_n30);
        assert!(ab.is_conclusive());
        assert_eq!(compare_ci95(&b, &a).unwrap().verdict, Comparison::BGreater);
        let c = Summary::of(&(0..40).map(|i| 100.2 + (i % 3) as f64).collect::<Vec<_>>());
        let ac = compare_ci95(&a, &c).unwrap();
        assert_eq!(ac.verdict, Comparison::NotSignificant);
        assert!(!ac.is_conclusive());
    }

    #[test]
    fn small_sample_comparison_carries_the_n30_caveat() {
        // 3 repetitions each, clearly separated: the verdict is still
        // AGreater, but it must arrive flagged as below the paper's
        // repetition rule so the orchestrator reports it as provisional.
        let a = Summary::of(&[100.0, 101.0, 102.0]);
        let b = Summary::of(&[10.0, 11.0, 12.0]);
        let cmp = compare_ci95(&a, &b).unwrap();
        assert_eq!(cmp.verdict, Comparison::AGreater);
        assert!(!cmp.meets_n30);
        assert!(!cmp.is_conclusive());
        // One large side is not enough: both must meet n >= 30.
        let big = Summary::of(&(0..40).map(|i| (i % 3) as f64).collect::<Vec<_>>());
        assert!(!compare_ci95(&a, &big).unwrap().meets_n30);
    }

    #[test]
    fn t_widths_exceed_z_below_n30() {
        // Regression: ci95 used z = 1.96 regardless of n, understating
        // small-sample intervals. Pin the t-based half-widths at n = 3,
        // 10, 29 against the exact critical values, and z at n >= 30.
        for (n, t) in [(3u64, 4.303), (10, 2.262), (29, 2.048)] {
            let values: Vec<f64> = (0..n).map(|i| 50.0 + (i % 2) as f64).collect();
            let s = Summary::of(&values);
            let expected = t * s.stddev() / (n as f64).sqrt();
            let ci = s.ci95().unwrap();
            assert!(
                (ci.half_width() - expected).abs() < 1e-9,
                "n={n}: half width {} vs t-based {expected}",
                ci.half_width()
            );
            // The z-based width would be narrower — the bug this guards.
            let z_width = 1.96 * s.stddev() / (n as f64).sqrt();
            assert!(ci.half_width() > z_width);
        }
        for n in [30u64, 50, 100] {
            let values: Vec<f64> = (0..n).map(|i| 50.0 + (i % 2) as f64).collect();
            let s = Summary::of(&values);
            let expected = 1.96 * s.stddev() / (n as f64).sqrt();
            assert!((s.ci95().unwrap().half_width() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn nan_poisoned_comparison_returns_none() {
        // Regression: a NaN metric poisons the summary, every float
        // comparison against a NaN bound is false, and the overlap logic
        // misread the intervals as disjoint — reporting a *significant*
        // difference out of garbage. Degenerate intervals must yield no
        // verdict at all.
        let poisoned = Summary::of(&[10.0, f64::NAN, 12.0]);
        let clean = Summary::of(&[100.0, 101.0, 102.0]);
        let ci = poisoned.ci95().unwrap();
        assert!(ci.is_degenerate());
        assert_eq!(compare_ci95(&poisoned, &clean), None);
        assert_eq!(compare_ci95(&clean, &poisoned), None);
        assert_eq!(compare_ci95(&poisoned, &poisoned), None);
        assert!(!clean.ci95().unwrap().is_degenerate());
    }

    #[test]
    fn comparison_requires_data() {
        assert_eq!(
            compare_ci95(&Summary::new(), &Summary::of(&[1.0, 2.0])),
            None
        );
    }

    #[test]
    fn n30_guideline() {
        assert!(!Summary::of(&vec![1.0; 29]).meets_n30());
        assert!(Summary::of(&vec![1.0; 30]).meets_n30());
    }

    #[test]
    fn interval_overlap_logic() {
        let a = ConfidenceInterval {
            mean: 5.0,
            lo: 4.0,
            hi: 6.0,
            n: 30,
        };
        let b = ConfidenceInterval {
            mean: 6.5,
            lo: 5.5,
            hi: 7.5,
            n: 30,
        };
        let c = ConfidenceInterval {
            mean: 9.0,
            lo: 8.0,
            hi: 10.0,
            n: 30,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}

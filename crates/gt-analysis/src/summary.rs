//! Aggregate summaries and confidence-interval comparison (§4.5).
//!
//! The paper's methodology requires "at least n ≥ 30 test runs for each
//! configuration due to the central limit theory", after which systems are
//! compared via 95% confidence intervals of aggregated metrics:
//! non-overlapping intervals are significantly different.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (Bessel-corrected); 0 with fewer than 2 points.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The 95% confidence interval of the mean, using the normal
    /// approximation (z = 1.96) the paper's n ≥ 30 rule licenses.
    ///
    /// Returns `None` with fewer than 2 observations.
    pub fn ci95(&self) -> Option<ConfidenceInterval> {
        if self.n < 2 {
            return None;
        }
        let half = 1.96 * self.stddev() / (self.n as f64).sqrt();
        Some(ConfidenceInterval {
            mean: self.mean,
            lo: self.mean - half,
            hi: self.mean + half,
            n: self.n,
        })
    }

    /// Whether the sample size meets the paper's n ≥ 30 guideline.
    pub fn meets_n30(&self) -> bool {
        self.n >= 30
    }
}

/// A confidence interval of a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Sample size.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Whether this interval overlaps another.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// The paper's comparison rule: the verdict of comparing two systems by
/// CI95 of an aggregated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `a`'s interval lies entirely above `b`'s: significantly greater.
    AGreater,
    /// `b`'s interval lies entirely above `a`'s.
    BGreater,
    /// Intervals overlap: no significant difference at this level.
    NotSignificant,
}

/// Compares two samples via non-overlapping CI95 (§4.5). Returns `None`
/// when either sample is too small for an interval.
pub fn compare_ci95(a: &Summary, b: &Summary) -> Option<Comparison> {
    let (ca, cb) = (a.ci95()?, b.ci95()?);
    Some(if ca.overlaps(&cb) {
        Comparison::NotSignificant
    } else if ca.lo > cb.hi {
        Comparison::AGreater
    } else {
        Comparison::BGreater
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&values);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_and_singleton() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert!(s.ci95().is_none());
        let one = Summary::of(&[3.0]);
        assert_eq!(one.mean(), 3.0);
        assert!(one.ci95().is_none());
    }

    #[test]
    fn ci_shrinks_with_n() {
        let narrow = Summary::of(
            &vec![10.0; 100]
                .iter()
                .enumerate()
                .map(|(i, v)| v + (i % 2) as f64)
                .collect::<Vec<_>>(),
        );
        let wide = Summary::of(&[10.0, 11.0, 10.0, 11.0]);
        let cn = narrow.ci95().unwrap();
        let cw = wide.ci95().unwrap();
        assert!(cn.hi - cn.lo < cw.hi - cw.lo);
    }

    #[test]
    fn comparison_verdicts() {
        let a = Summary::of(&(0..40).map(|i| 100.0 + (i % 3) as f64).collect::<Vec<_>>());
        let b = Summary::of(&(0..40).map(|i| 10.0 + (i % 3) as f64).collect::<Vec<_>>());
        assert_eq!(compare_ci95(&a, &b), Some(Comparison::AGreater));
        assert_eq!(compare_ci95(&b, &a), Some(Comparison::BGreater));
        let c = Summary::of(&(0..40).map(|i| 100.2 + (i % 3) as f64).collect::<Vec<_>>());
        assert_eq!(compare_ci95(&a, &c), Some(Comparison::NotSignificant));
    }

    #[test]
    fn comparison_requires_data() {
        assert_eq!(
            compare_ci95(&Summary::new(), &Summary::of(&[1.0, 2.0])),
            None
        );
    }

    #[test]
    fn n30_guideline() {
        assert!(!Summary::of(&vec![1.0; 29]).meets_n30());
        assert!(Summary::of(&vec![1.0; 30]).meets_n30());
    }

    #[test]
    fn interval_overlap_logic() {
        let a = ConfidenceInterval {
            mean: 5.0,
            lo: 4.0,
            hi: 6.0,
            n: 30,
        };
        let b = ConfidenceInterval {
            mean: 6.5,
            lo: 5.5,
            hi: 7.5,
            n: 30,
        };
        let c = ConfidenceInterval {
            mean: 9.0,
            lo: 8.0,
            hi: 10.0,
            n: 30,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}

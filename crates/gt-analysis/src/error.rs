//! Accuracy metrics for approximate computations (§4.3 "Computation
//! Metrics"): relative errors against exact references, median relative
//! error (an LB aggregate the paper names explicitly), and top-k overlap
//! for ranking computations like the influence rank of §5.3.2.

use std::collections::BTreeMap;

/// Relative error `|approx - exact| / |exact|`; falls back to absolute
/// error when `exact` is zero.
pub fn relative_error(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        approx.abs()
    } else {
        (approx - exact).abs() / exact.abs()
    }
}

/// Per-key relative errors for all keys present in `exact`. Keys missing
/// from `approx` count as error 1.0 (the result is entirely absent).
pub fn relative_errors<K: Ord + Clone>(
    approx: &BTreeMap<K, f64>,
    exact: &BTreeMap<K, f64>,
) -> BTreeMap<K, f64> {
    exact
        .iter()
        .map(|(k, &e)| {
            let err = match approx.get(k) {
                Some(&a) => relative_error(a, e),
                None => 1.0,
            };
            (k.clone(), err)
        })
        .collect()
}

/// Median of per-key relative errors (`None` when `exact` is empty).
pub fn median_relative_error<K: Ord + Clone>(
    approx: &BTreeMap<K, f64>,
    exact: &BTreeMap<K, f64>,
) -> Option<f64> {
    let errors: Vec<f64> = relative_errors(approx, exact).into_values().collect();
    crate::percentiles::percentile(&errors, 50.0)
}

/// Jaccard overlap of the top-k key sets of two rankings: 1.0 means the
/// approximate ranking surfaces exactly the same top-k entities.
pub fn top_k_overlap<K: Ord + Clone>(
    approx: &BTreeMap<K, f64>,
    exact: &BTreeMap<K, f64>,
    k: usize,
) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let top = |m: &BTreeMap<K, f64>| -> Vec<K> {
        let mut entries: Vec<(&K, f64)> = m.iter().map(|(key, &v)| (key, v)).collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(b.0)));
        entries
            .into_iter()
            .take(k)
            .map(|(key, _)| key.clone())
            .collect()
    };
    let ta = top(approx);
    let tb = top(exact);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let sa: std::collections::BTreeSet<&K> = ta.iter().collect();
    let sb: std::collections::BTreeSet<&K> = tb.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u32, f64)]) -> BTreeMap<u32, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn basic_relative_error() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
        assert_eq!(relative_error(-9.0, -10.0), 0.1);
        // Zero exact falls back to absolute.
        assert_eq!(relative_error(0.5, 0.0), 0.5);
    }

    #[test]
    fn per_key_errors_and_missing_keys() {
        let exact = map(&[(1, 10.0), (2, 20.0), (3, 5.0)]);
        let approx = map(&[(1, 11.0), (2, 20.0)]);
        let errors = relative_errors(&approx, &exact);
        assert!((errors[&1] - 0.1).abs() < 1e-12);
        assert_eq!(errors[&2], 0.0);
        assert_eq!(errors[&3], 1.0);
    }

    #[test]
    fn median_error() {
        let exact = map(&[(1, 10.0), (2, 10.0), (3, 10.0)]);
        let approx = map(&[(1, 10.0), (2, 11.0), (3, 15.0)]);
        let med = median_relative_error(&approx, &exact).unwrap();
        assert!((med - 0.1).abs() < 1e-12);
        assert_eq!(median_relative_error(&approx, &BTreeMap::new()), None);
    }

    #[test]
    fn top_k_overlap_cases() {
        let exact = map(&[(1, 100.0), (2, 90.0), (3, 80.0), (4, 10.0)]);
        let same = exact.clone();
        assert_eq!(top_k_overlap(&same, &exact, 3), 1.0);
        // Approx swaps #3 for #4.
        let approx = map(&[(1, 100.0), (2, 90.0), (4, 80.0), (3, 10.0)]);
        // Top-3 sets {1,2,4} vs {1,2,3}: intersection 2, union 4.
        assert_eq!(top_k_overlap(&approx, &exact, 3), 0.5);
        assert_eq!(top_k_overlap(&approx, &exact, 0), 1.0);
        // k larger than the maps: full sets compared.
        assert_eq!(top_k_overlap(&approx, &exact, 10), 1.0);
    }

    #[test]
    fn top_k_of_empty_maps() {
        let empty: BTreeMap<u32, f64> = BTreeMap::new();
        assert_eq!(top_k_overlap(&empty, &empty, 5), 1.0);
    }
}

//! Load-run analysis: offered-vs-achieved rate and per-client-class
//! sojourn-latency tails, whole-run or inside marker windows.
//!
//! The load layer (`gt-load`) folds its client reports into the merged
//! [`ResultLog`] under the [`LOAD_SOURCE`] source:
//!
//! * `offered_rate.<class>` / `achieved_rate.<class>` — per-second
//!   bucketed rate series (what the class scheduled vs. what its writes
//!   completed);
//! * `sojourn_us.<class>` — one float record per graph event, stamped at
//!   write completion, valued at completion minus *scheduled* arrival.
//!
//! Sojourn — not service time — is the open-loop quantity: it charges
//! the SUT for queueing delay accumulated while it stalled, which is
//! precisely what coordinated omission erases. The tail helpers return
//! [`TailQuantiles`] (p50/p95/p99/p999 plus sample count), NaN-safe like
//! the rest of the percentile toolbox.

use gt_metrics::ResultLog;

use crate::markers::window_series;
use crate::percentiles::TailQuantiles;

/// The result-log source under which the load layer files its records.
pub const LOAD_SOURCE: &str = "load";

/// Offered vs. achieved rate of one client class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfferedAchieved {
    /// Mean offered rate over the analysed span, events per second.
    pub offered_rate: f64,
    /// Mean achieved (write-completed) rate, events per second.
    pub achieved_rate: f64,
}

impl OfferedAchieved {
    /// Achieved as a fraction of offered; 1.0 when nothing was offered.
    pub fn ratio(&self) -> f64 {
        if self.offered_rate <= 0.0 {
            return 1.0;
        }
        self.achieved_rate / self.offered_rate
    }
}

fn mean(series: &[(f64, f64)]) -> Option<f64> {
    let clean: Vec<f64> = series
        .iter()
        .map(|&(_, v)| v)
        .filter(|v| !v.is_nan())
        .collect();
    if clean.is_empty() {
        return None;
    }
    Some(clean.iter().sum::<f64>() / clean.len() as f64)
}

/// Whole-run offered vs. achieved rate of `class`. `None` when the log
/// has no usable rate samples for the class.
pub fn offered_vs_achieved(log: &ResultLog, class: &str) -> Option<OfferedAchieved> {
    let offered = mean(&log.series(LOAD_SOURCE, &format!("offered_rate.{class}")))?;
    let achieved = mean(&log.series(LOAD_SOURCE, &format!("achieved_rate.{class}")))?;
    Some(OfferedAchieved {
        offered_rate: offered,
        achieved_rate: achieved,
    })
}

/// Offered vs. achieved rate of `class` inside the `[start, end]` marker
/// window. `None` when a marker is missing, out of order, or the window
/// holds no usable samples.
pub fn window_offered_vs_achieved(
    log: &ResultLog,
    class: &str,
    start: &str,
    end: &str,
) -> Option<OfferedAchieved> {
    let offered = mean(&window_series(
        log,
        start,
        end,
        LOAD_SOURCE,
        &format!("offered_rate.{class}"),
    )?)?;
    let achieved = mean(&window_series(
        log,
        start,
        end,
        LOAD_SOURCE,
        &format!("achieved_rate.{class}"),
    )?)?;
    Some(OfferedAchieved {
        offered_rate: offered,
        achieved_rate: achieved,
    })
}

/// Whole-run sojourn-latency tail of `class`, microseconds. `None` when
/// the log has no usable sojourn samples for the class.
pub fn sojourn_quantiles(log: &ResultLog, class: &str) -> Option<TailQuantiles> {
    let values: Vec<f64> = log
        .series(LOAD_SOURCE, &format!("sojourn_us.{class}"))
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    TailQuantiles::of(&values)
}

/// Sojourn-latency tail of `class` inside the `[start, end]` marker
/// window, microseconds. `None` when a marker is missing, out of order,
/// or the window holds no usable samples — the "insufficient samples"
/// degradation, not a panic.
pub fn window_sojourn_quantiles(
    log: &ResultLog,
    class: &str,
    start: &str,
    end: &str,
) -> Option<TailQuantiles> {
    let values: Vec<f64> =
        window_series(log, start, end, LOAD_SOURCE, &format!("sojourn_us.{class}"))?
            .into_iter()
            .map(|(_, v)| v)
            .collect();
    TailQuantiles::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::MetricRecord;

    fn marker(t: u64, name: &str) -> MetricRecord {
        MetricRecord::text(t, "load", "marker", name)
    }

    fn sample_log() -> ResultLog {
        let mut log = ResultLog::new();
        log.push(marker(0, "start"));
        // 10 seconds of rates: offered flat at 1000 e/s, achieved dips to
        // 200 e/s during seconds 4..6 (a stall window).
        for s in 0..10u64 {
            let t = s * 1_000_000 + 500_000;
            let achieved = if (4..6).contains(&s) { 200.0 } else { 1000.0 };
            log.push(MetricRecord::float(t, "load", "offered_rate.main", 1000.0));
            log.push(MetricRecord::float(
                t,
                "load",
                "achieved_rate.main",
                achieved,
            ));
        }
        // Sojourns: mostly 100us, a burst of 80ms during the stall.
        for i in 0..1000u64 {
            let t = i * 10_000;
            let sojourn = if (400..420).contains(&i) {
                80_000.0
            } else {
                100.0
            };
            log.push(MetricRecord::float(t, "load", "sojourn_us.main", sojourn));
        }
        log.push(marker(4_000_000, "stall-start"));
        log.push(marker(6_000_000, "stall-end"));
        log.push(marker(10_000_000, "end"));
        log.sort();
        log
    }

    #[test]
    fn whole_run_offered_vs_achieved() {
        let log = sample_log();
        let oa = offered_vs_achieved(&log, "main").unwrap();
        assert!((oa.offered_rate - 1000.0).abs() < 1e-9);
        assert!(oa.achieved_rate < 1000.0);
        assert!(oa.ratio() < 1.0 && oa.ratio() > 0.7);
        assert!(offered_vs_achieved(&log, "ghost").is_none());
    }

    #[test]
    fn stall_window_shows_offered_unchanged_and_achieved_dipped() {
        let log = sample_log();
        let oa = window_offered_vs_achieved(&log, "main", "stall-start", "stall-end").unwrap();
        assert!(
            (oa.offered_rate - 1000.0).abs() < 1e-9,
            "open-loop offered rate must not dip in the stall window"
        );
        assert!((oa.achieved_rate - 200.0).abs() < 1e-9);
    }

    #[test]
    fn window_sojourn_catches_the_tail() {
        let log = sample_log();
        let whole = sojourn_quantiles(&log, "main").unwrap();
        assert_eq!(whole.n, 1000);
        assert!(whole.p50 < 1000.0);
        assert!(whole.p999 > 10_000.0, "p999 must see the spike");
        let stall = window_sojourn_quantiles(&log, "main", "stall-start", "stall-end").unwrap();
        assert!(stall.p95 >= 80_000.0 * 0.9, "stall window is all spike");
        assert!(window_sojourn_quantiles(&log, "main", "nope", "end").is_none());
    }
}

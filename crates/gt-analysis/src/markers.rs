//! Marker-window analysis: slicing a result log into marker-delimited
//! phases and summarizing or correlating metric series inside each.
//!
//! The paper's watermark pattern (§4.5) injects `MARKER` events into the
//! stream precisely so that runtime metrics can be attributed to stream
//! phases ("before the pause", "during catch-up", …). These helpers close
//! that loop on the analysis side: given the merged [`ResultLog`] of a
//! run, they cut one `(source, metric)` series to the window between two
//! markers and reduce it to summary statistics, or align two series on a
//! common bucket grid inside the window and correlate them (e.g. ingress
//! rate vs. CPU% for a Figure 3d run).

use gt_metrics::ResultLog;

use crate::correlate::pearson;
use crate::percentiles::Quantiles;
use crate::summary::Summary;
use crate::timeseries::TimeSeries;

/// The result-log source under which the Level-2 event tracer
/// (`gt-trace`) files its matched stage-pair latency records. Kept as a
/// string constant so this crate analyses trace output without depending
/// on the tracer.
pub const TRACE_SOURCE: &str = "trace";

/// The tracer's stage-pair latency metrics, in pipeline order: reader
/// dequeue → paced emit → sink write on the replay side, paced emit →
/// connector receive → engine apply across the platform boundary.
pub const TRACE_STAGE_METRICS: [&str; 4] = [
    "reader_to_emit_micros",
    "emit_to_sink_micros",
    "emit_to_connector_micros",
    "connector_to_apply_micros",
];

/// Summary statistics of one metric series within one marker-delimited
/// phase of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase label (caller-chosen, e.g. `load` or `catch-up`).
    pub phase: String,
    /// Window start, seconds since run start (the start marker's time).
    pub start_secs: f64,
    /// Window end, seconds since run start (the end marker's time).
    pub end_secs: f64,
    /// Statistics of the samples inside the window (inclusive bounds).
    pub summary: Summary,
}

impl PhaseStats {
    /// Window length in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// The `(source, metric)` samples falling inside the `[start, end]`
/// marker window, as `(seconds, value)` pairs. `None` when either marker
/// is missing or they are out of order.
pub fn window_series(
    log: &ResultLog,
    start: &str,
    end: &str,
    source: &str,
    metric: &str,
) -> Option<Vec<(f64, f64)>> {
    let (t0, t1) = window_bounds(log, start, end)?;
    Some(
        log.series(source, metric)
            .into_iter()
            .filter(|&(t, _)| t >= t0 && t <= t1)
            .collect(),
    )
}

/// Summarizes `(source, metric)` within the `[start, end]` marker window,
/// labelled `phase`. `None` when either marker is missing or out of
/// order; a window with no samples yields an empty [`Summary`]
/// (count 0), which is itself informative — the metric was silent during
/// the phase.
pub fn window_summary(
    log: &ResultLog,
    phase: &str,
    start: &str,
    end: &str,
    source: &str,
    metric: &str,
) -> Option<PhaseStats> {
    let (t0, t1) = window_bounds(log, start, end)?;
    let values: Vec<f64> = log
        .series(source, metric)
        .into_iter()
        .filter(|&(t, _)| t >= t0 && t <= t1)
        .map(|(_, v)| v)
        .collect();
    Some(PhaseStats {
        phase: phase.to_owned(),
        start_secs: t0,
        end_secs: t1,
        summary: Summary::of(&values),
    })
}

/// Per-phase statistics of `(source, metric)` across a list of
/// `(label, start_marker, end_marker)` windows. Phases whose markers are
/// missing are skipped — a partial run still yields the phases it
/// reached.
pub fn phase_summaries(
    log: &ResultLog,
    phases: &[(&str, &str, &str)],
    source: &str,
    metric: &str,
) -> Vec<PhaseStats> {
    phases
        .iter()
        .filter_map(|(label, start, end)| window_summary(log, label, start, end, source, metric))
        .collect()
}

/// Pearson correlation of two metric series within a marker window.
///
/// The series generally come from different samplers at different
/// timestamps, so both are bucketed onto a common grid of `buckets`
/// intervals spanning the window (per-bucket means), and only buckets
/// where *both* series have samples enter the correlation. `None` when a
/// marker is missing, `buckets == 0`, the window has zero length, fewer
/// than 2 shared buckets exist, or either side is constant.
pub fn window_correlation(
    log: &ResultLog,
    start: &str,
    end: &str,
    a: (&str, &str),
    b: (&str, &str),
    buckets: usize,
) -> Option<f64> {
    let (t0, t1) = window_bounds(log, start, end)?;
    if buckets == 0 || t1 <= t0 {
        return None;
    }
    let width = (t1 - t0) / buckets as f64;
    let grid = |source: &str, metric: &str| {
        TimeSeries::from_samples(log.series(source, metric)).bucket_mean(t0, t1, width)
    };
    let ga = grid(a.0, a.1);
    let gb = grid(b.0, b.1);
    let (xs, ys): (Vec<f64>, Vec<f64>) = ga
        .into_iter()
        .zip(gb)
        .filter_map(|(x, y)| Some((x?, y?)))
        .unzip();
    pearson(&xs, &ys)
}

/// Per-sample latency quantiles of one traced stage pair within one
/// marker window.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// The stage-pair metric (one of [`TRACE_STAGE_METRICS`]).
    pub metric: String,
    /// Sampled events matched for this pair inside the window.
    pub samples: u64,
    /// Latency quantiles in microseconds.
    pub quantiles: Quantiles,
}

/// Breaks the pipeline latency of sampled events down by stage within the
/// `[start, end]` marker window: one [`StageLatency`] per
/// [`TRACE_STAGE_METRICS`] entry that recorded samples there, in pipeline
/// order. Stages that were dark during the phase (not instrumented, or no
/// sample fell inside the window) are omitted. `None` when either marker
/// is missing or they are out of order.
pub fn latency_breakdown(log: &ResultLog, start: &str, end: &str) -> Option<Vec<StageLatency>> {
    let (t0, t1) = window_bounds(log, start, end)?;
    Some(
        TRACE_STAGE_METRICS
            .iter()
            .filter_map(|metric| {
                let values: Vec<f64> = log
                    .series(TRACE_SOURCE, metric)
                    .into_iter()
                    .filter(|&(t, _)| t >= t0 && t <= t1)
                    .map(|(_, v)| v)
                    .collect();
                Quantiles::of(&values).map(|quantiles| StageLatency {
                    metric: (*metric).to_owned(),
                    samples: values.len() as u64,
                    quantiles,
                })
            })
            .collect(),
    )
}

/// The `(start_secs, end_secs)` of a marker window; `None` when a marker
/// is missing or the end precedes the start.
fn window_bounds(log: &ResultLog, start: &str, end: &str) -> Option<(f64, f64)> {
    let t0 = log.marker(start)?.t_secs();
    let t1 = log.marker(end)?.t_secs();
    (t1 >= t0).then_some((t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::MetricRecord;

    /// A log with markers at 1 s / 3 s / 5 s and two series: `cpu` ramps
    /// with time, `rate` ramps along with it inside the middle phase.
    fn phased_log() -> ResultLog {
        let mut records = vec![
            MetricRecord::text(1_000_000, "replayer", "marker", "phase-a"),
            MetricRecord::text(3_000_000, "replayer", "marker", "phase-b"),
            MetricRecord::text(5_000_000, "replayer", "marker", "phase-c"),
        ];
        for i in 0..=50u64 {
            let t = i * 100_000; // every 0.1 s over [0, 5] s
            records.push(MetricRecord::float(t, "sysmon", "cpu", i as f64));
            records.push(MetricRecord::float(
                t + 1_000, // slightly offset timestamps, like a real second sampler
                "replayer",
                "rate",
                2.0 * i as f64,
            ));
        }
        ResultLog::from_records(records)
    }

    #[test]
    fn summary_covers_only_the_window() {
        let log = phased_log();
        let stats = window_summary(&log, "mid", "phase-a", "phase-b", "sysmon", "cpu").unwrap();
        assert_eq!(stats.phase, "mid");
        assert_eq!(stats.start_secs, 1.0);
        assert_eq!(stats.end_secs, 3.0);
        assert!((stats.duration_secs() - 2.0).abs() < 1e-12);
        // Samples 10..=30 fall in [1 s, 3 s].
        assert_eq!(stats.summary.count(), 21);
        assert_eq!(stats.summary.min(), Some(10.0));
        assert_eq!(stats.summary.max(), Some(30.0));
        assert!((stats.summary.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn missing_markers_are_none_and_skipped() {
        let log = phased_log();
        assert!(window_summary(&log, "x", "nope", "phase-b", "sysmon", "cpu").is_none());
        assert!(window_summary(&log, "x", "phase-b", "phase-a", "sysmon", "cpu").is_none());
        let phases = phase_summaries(
            &log,
            &[
                ("load", "phase-a", "phase-b"),
                ("drain", "phase-b", "phase-c"),
                ("ghost", "phase-b", "missing"),
            ],
            "sysmon",
            "cpu",
        );
        let labels: Vec<&str> = phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(labels, ["load", "drain"]);
    }

    #[test]
    fn silent_metric_yields_empty_summary() {
        let log = phased_log();
        let stats = window_summary(&log, "x", "phase-a", "phase-b", "sysmon", "absent").unwrap();
        assert_eq!(stats.summary.count(), 0);
    }

    #[test]
    fn window_series_respects_bounds() {
        let log = phased_log();
        let series = window_series(&log, "phase-b", "phase-c", "sysmon", "cpu").unwrap();
        assert!(series.iter().all(|&(t, _)| (3.0..=5.0).contains(&t)));
        assert_eq!(series.len(), 21);
    }

    #[test]
    fn correlated_series_correlate_inside_the_window() {
        let log = phased_log();
        let r = window_correlation(
            &log,
            "phase-a",
            "phase-c",
            ("sysmon", "cpu"),
            ("replayer", "rate"),
            8,
        )
        .unwrap();
        assert!(r > 0.99, "both ramp linearly, r = {r}");
    }

    #[test]
    fn latency_breakdown_slices_trace_records_by_window() {
        let mut records = vec![
            MetricRecord::text(1_000_000, "replayer", "marker", "phase-a"),
            MetricRecord::text(3_000_000, "replayer", "marker", "phase-b"),
        ];
        // connector→apply: 10 samples inside the window (latency ramps
        // 10..=100 µs), one outlier before it that must be excluded.
        records.push(MetricRecord::int(
            500_000,
            TRACE_SOURCE,
            "connector_to_apply_micros",
            9_999,
        ));
        for i in 1..=10i64 {
            records.push(MetricRecord::int(
                1_000_000 + i as u64 * 100_000,
                TRACE_SOURCE,
                "connector_to_apply_micros",
                i * 10,
            ));
        }
        // emit→connector: constant 5 µs inside the window.
        for i in 1..=4u64 {
            records.push(MetricRecord::int(
                1_000_000 + i * 200_000,
                TRACE_SOURCE,
                "emit_to_connector_micros",
                5,
            ));
        }
        let log = ResultLog::from_records(records);

        let breakdown = latency_breakdown(&log, "phase-a", "phase-b").unwrap();
        // Pipeline order; dark stages (reader→emit, emit→sink) omitted.
        let metrics: Vec<&str> = breakdown.iter().map(|s| s.metric.as_str()).collect();
        assert_eq!(
            metrics,
            ["emit_to_connector_micros", "connector_to_apply_micros"]
        );
        let apply = &breakdown[1];
        assert_eq!(apply.samples, 10);
        assert_eq!(apply.quantiles.min, 10.0);
        assert_eq!(apply.quantiles.max, 100.0, "outlier outside the window");
        assert_eq!(apply.quantiles.median, 55.0);
        assert_eq!(breakdown[0].quantiles.max, 5.0);

        assert!(latency_breakdown(&log, "phase-a", "gone").is_none());
        // A window with no trace records at all yields an empty breakdown.
        let silent = latency_breakdown(&log, "phase-b", "phase-b").unwrap();
        assert!(silent.is_empty());
    }

    #[test]
    fn correlation_degenerate_cases() {
        let log = phased_log();
        // Zero buckets, missing marker, constant series.
        assert!(window_correlation(
            &log,
            "phase-a",
            "phase-b",
            ("sysmon", "cpu"),
            ("replayer", "rate"),
            0
        )
        .is_none());
        assert!(window_correlation(
            &log,
            "phase-a",
            "gone",
            ("sysmon", "cpu"),
            ("replayer", "rate"),
            4
        )
        .is_none());
        assert!(window_correlation(
            &log,
            "phase-a",
            "phase-b",
            ("sysmon", "cpu"),
            ("sysmon", "absent"),
            4
        )
        .is_none());
    }
}

#![warn(missing_docs)]

//! # gt-analysis
//!
//! The statistical toolbox the paper's methodology (§4.5) prescribes for
//! assessing experiment runs:
//!
//! * [`summary`] — means, variance, and the CI95 confidence-interval
//!   comparison ("non-overlapping confidence intervals of the results from
//!   two different systems are indeed significantly different"),
//! * [`percentiles`] — medians, tail percentiles (99th-percentile latency,
//!   5th-percentile-to-maximum throughput ranges as in Figure 3a),
//! * [`timeseries`] — bucketed time series for the stacked runtime plots
//!   (Figure 3d) and rate estimation from event timestamps,
//! * [`correlate`] — Pearson and lagged cross-correlation between metric
//!   series,
//! * [`markers`] — marker-window slicing of result logs: per-phase
//!   summaries and in-window correlation (the analysis side of the §4.5
//!   watermark pattern),
//! * [`error`] — relative errors of approximate results against exact
//!   references (the "relative rank error" of §5.3.2),
//! * [`recovery`] — fault/recovery correlation for chaos runs:
//!   time-to-recover, throughput-dip depth, and events lost per injected
//!   fault,
//! * [`load`] — load-run analysis: offered-vs-achieved rate and
//!   per-client-class sojourn-latency tails (p99/p999) inside marker
//!   windows,
//! * [`sharding`] — throughput-vs-shards scaling curves (speedup and
//!   parallel efficiency against the smallest configuration).

pub mod correlate;
pub mod error;
pub mod load;
pub mod markers;
pub mod percentiles;
pub mod recovery;
pub mod sharding;
pub mod summary;
pub mod timeseries;
pub mod trend;
pub mod variability;

pub use correlate::{cross_correlation, pearson};
pub use error::{median_relative_error, relative_error, relative_errors, top_k_overlap};
pub use load::{
    offered_vs_achieved, sojourn_quantiles, window_offered_vs_achieved, window_sojourn_quantiles,
    OfferedAchieved, LOAD_SOURCE,
};
pub use markers::{
    latency_breakdown, phase_summaries, window_correlation, window_series, window_summary,
    PhaseStats, StageLatency, TRACE_SOURCE, TRACE_STAGE_METRICS,
};
pub use percentiles::{percentile, CleanSeries, Quantiles, TailQuantiles};
pub use recovery::{recovery_windows, recovery_windows_from, RecoveryWindow, CHAOS_SOURCE};
pub use sharding::{shard_scaling, ShardScalingRow};
pub use summary::{
    compare_ci95, critical_value_95, CiComparison, Comparison, ConfidenceInterval, Summary,
};
pub use timeseries::{RateSeries, TimeSeries};
pub use trend::{densification_exponent, linear_trend, Trend};
pub use variability::{variability, Variability};

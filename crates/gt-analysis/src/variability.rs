//! Performance-variability metrics.
//!
//! Graphalytics-style comparisons quantify not only raw performance but
//! its *variability* (§2.1); for online systems the paper adds behavior
//! under varying load (§2.2). These robust statistics characterize how
//! noisy a repeated measurement is: coefficient of variation for the
//! headline number, median absolute deviation and IQR for outlier-robust
//! spread, and an IQR-fence outlier count for run screening.

use crate::percentiles::percentile_sorted;
use crate::summary::Summary;

/// Robust spread statistics of one repeated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variability {
    /// Coefficient of variation: stddev / |mean| (0 when the mean is 0).
    pub cv: f64,
    /// Median absolute deviation (unscaled).
    pub mad: f64,
    /// Interquartile range (p75 − p25).
    pub iqr: f64,
    /// Samples outside the Tukey fences `[p25 − 1.5·IQR, p75 + 1.5·IQR]`.
    pub outliers: usize,
    /// Sample count.
    pub n: usize,
}

impl Variability {
    /// Whether the measurement is stable under the given CV threshold
    /// (0.05 = 5% relative spread is a common bar for benchmark runs).
    pub fn is_stable(&self, max_cv: f64) -> bool {
        self.cv <= max_cv
    }
}

/// Computes variability statistics; `None` for fewer than 2 samples.
pub fn variability(values: &[f64]) -> Option<Variability> {
    if values.len() < 2 {
        return None;
    }
    let summary = Summary::of(values);
    let mean = summary.mean();
    let cv = if mean == 0.0 {
        0.0
    } else {
        summary.stddev() / mean.abs()
    };

    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    let median = percentile_sorted(&sorted, 50.0);
    let mut deviations: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mad = percentile_sorted(&deviations, 50.0);

    let q1 = percentile_sorted(&sorted, 25.0);
    let q3 = percentile_sorted(&sorted, 75.0);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let outliers = sorted.iter().filter(|&&v| v < lo || v > hi).count();

    Some(Variability {
        cv,
        mad,
        iqr,
        outliers,
        n: values.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_measurement_is_stable() {
        let values: Vec<f64> = (0..50).map(|i| 100.0 + (i % 3) as f64 * 0.1).collect();
        let v = variability(&values).unwrap();
        assert!(v.cv < 0.01, "cv {}", v.cv);
        assert!(v.is_stable(0.05));
        assert_eq!(v.outliers, 0);
        assert_eq!(v.n, 50);
    }

    #[test]
    fn noisy_measurement_is_not_stable() {
        let values: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 50.0 } else { 150.0 })
            .collect();
        let v = variability(&values).unwrap();
        assert!(v.cv > 0.3);
        assert!(!v.is_stable(0.05));
    }

    #[test]
    fn detects_tukey_outliers() {
        let mut values: Vec<f64> = vec![10.0; 40];
        // Inject mild jitter so the IQR is nonzero.
        for (i, v) in values.iter_mut().enumerate() {
            *v += (i % 5) as f64 * 0.1;
        }
        values.push(100.0); // a run that went haywire
        let v = variability(&values).unwrap();
        assert_eq!(v.outliers, 1);
    }

    #[test]
    fn mad_is_robust_to_a_single_outlier() {
        let mut values: Vec<f64> = (0..40).map(|i| 10.0 + (i % 4) as f64 * 0.5).collect();
        let before = variability(&values).unwrap();
        values.push(1_000.0);
        let after = variability(&values).unwrap();
        // The outlier blows up the CV but barely moves the MAD.
        assert!(after.cv > before.cv * 5.0);
        assert!((after.mad - before.mad).abs() < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(variability(&[]).is_none());
        assert!(variability(&[1.0]).is_none());
        let zeros = variability(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(zeros.cv, 0.0);
    }
}

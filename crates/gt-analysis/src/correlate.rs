//! Correlation analyses between metric series (§4.5: "statistical time
//! series analyses (e.g., cross-correlations)").

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` when the series differ in length, are shorter than 2,
/// or either has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some(cov / (var_a.sqrt() * var_b.sqrt()))
}

/// Pearson correlation of `a` against `b` shifted by each lag in
/// `-max_lag..=max_lag`: positive lag means `b` is delayed relative to
/// `a` (i.e. `a[t]` is compared with `b[t + lag]`).
///
/// Returns `(lag, correlation)` pairs; lags whose overlap is shorter than
/// 2 samples or degenerate are skipped.
pub fn cross_correlation(a: &[f64], b: &[f64], max_lag: usize) -> Vec<(isize, f64)> {
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    let max_lag = max_lag as isize;
    for lag in -max_lag..=max_lag {
        let (xa, xb): (&[f64], &[f64]) = if lag >= 0 {
            let l = lag as usize;
            if l >= b.len() {
                continue;
            }
            let n = a.len().min(b.len() - l);
            (&a[..n], &b[l..l + n])
        } else {
            let l = (-lag) as usize;
            if l >= a.len() {
                continue;
            }
            let n = b.len().min(a.len() - l);
            (&a[l..l + n], &b[..n])
        };
        if let Some(r) = pearson(xa, xb) {
            out.push((lag, r));
        }
    }
    out
}

/// The lag with the strongest absolute correlation, if any.
pub fn best_lag(a: &[f64], b: &[f64], max_lag: usize) -> Option<(isize, f64)> {
    cross_correlation(a, b, max_lag)
        .into_iter()
        .max_by(|(_, x), (_, y)| x.abs().partial_cmp(&y.abs()).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let a = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let b = [1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0];
        assert!(pearson(&a, &b).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), None);
        assert_eq!(pearson(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn cross_correlation_finds_shift() {
        // b is a copy of a delayed by 3 samples.
        let a: Vec<f64> = (0..50).map(|i| ((i % 7) as f64).sin()).collect();
        let mut b = vec![0.0; 3];
        b.extend_from_slice(&a[..47]);
        let (lag, r) = best_lag(&a, &b, 5).unwrap();
        assert_eq!(lag, 3, "best correlation at the injected delay");
        assert!(r > 0.99);
    }

    #[test]
    fn negative_lag_detection() {
        let b: Vec<f64> = (0..50).map(|i| ((i % 5) as f64).cos()).collect();
        let mut a = vec![0.0; 2];
        a.extend_from_slice(&b[..48]);
        // a is b delayed by 2, so b must be shifted by -2 to align.
        let (lag, r) = best_lag(&a, &b, 4).unwrap();
        assert_eq!(lag, -2);
        assert!(r > 0.99);
    }

    #[test]
    fn lag_window_is_bounded() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        let all = cross_correlation(&a, &b, 10);
        assert!(all.iter().all(|&(lag, _)| lag.unsigned_abs() < 3));
    }
}

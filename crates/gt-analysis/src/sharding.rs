//! Throughput-vs-shards scaling analysis: how much of the serial
//! bottleneck a sharded configuration actually buys back.
//!
//! The paper's methodology compares systems by their sustainable rates;
//! for a *sharded variant of the same system* the interesting summary is
//! the scaling curve — achieved throughput per shard count, normalized
//! against the smallest configuration measured:
//!
//! * **speedup** `S(n) = T(n) / T(base)` — how many times faster than the
//!   baseline configuration,
//! * **efficiency** `E(n) = S(n) / (n / base)` — the fraction of ideal
//!   linear scaling realized (1.0 = perfect, Amdahl-limited systems decay
//!   toward the serial fraction).

/// One point on the throughput-vs-shards scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardScalingRow {
    /// Shard (worker) count of this configuration.
    pub shards: usize,
    /// Achieved throughput, events/s.
    pub achieved: f64,
    /// Throughput relative to the smallest measured shard count.
    pub speedup: f64,
    /// Fraction of ideal linear scaling realized (speedup divided by the
    /// shard-count ratio).
    pub efficiency: f64,
}

/// Builds the scaling curve from `(shards, achieved events/s)` samples.
///
/// The baseline is the row with the **smallest shard count** (ties: its
/// first occurrence); rows come back sorted by shard count. Returns an
/// empty curve when no sample has positive throughput to normalize by.
pub fn shard_scaling(samples: &[(usize, f64)]) -> Vec<ShardScalingRow> {
    let mut sorted: Vec<(usize, f64)> = samples.to_vec();
    sorted.sort_by_key(|&(shards, _)| shards);
    let Some(&(base_shards, base_rate)) = sorted.first() else {
        return Vec::new();
    };
    if base_rate <= 0.0 || base_shards == 0 {
        return Vec::new();
    }
    sorted
        .into_iter()
        .map(|(shards, achieved)| {
            let speedup = achieved / base_rate;
            let ideal = shards as f64 / base_shards as f64;
            ShardScalingRow {
                shards,
                achieved,
                speedup,
                efficiency: speedup / ideal,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_normalizes_against_the_smallest_shard_count() {
        let rows = shard_scaling(&[(4, 3000.0), (1, 1000.0), (2, 1900.0)]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].shards, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!((rows[0].efficiency - 1.0).abs() < 1e-12);
        assert!((rows[1].speedup - 1.9).abs() < 1e-12);
        assert!((rows[1].efficiency - 0.95).abs() < 1e-12);
        assert!((rows[2].speedup - 3.0).abs() < 1e-12);
        assert!((rows[2].efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nonunit_baseline_uses_shard_ratio_for_efficiency() {
        // Baseline at 2 shards: 4 shards doubling throughput is perfect.
        let rows = shard_scaling(&[(2, 500.0), (4, 1000.0)]);
        assert!((rows[1].speedup - 2.0).abs() < 1e-12);
        assert!((rows[1].efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_an_empty_curve() {
        assert!(shard_scaling(&[]).is_empty());
        assert!(shard_scaling(&[(1, 0.0), (2, 100.0)]).is_empty());
        assert!(shard_scaling(&[(0, 100.0)]).is_empty());
    }
}

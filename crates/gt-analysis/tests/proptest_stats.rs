//! Property-based tests of the statistics toolbox.

use gt_analysis::summary::Summary;
use gt_analysis::{pearson, percentile, Quantiles};
use proptest::prelude::*;

fn finite_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_is_monotone(values in finite_values(), a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pa = percentile(&values, lo).unwrap();
        let pb = percentile(&values, hi).unwrap();
        prop_assert!(pa <= pb, "p{lo}={pa} > p{hi}={pb}");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(pa >= min && pb <= max);
    }

    /// The quantile bundle is internally ordered.
    #[test]
    fn quantile_bundle_ordered(values in finite_values()) {
        let q = Quantiles::of(&values).unwrap();
        prop_assert!(q.min <= q.p5);
        prop_assert!(q.p5 <= q.median);
        prop_assert!(q.median <= q.p95);
        prop_assert!(q.p95 <= q.p99);
        prop_assert!(q.p99 <= q.max);
    }

    /// Welford mean/variance agree with the two-pass formulas.
    #[test]
    fn summary_matches_two_pass(values in finite_values()) {
        let s = Summary::of(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if values.len() > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!(
                (s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()),
                "welford {} vs naive {}",
                s.variance(),
                var
            );
        }
    }

    /// The mean always lies inside its own CI95.
    #[test]
    fn ci_contains_mean(values in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = Summary::of(&values);
        let ci = s.ci95().unwrap();
        prop_assert!(ci.lo <= s.mean() && s.mean() <= ci.hi);
    }

    /// Pearson correlation is symmetric, bounded, and exactly 1 against
    /// a positive affine image of itself.
    #[test]
    fn pearson_properties(values in proptest::collection::vec(-1e3f64..1e3, 3..100),
                          scale in 0.1f64..10.0, offset in -100.0f64..100.0) {
        let image: Vec<f64> = values.iter().map(|v| v * scale + offset).collect();
        if let Some(r) = pearson(&values, &image) {
            prop_assert!((r - 1.0).abs() < 1e-6, "affine image correlation {r}");
        }
        if let (Some(ab), Some(ba)) = (pearson(&values, &image), pearson(&image, &values)) {
            prop_assert!((ab - ba).abs() < 1e-9);
        }
    }
}

//! The fault-injecting TCP proxy.
//!
//! One accept loop sits on an ephemeral listener; every accepted client
//! connection gets a forwarder thread that shovels bytes to a fresh upstream
//! connection, consulting that connection's [`ConnState`] on every read. A
//! single timer thread owns the schedule: it fires faults at their planned
//! offsets, journals each apply/heal into the shared [`ChaosJournal`], and on
//! stop fast-forwards any not-yet-fired events so the journal
//! [`ChaosJournal::signature`] depends only on the `(schedule, seed)` pair —
//! never on how long the run happened to last.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use gt_chaos::{ChaosEvent, ChaosEventKind, ChaosJournal};
use gt_metrics::Clock;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::schedule::{ConnRange, KillMode, NetemFault, NetemFaultKind, NetemSchedule};
use crate::NetemPlan;

/// How long a forwarder blocks in one downstream read before re-checking
/// fault state and the stop flag.
const READ_SLICE: Duration = Duration::from_millis(10);
/// Poll interval for the nonblocking accept loop and partitioned forwarders.
const POLL_SLICE: Duration = Duration::from_millis(1);
/// Upper bound on a single throttle pause so a tiny cap cannot stall a
/// forwarder past the watchdog.
const MAX_THROTTLE_PAUSE: Duration = Duration::from_millis(500);
/// Forwarder copy-buffer size.
const COPY_BUF: usize = 8 * 1024;

const KILL_NONE: u8 = 0;
const KILL_FIN: u8 = 1;
const KILL_RST: u8 = 2;

/// Per-connection fault state, written by the timer thread and read by the
/// connection's forwarder on every pass.
#[derive(Debug, Default)]
struct ConnState {
    partitioned: AtomicBool,
    delay_micros: AtomicU64,
    jitter_micros: AtomicU64,
    throttle_kbps: AtomicU64,
    kill: AtomicU8,
    corrupt_budget: AtomicU64,
    truncate_budget: AtomicU64,
}

/// Registry of live connections plus the currently-open fault windows, so a
/// connection accepted mid-window inherits the window's effects.
#[derive(Default)]
struct Registry {
    conns: Vec<(u32, Arc<ConnState>)>,
    ongoing: Vec<(usize, NetemFault)>,
}

impl Registry {
    /// Recomputes one connection's windowed state from the open windows, in
    /// schedule order (a later delay/throttle window overrides an earlier
    /// one; any open partition window partitions).
    fn refresh_conn(&self, conn: u32, state: &ConnState) {
        let mut partitioned = false;
        let mut delay = 0u64;
        let mut jitter = 0u64;
        let mut kbps = 0u64;
        for (_, fault) in &self.ongoing {
            if !fault.conns.contains(conn) {
                continue;
            }
            match &fault.kind {
                NetemFaultKind::Partition { .. } => partitioned = true,
                NetemFaultKind::Delay {
                    delay: d,
                    jitter: j,
                    ..
                } => {
                    delay = d.as_micros() as u64;
                    jitter = j.as_micros() as u64;
                }
                NetemFaultKind::Throttle { kbps: k, .. } => kbps = *k,
                _ => {}
            }
        }
        state.partitioned.store(partitioned, Ordering::SeqCst);
        state.delay_micros.store(delay, Ordering::SeqCst);
        state.jitter_micros.store(jitter, Ordering::SeqCst);
        state.throttle_kbps.store(kbps, Ordering::SeqCst);
    }

    fn refresh_all(&self) {
        for (conn, state) in &self.conns {
            self.refresh_conn(*conn, state);
        }
    }

    /// Applies fault `index`'s windowed or one-shot effect.
    fn apply(&mut self, index: usize, fault: &NetemFault) {
        match &fault.kind {
            NetemFaultKind::Partition { .. }
            | NetemFaultKind::Delay { .. }
            | NetemFaultKind::Throttle { .. } => {
                self.ongoing.push((index, fault.clone()));
                self.refresh_all();
            }
            NetemFaultKind::Kill { mode } => {
                let code = match mode {
                    KillMode::Fin => KILL_FIN,
                    KillMode::Rst => KILL_RST,
                };
                for (conn, state) in &self.conns {
                    if fault.conns.contains(*conn) {
                        state.kill.store(code, Ordering::SeqCst);
                    }
                }
            }
            NetemFaultKind::Corrupt { bytes } => {
                for (conn, state) in &self.conns {
                    if fault.conns.contains(*conn) {
                        state.corrupt_budget.fetch_add(*bytes, Ordering::SeqCst);
                    }
                }
            }
            NetemFaultKind::Truncate { bytes } => {
                for (conn, state) in &self.conns {
                    if fault.conns.contains(*conn) {
                        state.truncate_budget.fetch_add(*bytes, Ordering::SeqCst);
                    }
                }
            }
        }
    }

    /// Closes fault `index`'s window and recomputes every connection.
    fn clear(&mut self, index: usize) {
        self.ongoing.retain(|(i, _)| *i != index);
        self.refresh_all();
    }
}

/// Counters shared between the accept loop, forwarders, and the report.
#[derive(Default)]
struct Shared {
    registry: Mutex<Registry>,
    connections: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    bytes_corrupted: AtomicU64,
    bytes_dropped: AtomicU64,
    kills_rst: AtomicU64,
    kills_fin: AtomicU64,
    dial_failures: AtomicU64,
}

/// What the proxy did over its lifetime, returned by [`NetemHandle::join`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetemReport {
    /// Client connections accepted and bridged upstream.
    pub connections: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes forwarded upstream (after truncation).
    pub bytes_out: u64,
    /// Bytes XOR-corrupted in flight.
    pub bytes_corrupted: u64,
    /// Bytes silently dropped by truncate faults.
    pub bytes_dropped: u64,
    /// Connections killed abruptly (RST).
    pub kills_rst: u64,
    /// Connections killed gracefully (FIN).
    pub kills_fin: u64,
    /// Accepted client connections the proxy could not bridge upstream.
    pub dial_failures: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    Apply,
    Clear,
}

/// A running fault-injection proxy. Obtain one via [`NetemProxy::start`].
pub struct NetemHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: thread::JoinHandle<io::Result<()>>,
    timer: thread::JoinHandle<()>,
    shared: Arc<Shared>,
}

impl NetemHandle {
    /// The address clients should connect to instead of the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every proxy thread to wind down. Idempotent; `join` also
    /// stops first.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stops the proxy, joins its threads, and returns the traffic report.
    /// Pending schedule events are fast-forwarded into the journal so the
    /// determinism witness is independent of run length.
    pub fn join(self) -> io::Result<NetemReport> {
        self.stop.store(true, Ordering::SeqCst);
        let accept = self
            .accept
            .join()
            .map_err(|_| io::Error::other("netem accept thread panicked"))?;
        self.timer
            .join()
            .map_err(|_| io::Error::other("netem timer thread panicked"))?;
        accept?;
        let s = &self.shared;
        Ok(NetemReport {
            connections: s.connections.load(Ordering::SeqCst),
            bytes_in: s.bytes_in.load(Ordering::SeqCst),
            bytes_out: s.bytes_out.load(Ordering::SeqCst),
            bytes_corrupted: s.bytes_corrupted.load(Ordering::SeqCst),
            bytes_dropped: s.bytes_dropped.load(Ordering::SeqCst),
            kills_rst: s.kills_rst.load(Ordering::SeqCst),
            kills_fin: s.kills_fin.load(Ordering::SeqCst),
            dial_failures: s.dial_failures.load(Ordering::SeqCst),
        })
    }
}

/// Entry point: binds an ephemeral listener and spawns the proxy threads.
pub struct NetemProxy;

impl NetemProxy {
    /// Starts a proxy in front of `upstream` driven by `plan`'s schedule.
    /// Fault applies and heals are journaled into `plan.journal`.
    pub fn start(
        upstream: SocketAddr,
        plan: &NetemPlan,
        clock: Arc<dyn Clock>,
    ) -> io::Result<NetemHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared::default());

        let timer = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let schedule = plan.schedule.clone();
            let journal = plan.journal.clone();
            thread::Builder::new()
                .name("gt-netem-timer".into())
                .spawn(move || timer_loop(&schedule, &journal, &shared, &stop, clock))?
        };

        let accept = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let seed = plan.schedule.seed;
            thread::Builder::new()
                .name("gt-netem-accept".into())
                .spawn(move || accept_loop(listener, upstream, seed, &shared, &stop))?
        };

        Ok(NetemHandle {
            addr,
            stop,
            accept,
            timer,
            shared,
        })
    }
}

/// Fires schedule events at their offsets; fast-forwards the tail on stop.
fn timer_loop(
    schedule: &NetemSchedule,
    journal: &ChaosJournal,
    shared: &Shared,
    stop: &AtomicBool,
    clock: Arc<dyn Clock>,
) {
    let mut events: Vec<(Duration, usize, Phase)> = Vec::new();
    for (index, fault) in schedule.faults.iter().enumerate() {
        events.push((fault.at, index, Phase::Apply));
        if let Some(window) = fault.kind.clear_after() {
            events.push((fault.at + window, index, Phase::Clear));
        }
    }
    events.sort();

    let started = Instant::now();
    for (due, index, phase) in events {
        while started.elapsed() < due && !stop.load(Ordering::SeqCst) {
            let remaining = due - started.elapsed();
            thread::sleep(remaining.min(Duration::from_millis(5)));
        }
        fire(schedule, journal, shared, &clock, due, index, phase);
    }
}

fn fire(
    schedule: &NetemSchedule,
    journal: &ChaosJournal,
    shared: &Shared,
    clock: &Arc<dyn Clock>,
    due: Duration,
    index: usize,
    phase: Phase,
) {
    let fault = &schedule.faults[index];
    let mut registry = shared.registry.lock().expect("netem registry lock");
    let (kind, description) = match phase {
        Phase::Apply => {
            registry.apply(index, fault);
            (ChaosEventKind::Fault, fault.describe())
        }
        Phase::Clear => {
            registry.clear(index);
            let conns = if fault.conns == ConnRange::All {
                String::new()
            } else {
                format!(", conns={}", fault.conns)
            };
            (
                ChaosEventKind::Recovery,
                format!("heal({}{})", fault.describe(), conns),
            )
        }
    };
    drop(registry);
    journal.push(ChaosEvent {
        t_micros: clock.now_micros(),
        seq: due.as_millis() as u64,
        kind,
        description,
        events_lost: 0,
    });
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    seed: u64,
    shared: &Arc<Shared>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut forwarders = Vec::new();
    let mut next_conn: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((downstream, _)) => {
                let conn = next_conn;
                next_conn += 1;
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let up = match TcpStream::connect(upstream) {
                    Ok(up) => up,
                    Err(_) => {
                        shared.dial_failures.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                };
                downstream.set_nodelay(true).ok();
                up.set_nodelay(true).ok();
                let state = Arc::new(ConnState::default());
                {
                    let mut registry = shared.registry.lock().expect("netem registry lock");
                    registry.refresh_conn(conn, &state);
                    registry.conns.push((conn, Arc::clone(&state)));
                }
                let shared = Arc::clone(shared);
                let stop = Arc::clone(stop);
                let handle = thread::Builder::new()
                    .name(format!("gt-netem-conn-{conn}"))
                    .spawn(move || {
                        forward(conn, downstream, up, &state, seed, &shared, &stop);
                    })?;
                forwarders.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_SLICE),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for handle in forwarders {
        handle.join().ok();
    }
    Ok(())
}

/// Shovels bytes client → upstream for one connection, applying the
/// connection's fault state on every pass.
fn forward(
    conn: u32,
    downstream: TcpStream,
    up: TcpStream,
    state: &ConnState,
    seed: u64,
    shared: &Shared,
    stop: &AtomicBool,
) {
    let mut downstream = downstream;
    let mut up = up;
    downstream.set_read_timeout(Some(READ_SLICE)).ok();
    let mut rng = StdRng::seed_from_u64(seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut buf = [0u8; COPY_BUF];

    loop {
        match state.kill.swap(KILL_NONE, Ordering::SeqCst) {
            KILL_RST => {
                // Abrupt kill: close the client socket while leaving any
                // already-queued bytes unread — the kernel answers further
                // client traffic with RST. Deliberately no drain first.
                shared.kills_rst.fetch_add(1, Ordering::SeqCst);
                up.shutdown(Shutdown::Both).ok();
                return;
            }
            KILL_FIN => {
                // Graceful kill: FIN the client and stop forwarding, but
                // keep the socket parked (no reads, no close) so further
                // client writes back-pressure instead of eliciting an RST.
                // A FIN-probing sink ([`gt_replayer::ReconnectingTcpSink`])
                // notices the half-close and reconnects promptly; a plain
                // sink stalls into its write timeout. Parked bytes are
                // discarded at stop and counted as dropped.
                shared.kills_fin.fetch_add(1, Ordering::SeqCst);
                up.shutdown(Shutdown::Both).ok();
                downstream.shutdown(Shutdown::Write).ok();
                while !stop.load(Ordering::SeqCst) {
                    thread::sleep(POLL_SLICE);
                }
                downstream.set_nonblocking(true).ok();
                while let Ok(n) = downstream.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    shared.bytes_dropped.fetch_add(n as u64, Ordering::SeqCst);
                }
                return;
            }
            _ => {}
        }

        if state.partitioned.load(Ordering::SeqCst) {
            // Blackhole: stop reading entirely; TCP backpressure stalls the
            // client until the heal event flips the flag back.
            if stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(POLL_SLICE);
            continue;
        }

        let n = match downstream.read(&mut buf) {
            Ok(0) => {
                // Client is done: pass the FIN upstream and wind down.
                up.shutdown(Shutdown::Write).ok();
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => {
                up.shutdown(Shutdown::Both).ok();
                return;
            }
        };
        shared.bytes_in.fetch_add(n as u64, Ordering::SeqCst);

        let mut chunk = &mut buf[..n];
        let drop_n = take_budget(&state.truncate_budget, chunk.len() as u64) as usize;
        if drop_n > 0 {
            shared
                .bytes_dropped
                .fetch_add(drop_n as u64, Ordering::SeqCst);
            chunk = &mut chunk[drop_n..];
        }
        let corrupt_n = take_budget(&state.corrupt_budget, chunk.len() as u64) as usize;
        if corrupt_n > 0 {
            for byte in chunk[..corrupt_n].iter_mut() {
                *byte ^= rng.random_range(1..=255u8);
            }
            shared
                .bytes_corrupted
                .fetch_add(corrupt_n as u64, Ordering::SeqCst);
        }

        let delay = state.delay_micros.load(Ordering::SeqCst);
        if delay > 0 {
            let jitter = state.jitter_micros.load(Ordering::SeqCst);
            let offset = if jitter > 0 {
                rng.random_range(0..=2 * jitter) as i64 - jitter as i64
            } else {
                0
            };
            let pause = (delay as i64 + offset).max(0) as u64;
            thread::sleep(Duration::from_micros(pause));
        }

        if !chunk.is_empty() {
            if up.write_all(chunk).is_err() {
                downstream.shutdown(Shutdown::Both).ok();
                return;
            }
            shared
                .bytes_out
                .fetch_add(chunk.len() as u64, Ordering::SeqCst);
        }

        let kbps = state.throttle_kbps.load(Ordering::SeqCst);
        if kbps > 0 {
            let secs = n as f64 / (kbps as f64 * 1024.0);
            thread::sleep(Duration::from_secs_f64(secs).min(MAX_THROTTLE_PAUSE));
        }
    }
}

/// Atomically consumes up to `want` from a budget counter, returning how much
/// was actually taken.
fn take_budget(budget: &AtomicU64, want: u64) -> u64 {
    let mut current = budget.load(Ordering::SeqCst);
    loop {
        if current == 0 || want == 0 {
            return 0;
        }
        let take = current.min(want);
        match budget.compare_exchange(current, current - take, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return take,
            Err(actual) => current = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::WallClock;
    use std::io::{BufRead, BufReader};

    /// A line-echo upstream: accepts connections and records received lines.
    fn upstream_server() -> (SocketAddr, Arc<Mutex<Vec<String>>>, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let lines = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let lines = Arc::clone(&lines);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut readers = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let lines = Arc::clone(&lines);
                            readers.push(thread::spawn(move || {
                                let reader = BufReader::new(stream);
                                for line in reader.lines().map_while(Result::ok) {
                                    lines.lock().unwrap().push(line);
                                }
                            }));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(1)),
                    }
                }
                for r in readers {
                    r.join().ok();
                }
            });
        }
        (addr, lines, stop)
    }

    fn start_proxy(upstream: SocketAddr, plan: &NetemPlan) -> NetemHandle {
        NetemProxy::start(upstream, plan, Arc::new(WallClock::start())).unwrap()
    }

    #[test]
    fn passes_traffic_through_with_an_empty_schedule() {
        let (addr, lines, server_stop) = upstream_server();
        let plan = NetemPlan::new(NetemSchedule::new(1));
        let handle = start_proxy(addr, &plan);

        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        for i in 0..100 {
            writeln!(client, "line-{i}").unwrap();
        }
        drop(client);

        let deadline = Instant::now() + Duration::from_secs(5);
        while lines.lock().unwrap().len() < 100 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let got = lines.lock().unwrap().clone();
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], "line-0");
        assert_eq!(got[99], "line-99");

        let report = handle.join().unwrap();
        server_stop.store(true, Ordering::SeqCst);
        assert_eq!(report.connections, 1);
        assert!(report.bytes_in >= 100);
        assert_eq!(report.bytes_in, report.bytes_out);
        assert!(plan.journal.signature().is_empty());
    }

    #[test]
    fn partition_blackholes_then_heals() {
        let (addr, lines, server_stop) = upstream_server();
        let schedule = NetemSchedule::parse("partition@50ms,dur=150ms", 3).expect("valid schedule");
        let plan = NetemPlan::new(schedule);
        let handle = start_proxy(addr, &plan);

        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        let start = Instant::now();
        // Write continuously for ~400ms; during the partition nothing should
        // arrive upstream, afterwards everything must.
        let mut sent = 0u64;
        while start.elapsed() < Duration::from_millis(400) {
            writeln!(client, "event-{sent}").unwrap();
            sent += 1;
            thread::sleep(Duration::from_millis(2));
        }
        drop(client);

        let deadline = Instant::now() + Duration::from_secs(5);
        while (lines.lock().unwrap().len() as u64) < sent && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            lines.lock().unwrap().len() as u64,
            sent,
            "all events arrive after heal"
        );

        handle.join().unwrap();
        server_stop.store(true, Ordering::SeqCst);
        assert_eq!(
            plan.journal.signature(),
            vec![
                (50, "partition(dur=150ms)@50ms".to_owned()),
                (200, "heal(partition(dur=150ms)@50ms)".to_owned()),
            ]
        );
    }

    #[test]
    fn rst_kill_surfaces_as_a_client_write_error() {
        let (addr, _lines, server_stop) = upstream_server();
        let schedule = NetemSchedule::parse("kill@50ms,mode=rst,conns=0", 3).unwrap();
        let plan = NetemPlan::new(schedule);
        let handle = start_proxy(addr, &plan);

        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        client.set_nodelay(true).unwrap();
        let payload = vec![b'x'; 4096];
        let mut failed = false;
        for _ in 0..2000 {
            if client
                .write_all(&payload)
                .and_then(|_| client.flush())
                .is_err()
            {
                failed = true;
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        assert!(failed, "client write should fail after RST kill");

        let report = handle.join().unwrap();
        server_stop.store(true, Ordering::SeqCst);
        assert_eq!(report.kills_rst, 1);
        assert_eq!(plan.journal.signature().len(), 1);
    }

    #[test]
    fn corrupt_and_truncate_budgets_are_accounted() {
        let (addr, lines, server_stop) = upstream_server();
        // One-shot budgets land on connections live at fire time, so connect
        // first and let the 100ms trigger find the connection.
        let schedule =
            NetemSchedule::parse("truncate@100ms,bytes=8; corrupt@100ms,bytes=4", 11).unwrap();
        let plan = NetemPlan::new(schedule);
        let handle = start_proxy(addr, &plan);

        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        thread::sleep(Duration::from_millis(200));
        for i in 0..50 {
            writeln!(client, "payload-{i:04}").unwrap();
        }
        drop(client);

        let deadline = Instant::now() + Duration::from_secs(5);
        while lines.lock().unwrap().len() < 40 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let report = handle.join().unwrap();
        server_stop.store(true, Ordering::SeqCst);
        assert_eq!(report.bytes_dropped, 8);
        assert_eq!(report.bytes_corrupted, 4);
        assert_eq!(report.bytes_out, report.bytes_in - 8);
    }

    #[test]
    fn three_runs_with_one_seed_produce_identical_signatures() {
        let spec = "partition@20ms,dur=30ms,conns=0-3; delay@40ms,ms=1,jitter=1,dur=20ms; \
                    kill@60ms,mode=fin,conns=1; corrupt@80ms,bytes=4";
        let mut signatures = Vec::new();
        for run in 0..3 {
            let (addr, _lines, server_stop) = upstream_server();
            let plan = NetemPlan::new(NetemSchedule::parse(spec, 42).unwrap());
            let handle = start_proxy(addr, &plan);
            let mut client = TcpStream::connect(handle.local_addr()).unwrap();
            // Vary run length per run: signatures must not care.
            let writes = 10 + run * 40;
            for i in 0..writes {
                writeln!(client, "r{run}-{i}").ok();
                thread::sleep(Duration::from_millis(1));
            }
            drop(client);
            handle.join().unwrap();
            server_stop.store(true, Ordering::SeqCst);
            signatures.push(plan.journal.signature());
        }
        assert_eq!(signatures[0], signatures[1]);
        assert_eq!(signatures[1], signatures[2]);
        // Every scheduled event fired exactly once: 4 applies + 2 heals.
        assert_eq!(signatures[0].len(), 6);
    }

    #[test]
    fn stop_fast_forwards_unfired_events_into_the_journal() {
        let (addr, _lines, server_stop) = upstream_server();
        // Scheduled far in the future; joining immediately must still fire it.
        let plan = NetemPlan::new(NetemSchedule::parse("partition@60s,dur=1s", 5).unwrap());
        let handle = start_proxy(addr, &plan);
        handle.join().unwrap();
        server_stop.store(true, Ordering::SeqCst);
        assert_eq!(
            plan.journal.signature(),
            vec![
                (60_000, "partition(dur=1s)@60s".to_owned()),
                (61_000, "heal(partition(dur=1s)@60s)".to_owned()),
            ]
        );
    }
}

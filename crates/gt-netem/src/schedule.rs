//! Compact schedule grammar for network fault injection.
//!
//! A schedule is a `;`-separated list of clauses. Each clause names a fault
//! kind, an at-time trigger after `@`, and comma-separated parameters:
//!
//! ```text
//! partition@2s,dur=500ms,conns=0-3; delay@4s,ms=20,jitter=5
//! ```
//!
//! Triggers and durations accept `Nms`, `Ns`, or a bare integer (milliseconds).
//! `conns=A-B` (or `conns=A`) restricts a fault to a contiguous range of
//! connection indices in accept order; omitting it applies the fault to every
//! connection, including ones accepted later while the fault is active.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Which proxied connections a fault applies to, by accept order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnRange {
    /// Every connection, including ones accepted while the fault is active.
    All,
    /// The inclusive range of connection indices `first..=last`.
    Range {
        /// First connection index covered.
        first: u32,
        /// Last connection index covered (inclusive).
        last: u32,
    },
}

impl ConnRange {
    /// Whether connection index `conn` falls inside this range.
    pub fn contains(&self, conn: u32) -> bool {
        match self {
            ConnRange::All => true,
            ConnRange::Range { first, last } => (*first..=*last).contains(&conn),
        }
    }
}

impl fmt::Display for ConnRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnRange::All => write!(f, "all"),
            ConnRange::Range { first, last } if first == last => write!(f, "{first}"),
            ConnRange::Range { first, last } => write!(f, "{first}-{last}"),
        }
    }
}

/// How a connection kill is delivered to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Abrupt reset: the proxy drops the client socket with unread data
    /// queued, which elicits a kernel RST segment.
    Rst,
    /// Graceful close: the proxy drains in-flight data upstream, then sends a
    /// FIN via `shutdown(Write)` and stops reading.
    Fin,
}

impl KillMode {
    fn label(&self) -> &'static str {
        match self {
            KillMode::Rst => "rst",
            KillMode::Fin => "fin",
        }
    }
}

/// The fault kinds the proxy can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetemFaultKind {
    /// Blackhole: the proxy stops reading from matching connections, letting
    /// TCP backpressure stall the client, then heals after `duration`.
    Partition {
        /// How long the blackhole lasts before healing.
        duration: Duration,
    },
    /// Added per-read latency with optional uniform jitter, for an optional
    /// window (unbounded if `duration` is `None`).
    Delay {
        /// Base delay added before forwarding each read.
        delay: Duration,
        /// Uniform jitter half-width around the base delay.
        jitter: Duration,
        /// Window length; `None` means until the run ends.
        duration: Option<Duration>,
    },
    /// Bandwidth cap in kilobytes per second, for an optional window.
    Throttle {
        /// Cap in kilobytes (1024 bytes) per second.
        kbps: u64,
        /// Window length; `None` means until the run ends.
        duration: Option<Duration>,
    },
    /// One-shot connection kill.
    Kill {
        /// Abrupt RST or graceful FIN.
        mode: KillMode,
    },
    /// Corrupt the next `bytes` forwarded bytes by XOR with a seeded nonzero
    /// mask.
    Corrupt {
        /// Number of bytes to corrupt.
        bytes: u64,
    },
    /// Silently drop the next `bytes` forwarded bytes.
    Truncate {
        /// Number of bytes to drop.
        bytes: u64,
    },
}

impl NetemFaultKind {
    /// Short kind name used in journal descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            NetemFaultKind::Partition { .. } => "partition",
            NetemFaultKind::Delay { .. } => "delay",
            NetemFaultKind::Throttle { .. } => "throttle",
            NetemFaultKind::Kill { .. } => "kill",
            NetemFaultKind::Corrupt { .. } => "corrupt",
            NetemFaultKind::Truncate { .. } => "truncate",
        }
    }

    /// The window after which the fault clears, if it is a windowed kind.
    pub fn clear_after(&self) -> Option<Duration> {
        match self {
            NetemFaultKind::Partition { duration } => Some(*duration),
            NetemFaultKind::Delay { duration, .. } | NetemFaultKind::Throttle { duration, .. } => {
                *duration
            }
            _ => None,
        }
    }
}

/// A single scheduled network fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetemFault {
    /// When the fault fires, measured from proxy start.
    pub at: Duration,
    /// What the fault does.
    pub kind: NetemFaultKind,
    /// Which connections it applies to.
    pub conns: ConnRange,
}

impl NetemFault {
    /// Human-readable clause used in journal descriptions; round-trips the
    /// shape of the spec grammar, e.g. `partition(dur=500ms, conns=0-3)@2s`.
    pub fn describe(&self) -> String {
        let mut params = Vec::new();
        match &self.kind {
            NetemFaultKind::Partition { duration } => {
                params.push(format!("dur={}", fmt_duration(*duration)));
            }
            NetemFaultKind::Delay {
                delay,
                jitter,
                duration,
            } => {
                params.push(format!("ms={}", delay.as_millis()));
                if !jitter.is_zero() {
                    params.push(format!("jitter={}", jitter.as_millis()));
                }
                if let Some(d) = duration {
                    params.push(format!("dur={}", fmt_duration(*d)));
                }
            }
            NetemFaultKind::Throttle { kbps, duration } => {
                params.push(format!("kbps={kbps}"));
                if let Some(d) = duration {
                    params.push(format!("dur={}", fmt_duration(*d)));
                }
            }
            NetemFaultKind::Kill { mode } => {
                params.push(format!("mode={}", mode.label()));
            }
            NetemFaultKind::Corrupt { bytes } | NetemFaultKind::Truncate { bytes } => {
                params.push(format!("bytes={bytes}"));
            }
        }
        if self.conns != ConnRange::All {
            params.push(format!("conns={}", self.conns));
        }
        format!(
            "{}({})@{}",
            self.kind.name(),
            params.join(", "),
            fmt_duration(self.at)
        )
    }
}

/// A parsed, seeded network fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetemSchedule {
    /// Scheduled faults, in spec order.
    pub faults: Vec<NetemFault>,
    /// Seed driving jitter and corruption masks.
    pub seed: u64,
}

impl NetemSchedule {
    /// An empty schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        NetemSchedule {
            faults: Vec::new(),
            seed,
        }
    }

    /// Appends a fault (builder style).
    pub fn fault(mut self, at: Duration, kind: NetemFaultKind, conns: ConnRange) -> Self {
        self.faults.push(NetemFault { at, kind, conns });
        self
    }

    /// Whether the schedule has no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Round-trips the parsed schedule back into clause shape for display.
    pub fn describe(&self) -> String {
        self.faults
            .iter()
            .map(NetemFault::describe)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Parses a `;`-separated spec like
    /// `partition@2s,dur=500ms,conns=0-3; delay@4s,ms=20,jitter=5`.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut faults = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            faults.push(parse_clause(clause)?);
        }
        if faults.is_empty() {
            return Err(format!("netem schedule has no clauses: {spec:?}"));
        }
        Ok(NetemSchedule { faults, seed })
    }
}

fn parse_clause(clause: &str) -> Result<NetemFault, String> {
    let mut parts = clause.split(',').map(str::trim);
    let head = parts.next().unwrap_or_default();
    let (kind_name, trigger) = head
        .split_once('@')
        .ok_or_else(|| format!("clause {clause:?} is missing an @trigger"))?;
    let at = parse_duration(trigger.trim())
        .ok_or_else(|| format!("bad trigger {trigger:?} in clause {clause:?}"))?;

    let mut params: BTreeMap<String, String> = BTreeMap::new();
    for part in parts {
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad parameter {part:?} in clause {clause:?}"))?;
        if params
            .insert(key.trim().to_string(), value.trim().to_string())
            .is_some()
        {
            return Err(format!(
                "duplicate parameter {:?} in clause {clause:?}",
                key.trim()
            ));
        }
    }

    let conns = match params.remove("conns") {
        None => ConnRange::All,
        Some(v) => {
            parse_conns(&v).ok_or_else(|| format!("bad conns={v:?} in clause {clause:?}"))?
        }
    };
    let mode_param = params.remove("mode");

    let take_u64 =
        |params: &mut BTreeMap<String, String>, key: &str| -> Result<Option<u64>, String> {
            params
                .remove(key)
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("bad {key}={v:?} in clause {clause:?}"))
                })
                .transpose()
        };
    let take_duration = |params: &mut BTreeMap<String, String>,
                         key: &str|
     -> Result<Option<Duration>, String> {
        params
            .remove(key)
            .map(|v| {
                parse_duration(&v).ok_or_else(|| format!("bad {key}={v:?} in clause {clause:?}"))
            })
            .transpose()
    };

    let kind = match kind_name.trim() {
        "partition" => {
            let duration = take_duration(&mut params, "dur")?
                .ok_or_else(|| format!("partition clause {clause:?} needs dur="))?;
            NetemFaultKind::Partition { duration }
        }
        "delay" => {
            let ms = take_u64(&mut params, "ms")?
                .ok_or_else(|| format!("delay clause {clause:?} needs ms="))?;
            let jitter = take_u64(&mut params, "jitter")?.unwrap_or(0);
            let duration = take_duration(&mut params, "dur")?;
            NetemFaultKind::Delay {
                delay: Duration::from_millis(ms),
                jitter: Duration::from_millis(jitter),
                duration,
            }
        }
        "throttle" => {
            let kbps = take_u64(&mut params, "kbps")?
                .ok_or_else(|| format!("throttle clause {clause:?} needs kbps="))?;
            if kbps == 0 {
                return Err(format!(
                    "throttle clause {clause:?} needs kbps > 0 (use partition for a blackhole)"
                ));
            }
            let duration = take_duration(&mut params, "dur")?;
            NetemFaultKind::Throttle { kbps, duration }
        }
        "kill" => {
            let mode = match mode_param.as_deref() {
                Some("rst") => KillMode::Rst,
                Some("fin") => KillMode::Fin,
                Some(other) => {
                    return Err(format!(
                        "bad mode={other:?} in clause {clause:?} (expected rst or fin)"
                    ));
                }
                None => {
                    return Err(format!("kill clause {clause:?} needs mode=rst|fin"));
                }
            };
            NetemFaultKind::Kill { mode }
        }
        "corrupt" => {
            let bytes = take_u64(&mut params, "bytes")?
                .ok_or_else(|| format!("corrupt clause {clause:?} needs bytes="))?;
            NetemFaultKind::Corrupt { bytes }
        }
        "truncate" => {
            let bytes = take_u64(&mut params, "bytes")?
                .ok_or_else(|| format!("truncate clause {clause:?} needs bytes="))?;
            NetemFaultKind::Truncate { bytes }
        }
        other => {
            return Err(format!(
                "unknown netem fault kind {other:?} in clause {clause:?}"
            ));
        }
    };

    if mode_param.is_some() && !matches!(kind, NetemFaultKind::Kill { .. }) {
        return Err(format!("unknown parameter \"mode\" in clause {clause:?}"));
    }
    if let Some(key) = params.keys().next() {
        return Err(format!("unknown parameter {key:?} in clause {clause:?}"));
    }

    Ok(NetemFault { at, kind, conns })
}

fn parse_conns(value: &str) -> Option<ConnRange> {
    if let Some((a, b)) = value.split_once('-') {
        let first = a.trim().parse::<u32>().ok()?;
        let last = b.trim().parse::<u32>().ok()?;
        if first > last {
            return None;
        }
        Some(ConnRange::Range { first, last })
    } else {
        let only = value.trim().parse::<u32>().ok()?;
        Some(ConnRange::Range {
            first: only,
            last: only,
        })
    }
}

fn parse_duration(value: &str) -> Option<Duration> {
    let value = value.trim();
    if let Some(ms) = value.strip_suffix("ms") {
        return ms.trim().parse::<u64>().ok().map(Duration::from_millis);
    }
    if let Some(s) = value.strip_suffix('s') {
        return s.trim().parse::<u64>().ok().map(Duration::from_secs);
    }
    value.parse::<u64>().ok().map(Duration::from_millis)
}

fn fmt_duration(d: Duration) -> String {
    let ms = d.as_millis();
    if ms > 0 && ms % 1000 == 0 {
        format!("{}s", ms / 1000)
    } else {
        format!("{ms}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_trigger() {
        let spec = "partition@2s,dur=500ms,conns=0-3; delay@4s,ms=20,jitter=5; \
                    throttle@1000,kbps=64,dur=2s; kill@1500ms,mode=rst,conns=2; \
                    corrupt@3s,bytes=16; truncate@5s,bytes=8,conns=1-1";
        let schedule = NetemSchedule::parse(spec, 9).unwrap();
        assert_eq!(schedule.seed, 9);
        assert_eq!(schedule.faults.len(), 6);
        assert_eq!(
            schedule.faults[0],
            NetemFault {
                at: Duration::from_secs(2),
                kind: NetemFaultKind::Partition {
                    duration: Duration::from_millis(500)
                },
                conns: ConnRange::Range { first: 0, last: 3 },
            }
        );
        assert_eq!(
            schedule.faults[1].kind,
            NetemFaultKind::Delay {
                delay: Duration::from_millis(20),
                jitter: Duration::from_millis(5),
                duration: None,
            }
        );
        assert_eq!(schedule.faults[2].at, Duration::from_millis(1000));
        assert_eq!(
            schedule.faults[3].kind,
            NetemFaultKind::Kill {
                mode: KillMode::Rst
            }
        );
        assert!(schedule.faults[3].conns.contains(2));
        assert!(!schedule.faults[3].conns.contains(3));
        assert_eq!(
            schedule.faults[5].conns,
            ConnRange::Range { first: 1, last: 1 }
        );
    }

    #[test]
    fn describe_round_trips_the_spec_shape() {
        let spec = "partition@2s,dur=500ms,conns=0-3; delay@4s,ms=20,jitter=5; kill@1s,mode=fin";
        let schedule = NetemSchedule::parse(spec, 0).unwrap();
        assert_eq!(
            schedule.describe(),
            "partition(dur=500ms, conns=0-3)@2s; delay(ms=20, jitter=5)@4s; kill(mode=fin)@1s"
        );
        let reparsed = NetemSchedule::parse(
            &schedule
                .describe()
                .replace('(', ",")
                .replace(')', "")
                .replace(",,", ","),
            0,
        );
        // The describe format is for humans/journals, not guaranteed
        // re-parseable; just assert it mentions each kind.
        drop(reparsed);
        for kind in ["partition", "delay", "kill"] {
            assert!(schedule.describe().contains(kind));
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        let cases = [
            "",
            "  ;  ",
            "partition,dur=1s",
            "partition@2s",
            "partition@2s,dur=oops",
            "partition@nope,dur=1s",
            "delay@1s",
            "delay@1s,ms=20,ms=30",
            "delay@1s,ms=20,bogus=1",
            "throttle@1s,kbps=0",
            "kill@1s",
            "kill@1s,mode=hup",
            "corrupt@1s",
            "frobnicate@1s,x=2",
            "partition@1s,dur=1s,conns=3-1",
            "partition@1s,dur=1s,conns=x",
        ];
        for case in cases {
            assert!(
                NetemSchedule::parse(case, 0).is_err(),
                "expected parse error for {case:?}"
            );
        }
    }

    #[test]
    fn builder_matches_parser() {
        let parsed =
            NetemSchedule::parse("partition@2s,dur=500ms,conns=0-3; kill@4s,mode=fin", 7).unwrap();
        let built = NetemSchedule::new(7)
            .fault(
                Duration::from_secs(2),
                NetemFaultKind::Partition {
                    duration: Duration::from_millis(500),
                },
                ConnRange::Range { first: 0, last: 3 },
            )
            .fault(
                Duration::from_secs(4),
                NetemFaultKind::Kill {
                    mode: KillMode::Fin,
                },
                ConnRange::All,
            );
        assert_eq!(parsed, built);
    }

    #[test]
    fn bare_integers_and_units_parse_as_durations() {
        assert_eq!(parse_duration("250"), Some(Duration::from_millis(250)));
        assert_eq!(parse_duration("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_duration("3s"), Some(Duration::from_secs(3)));
        assert_eq!(parse_duration("3 s"), Some(Duration::from_secs(3)));
        assert_eq!(parse_duration("x"), None);
        assert_eq!(fmt_duration(Duration::from_millis(2000)), "2s");
        assert_eq!(fmt_duration(Duration::from_millis(500)), "500ms");
        assert_eq!(fmt_duration(Duration::ZERO), "0ms");
    }
}

//! gt-netem — deterministic network fault injection for GraphTides.
//!
//! The chaos layer (gt-chaos) injects faults as sink-side middleware *inside*
//! the replayer process; real ingress fails at the network. `gt-netem` closes
//! that gap with a seeded TCP proxy that sits between load clients (or the
//! single-sink replayer) and the SUT listener, injecting latency/jitter,
//! bandwidth caps, timed partitions, RST/FIN connection kills, and byte
//! corruption or truncation — all driven by a compact schedule spec:
//!
//! ```text
//! partition@2s,dur=500ms,conns=0-3; delay@4s,ms=20,jitter=5
//! ```
//!
//! Determinism witness: every fault apply and heal is journaled into a
//! [`gt_chaos::ChaosJournal`], with the journal `seq` set to the *planned*
//! millisecond offset rather than anything observed at runtime, and the
//! proxy fast-forwards unfired events on shutdown. Three runs of the same
//! `(schedule, seed)` therefore produce byte-identical
//! [`gt_chaos::ChaosJournal::signature`]s regardless of wall-clock noise or
//! run length.

#![warn(missing_docs)]

mod proxy;
mod schedule;

pub use proxy::{NetemHandle, NetemProxy, NetemReport};
pub use schedule::{ConnRange, KillMode, NetemFault, NetemFaultKind, NetemSchedule};

use gt_chaos::ChaosJournal;

/// The metric source label netem journal records are folded under.
pub const NETEM_SOURCE: &str = "netem";

/// A network fault plan: the schedule to inject plus the shared journal the
/// proxy writes its determinism witness into.
#[derive(Debug, Clone, Default)]
pub struct NetemPlan {
    /// The seeded fault schedule.
    pub schedule: NetemSchedule,
    /// Shared journal; clones observe the same events.
    pub journal: ChaosJournal,
}

impl NetemPlan {
    /// Wraps a schedule with a fresh journal.
    pub fn new(schedule: NetemSchedule) -> Self {
        NetemPlan {
            schedule,
            journal: ChaosJournal::new(),
        }
    }
}

//! Batch PageRank — the exact reference for the paper's "online influence
//! rank" computation (§5.3.2 measures *relative rank errors* of an online
//! variant against exactly this kind of ground truth).

use gt_graph::CsrSnapshot;

/// PageRank configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Stop when the L1 change between iterations falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// The result of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Rank per dense vertex index, summing to ~1.
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 delta.
    pub delta: f64,
}

impl PageRankResult {
    /// Dense indices of the `k` highest-ranked vertices, descending, ties
    /// broken by index for determinism.
    pub fn top_k(&self, k: usize) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.ranks.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.ranks[b as usize]
                .partial_cmp(&self.ranks[a as usize])
                .expect("ranks are finite")
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }
}

/// Power-iteration PageRank with uniform teleport and dangling-mass
/// redistribution.
pub fn pagerank(csr: &CsrSnapshot, config: &PageRankConfig) -> PageRankResult {
    let n = csr.vertex_count();
    if n == 0 {
        return PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            delta: 0.0,
        };
    }
    let n_f = n as f64;
    let mut ranks = vec![1.0 / n_f; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;

    while iterations < config.max_iterations && delta > config.tolerance {
        let mut dangling_mass = 0.0;
        next.fill(0.0);
        for u in csr.indices() {
            let share = ranks[u as usize];
            let out = csr.out_neighbors(u);
            if out.is_empty() {
                dangling_mass += share;
            } else {
                let per_edge = share / out.len() as f64;
                for &v in out {
                    next[v as usize] += per_edge;
                }
            }
        }
        let teleport = (1.0 - config.damping) / n_f + config.damping * dangling_mass / n_f;
        delta = 0.0;
        for (r, nx) in ranks.iter_mut().zip(next.iter()) {
            let new = teleport + config.damping * nx;
            delta += (new - *r).abs();
            *r = new;
        }
        iterations += 1;
    }

    PageRankResult {
        ranks,
        iterations,
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::builders;

    fn csr_of(stream: &gt_core::GraphStream) -> CsrSnapshot {
        CsrSnapshot::from_graph(&builders::materialize(stream))
    }

    #[test]
    fn ranks_sum_to_one() {
        let csr = csr_of(
            &builders::BarabasiAlbert {
                n: 300,
                m0: 10,
                m: 3,
                seed: 2,
            }
            .generate(),
        );
        let result = pagerank(&csr, &PageRankConfig::default());
        let total: f64 = result.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        assert!(result.iterations > 1);
        assert!(result.delta <= 1e-9);
    }

    #[test]
    fn ring_is_uniform() {
        let csr = csr_of(&builders::ring(10));
        let result = pagerank(&csr, &PageRankConfig::default());
        for &r in &result.ranks {
            assert!((r - 0.1).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn star_center_receives_most_rank_in_reversed_star() {
        // Spokes point at the center: i -> 0 for i in 1..n.
        use gt_core::prelude::*;
        let mut g = gt_graph::EvolvingGraph::new();
        for id in 0..10u64 {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for id in 1..10u64 {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((id, 0)),
                state: State::empty(),
            })
            .unwrap();
        }
        let csr = CsrSnapshot::from_graph(&g);
        let result = pagerank(&csr, &PageRankConfig::default());
        let top = result.top_k(1);
        assert_eq!(csr.id_of(top[0]), VertexId(0));
        assert!(result.ranks[top[0] as usize] > 0.4);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Path: last vertex dangles.
        let csr = csr_of(&builders::path(5));
        let result = pagerank(&csr, &PageRankConfig::default());
        let total: f64 = result.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn top_k_deterministic_ordering() {
        let csr = csr_of(&builders::ring(6));
        let result = pagerank(&csr, &PageRankConfig::default());
        // All equal ranks: ties broken by index.
        assert_eq!(result.top_k(3), [0, 1, 2]);
        assert_eq!(result.top_k(100).len(), 6);
    }

    #[test]
    fn empty_graph_returns_empty() {
        let csr = CsrSnapshot::from_graph(&gt_graph::EvolvingGraph::new());
        let result = pagerank(&csr, &PageRankConfig::default());
        assert!(result.ranks.is_empty());
    }
}

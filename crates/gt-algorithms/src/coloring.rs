//! Greedy vertex coloring (Table 1, "Graph theory") on the undirected
//! projection.

use gt_graph::CsrSnapshot;

/// The coloring produced by [`greedy_coloring`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color per dense vertex index (0-based).
    pub colors: Vec<u32>,
    /// Number of distinct colors used.
    pub color_count: u32,
}

impl Coloring {
    /// Verifies that no undirected edge connects same-colored endpoints.
    pub fn is_proper(&self, csr: &CsrSnapshot) -> bool {
        csr.indices().all(|u| {
            csr.out_neighbors(u)
                .iter()
                .all(|&v| u == v || self.colors[u as usize] != self.colors[v as usize])
        })
    }
}

/// Greedy coloring in largest-degree-first order — the classic Welsh–Powell
/// heuristic, which uses at most `max_degree + 1` colors.
pub fn greedy_coloring(csr: &CsrSnapshot) -> Coloring {
    let n = csr.vertex_count();
    // Undirected adjacency.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in csr.indices() {
        for &v in csr.out_neighbors(u) {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(adj[v as usize].len()), v));

    const UNCOLORED: u32 = u32::MAX;
    let mut colors = vec![UNCOLORED; n];
    let mut used = Vec::new();
    let mut max_color = 0u32;
    for &v in &order {
        used.clear();
        for &w in &adj[v as usize] {
            let c = colors[w as usize];
            if c != UNCOLORED {
                used.push(c);
            }
        }
        used.sort_unstable();
        used.dedup();
        let mut color = 0u32;
        for &c in &used {
            if c == color {
                color += 1;
            } else if c > color {
                break;
            }
        }
        colors[v as usize] = color;
        max_color = max_color.max(color);
    }

    Coloring {
        color_count: if n == 0 { 0 } else { max_color + 1 },
        colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::builders;

    fn csr_of(stream: &gt_core::GraphStream) -> CsrSnapshot {
        CsrSnapshot::from_graph(&builders::materialize(stream))
    }

    #[test]
    fn path_is_two_colorable() {
        let csr = csr_of(&builders::path(10));
        let coloring = greedy_coloring(&csr);
        assert!(coloring.is_proper(&csr));
        assert_eq!(coloring.color_count, 2);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let csr = csr_of(&builders::complete(6));
        let coloring = greedy_coloring(&csr);
        assert!(coloring.is_proper(&csr));
        assert_eq!(coloring.color_count, 6);
    }

    #[test]
    fn star_is_two_colorable() {
        let csr = csr_of(&builders::star(20));
        let coloring = greedy_coloring(&csr);
        assert!(coloring.is_proper(&csr));
        assert_eq!(coloring.color_count, 2);
    }

    #[test]
    fn odd_ring_needs_three() {
        let csr = csr_of(&builders::ring(5));
        let coloring = greedy_coloring(&csr);
        assert!(coloring.is_proper(&csr));
        assert!(coloring.color_count >= 3);
    }

    #[test]
    fn bound_respected_on_random_graph() {
        let csr = csr_of(
            &builders::ErdosRenyi {
                n: 100,
                p: 0.05,
                seed: 5,
            }
            .generate(),
        );
        let coloring = greedy_coloring(&csr);
        assert!(coloring.is_proper(&csr));
        let max_deg = csr
            .indices()
            .map(|u| csr.out_degree(u) + csr.in_degree(u))
            .max()
            .unwrap_or(0) as u32;
        assert!(coloring.color_count <= max_deg + 1);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrSnapshot::from_graph(&gt_graph::EvolvingGraph::new());
        let coloring = greedy_coloring(&csr);
        assert_eq!(coloring.color_count, 0);
        assert!(coloring.colors.is_empty());
    }
}

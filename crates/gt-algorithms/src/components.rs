//! Weakly connected components (Table 1, "Communities") via union–find.

use gt_graph::CsrSnapshot;

/// A disjoint-set forest over dense indices with path halving and union by
/// size. Shared by the batch WCC and the incremental online variant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds a new singleton, returning its index.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        self.components += 1;
        id
    }

    /// Representative of `x`, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// The weakly-connected-components labeling of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccResult {
    /// Component label per dense index (the smallest dense index of the
    /// component, for determinism).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl WccResult {
    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        use std::collections::HashMap;
        let mut sizes: HashMap<u32, usize> = HashMap::new();
        for &l in &self.labels {
            *sizes.entry(l).or_insert(0) += 1;
        }
        sizes.values().copied().max().unwrap_or(0)
    }

    /// Whether two dense indices share a component.
    pub fn same_component(&self, a: u32, b: u32) -> bool {
        self.labels[a as usize] == self.labels[b as usize]
    }
}

/// Computes weakly connected components (edge direction ignored).
pub fn weakly_connected_components(csr: &CsrSnapshot) -> WccResult {
    let n = csr.vertex_count();
    let mut uf = UnionFind::new(n);
    for u in csr.indices() {
        for &v in csr.out_neighbors(u) {
            uf.union(u, v);
        }
    }
    // Canonical labels: smallest member index per component.
    let mut canonical = vec![u32::MAX; n];
    let mut labels = vec![0u32; n];
    for v in 0..n as u32 {
        let r = uf.find(v) as usize;
        if canonical[r] == u32::MAX {
            canonical[r] = v;
        }
        labels[v as usize] = canonical[r];
    }
    WccResult {
        labels,
        count: uf.component_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::builders;

    fn csr_of(stream: &gt_core::GraphStream) -> CsrSnapshot {
        CsrSnapshot::from_graph(&builders::materialize(stream))
    }

    #[test]
    fn single_path_is_one_component() {
        let wcc = weakly_connected_components(&csr_of(&builders::path(10)));
        assert_eq!(wcc.count, 1);
        assert_eq!(wcc.largest(), 10);
        assert!(wcc.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn disjoint_paths_are_separate() {
        use gt_core::prelude::*;
        let mut stream = builders::path(5);
        // Second component: vertices 10..15 in a path.
        for id in 10..15u64 {
            stream.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            }));
        }
        for id in 11..15u64 {
            stream.push(StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((id - 1, id)),
                state: State::empty(),
            }));
        }
        let csr = csr_of(&stream);
        let wcc = weakly_connected_components(&csr);
        assert_eq!(wcc.count, 2);
        let a = csr.index_of(VertexId(0)).unwrap();
        let b = csr.index_of(VertexId(4)).unwrap();
        let c = csr.index_of(VertexId(10)).unwrap();
        assert!(wcc.same_component(a, b));
        assert!(!wcc.same_component(a, c));
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 and 2 -> 1: weakly one component despite no directed path
        // between 0 and 2.
        use gt_core::prelude::*;
        let mut g = gt_graph::EvolvingGraph::new();
        for id in 0..3u64 {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for (s, d) in [(0u64, 1u64), (2, 1)] {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::empty(),
            })
            .unwrap();
        }
        let wcc = weakly_connected_components(&CsrSnapshot::from_graph(&g));
        assert_eq!(wcc.count, 1);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        use gt_core::prelude::*;
        let stream: gt_core::GraphStream = (0..4u64)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        let wcc = weakly_connected_components(&csr_of(&stream));
        assert_eq!(wcc.count, 4);
        assert_eq!(wcc.largest(), 1);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.component_size(0), 2);
        assert!(uf.union(0, 3));
        assert_eq!(uf.component_size(2), 4);
        let id = uf.push();
        assert_eq!(id, 5);
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.len(), 6);
    }

    #[test]
    fn empty_graph() {
        let wcc =
            weakly_connected_components(&CsrSnapshot::from_graph(&gt_graph::EvolvingGraph::new()));
        assert_eq!(wcc.count, 0);
        assert_eq!(wcc.largest(), 0);
    }
}

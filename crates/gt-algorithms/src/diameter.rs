//! Diameter estimation (Table 1, "Routing & traversals").
//!
//! The exact diameter needs all-pairs BFS; [`exact_diameter`] does exactly
//! that and is meant for small snapshots or ground truth. For periodic
//! execution on an evolving graph — the paper's example of time-series
//! property computation — [`estimate_diameter`] runs the double-sweep
//! heuristic from a deterministic sample of start vertices, giving a lower
//! bound at a fraction of the cost.

use crate::traversal::{bfs_distances_undirected, UNREACHABLE};
use gt_graph::CsrSnapshot;

/// The exact diameter of the undirected projection: the longest shortest
/// path within any connected component. Returns 0 for graphs with fewer
/// than 2 vertices.
pub fn exact_diameter(csr: &CsrSnapshot) -> u32 {
    let mut best = 0u32;
    for u in csr.indices() {
        let dist = bfs_distances_undirected(csr, u);
        for &d in &dist {
            if d != UNREACHABLE && d > best {
                best = d;
            }
        }
    }
    best
}

/// Double-sweep diameter estimate: from each of `samples` deterministic
/// start vertices, BFS to the farthest vertex, then BFS again from there.
/// The result is a lower bound on the exact diameter, exact on trees.
pub fn estimate_diameter(csr: &CsrSnapshot, samples: usize) -> u32 {
    let n = csr.vertex_count();
    if n < 2 {
        return 0;
    }
    let mut best = 0u32;
    let stride = (n / samples.max(1)).max(1);
    for start in (0..n).step_by(stride) {
        let first = bfs_distances_undirected(csr, start as u32);
        let (far, d1) = farthest(&first);
        if d1 == 0 {
            continue;
        }
        let second = bfs_distances_undirected(csr, far);
        let (_, d2) = farthest(&second);
        best = best.max(d1).max(d2);
    }
    best
}

fn farthest(dist: &[u32]) -> (u32, u32) {
    let mut far = 0u32;
    let mut best = 0u32;
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE && d > best {
            best = d;
            far = v as u32;
        }
    }
    (far, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::builders;

    fn csr_of(stream: &gt_core::GraphStream) -> CsrSnapshot {
        CsrSnapshot::from_graph(&builders::materialize(stream))
    }

    #[test]
    fn path_diameter() {
        let csr = csr_of(&builders::path(10));
        assert_eq!(exact_diameter(&csr), 9);
        // Double sweep is exact on trees.
        assert_eq!(estimate_diameter(&csr, 1), 9);
    }

    #[test]
    fn ring_diameter() {
        let csr = csr_of(&builders::ring(10));
        assert_eq!(exact_diameter(&csr), 5);
        let est = estimate_diameter(&csr, 3);
        assert!((4..=5).contains(&est), "estimate {est}");
    }

    #[test]
    fn star_diameter_is_two() {
        let csr = csr_of(&builders::star(50));
        assert_eq!(exact_diameter(&csr), 2);
        assert_eq!(estimate_diameter(&csr, 2), 2);
    }

    #[test]
    fn estimate_never_exceeds_exact() {
        let csr = csr_of(
            &builders::ErdosRenyi {
                n: 80,
                p: 0.04,
                seed: 12,
            }
            .generate(),
        );
        let exact = exact_diameter(&csr);
        for samples in [1, 2, 4, 8] {
            assert!(estimate_diameter(&csr, samples) <= exact);
        }
    }

    #[test]
    fn disconnected_components_use_within_component_paths() {
        use gt_core::prelude::*;
        let mut stream = builders::path(4); // diameter 3
        for id in 10..12u64 {
            stream.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            }));
        }
        stream.push(StreamEntry::graph(GraphEvent::AddEdge {
            id: EdgeId::from((10, 11)),
            state: State::empty(),
        }));
        let csr = csr_of(&stream);
        assert_eq!(exact_diameter(&csr), 3);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(exact_diameter(&csr_of(&builders::path(1))), 0);
        assert_eq!(estimate_diameter(&csr_of(&builders::path(1)), 4), 0);
        let empty = CsrSnapshot::from_graph(&gt_graph::EvolvingGraph::new());
        assert_eq!(exact_diameter(&empty), 0);
    }
}

//! Centrality measures (§3.2 lists centrality among the structural graph
//! properties an evolving graph's stream changes over time).
//!
//! * [`betweenness_centrality`] — Brandes' algorithm over unweighted
//!   shortest paths; exact, O(V·E).
//! * [`approx_betweenness`] — the same accumulation from a deterministic
//!   subset of pivots; the estimator used when the computation must fit a
//!   streaming cadence (scale by `n / pivots` to compare with exact).
//! * [`closeness_centrality`] — harmonic closeness (sums of reciprocal
//!   distances), robust on disconnected graphs.

use std::collections::VecDeque;

use gt_graph::CsrSnapshot;

/// Exact betweenness centrality over out-edge shortest paths.
pub fn betweenness_centrality(csr: &CsrSnapshot) -> Vec<f64> {
    let n = csr.vertex_count();
    let mut centrality = vec![0.0; n];
    for s in 0..n as u32 {
        accumulate_from(csr, s, &mut centrality);
    }
    centrality
}

/// Pivot-sampled betweenness: accumulates from `pivots` evenly spaced
/// sources. Multiply by `n / pivots` for an unbiased magnitude estimate.
pub fn approx_betweenness(csr: &CsrSnapshot, pivots: usize) -> Vec<f64> {
    let n = csr.vertex_count();
    let mut centrality = vec![0.0; n];
    if n == 0 || pivots == 0 {
        return centrality;
    }
    let stride = (n / pivots.min(n)).max(1);
    for s in (0..n).step_by(stride) {
        accumulate_from(csr, s as u32, &mut centrality);
    }
    centrality
}

/// One Brandes source iteration: BFS + dependency accumulation.
fn accumulate_from(csr: &CsrSnapshot, s: u32, centrality: &mut [f64]) {
    let n = csr.vertex_count();
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![i64::MAX; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    sigma[s as usize] = 1.0;
    dist[s as usize] = 0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in csr.out_neighbors(v) {
            if dist[w as usize] == i64::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
            if dist[w as usize] == dist[v as usize] + 1 {
                sigma[w as usize] += sigma[v as usize];
                preds[w as usize].push(v);
            }
        }
    }

    let mut delta = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &v in &preds[w as usize] {
            delta[v as usize] += sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
        }
        if w != s {
            centrality[w as usize] += delta[w as usize];
        }
    }
}

/// Harmonic closeness centrality: `C(v) = Σ_{u≠v} 1 / d(v, u)` over
/// out-edge distances, with unreachable vertices contributing zero.
pub fn closeness_centrality(csr: &CsrSnapshot) -> Vec<f64> {
    use crate::traversal::{bfs_distances, UNREACHABLE};
    let n = csr.vertex_count();
    let mut closeness = vec![0.0; n];
    for v in 0..n as u32 {
        let dist = bfs_distances(csr, v);
        closeness[v as usize] = dist
            .iter()
            .enumerate()
            .filter(|&(u, &d)| u as u32 != v && d != UNREACHABLE && d > 0)
            .map(|(_, &d)| 1.0 / f64::from(d))
            .sum();
    }
    closeness
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_graph::{builders, EvolvingGraph};

    fn graph_of(edges: &[(u64, u64)], n: u64) -> CsrSnapshot {
        let mut g = EvolvingGraph::new();
        for id in 0..n {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for &(s, d) in edges {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::empty(),
            })
            .unwrap();
        }
        CsrSnapshot::from_graph(&g)
    }

    #[test]
    fn path_betweenness() {
        // Directed path 0 -> 1 -> 2 -> 3 -> 4: middle vertices carry the
        // through-traffic. For vertex k on an n-path: k * (n-1-k).
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::path(5)));
        let bc = betweenness_centrality(&csr);
        assert_eq!(bc, [0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_dominates() {
        // Bidirectional star so paths between spokes exist via the center.
        let mut edges = Vec::new();
        for i in 1..8u64 {
            edges.push((0, i));
            edges.push((i, 0));
        }
        let csr = graph_of(&edges, 8);
        let bc = betweenness_centrality(&csr);
        let center = csr.index_of(VertexId(0)).unwrap() as usize;
        // Center sits on all 7*6 = 42 spoke-to-spoke shortest paths.
        assert_eq!(bc[center], 42.0);
        for (i, &v) in bc.iter().enumerate() {
            if i != center {
                assert_eq!(v, 0.0, "spoke {i}");
            }
        }
    }

    #[test]
    fn parallel_paths_split_credit() {
        // Diamond: 0 -> {1, 2} -> 3: each middle vertex carries half of
        // the single 0->3 pair.
        let csr = graph_of(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let bc = betweenness_centrality(&csr);
        let i = |v: u64| csr.index_of(VertexId(v)).unwrap() as usize;
        assert_eq!(bc[i(1)], 0.5);
        assert_eq!(bc[i(2)], 0.5);
        assert_eq!(bc[i(0)], 0.0);
        assert_eq!(bc[i(3)], 0.0);
    }

    #[test]
    fn approx_with_all_pivots_is_exact() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(
            &builders::ErdosRenyi {
                n: 60,
                p: 0.08,
                seed: 4,
            }
            .generate(),
        ));
        let exact = betweenness_centrality(&csr);
        let approx = approx_betweenness(&csr, 60);
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 1e-9);
        }
    }

    #[test]
    fn approx_ranks_correlate_with_exact() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(
            &builders::BarabasiAlbert {
                n: 150,
                m0: 6,
                m: 3,
                seed: 2,
            }
            .generate(),
        ));
        let exact = betweenness_centrality(&csr);
        let approx = approx_betweenness(&csr, 30);
        // The top-exact vertex should be near the top of the approximation.
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mut order: Vec<usize> = (0..approx.len()).collect();
        order.sort_by(|&a, &b| approx[b].partial_cmp(&approx[a]).unwrap());
        let rank = order.iter().position(|&v| v == top_exact).unwrap();
        assert!(rank < 15, "exact top vertex ranked {rank} in approximation");
    }

    #[test]
    fn closeness_on_path() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::path(4)));
        let cc = closeness_centrality(&csr);
        // Vertex 0 reaches 1, 2, 3 at distances 1, 2, 3.
        assert!((cc[0] - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        // Last vertex reaches nothing.
        assert_eq!(cc[3], 0.0);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrSnapshot::from_graph(&EvolvingGraph::new());
        assert!(betweenness_centrality(&csr).is_empty());
        assert!(closeness_centrality(&csr).is_empty());
        assert!(approx_betweenness(&csr, 5).is_empty());
    }
}

//! Breadth-first traversals over snapshots.

use std::collections::VecDeque;

use gt_graph::CsrSnapshot;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances (in hops) from `source` over out-edges.
///
/// Returns one entry per dense index; unreachable vertices hold
/// [`UNREACHABLE`].
pub fn bfs_distances(csr: &CsrSnapshot, source: u32) -> Vec<u32> {
    bfs_distances_impl(csr, source, false)
}

/// BFS distances ignoring edge direction (treats the graph as undirected).
pub fn bfs_distances_undirected(csr: &CsrSnapshot, source: u32) -> Vec<u32> {
    bfs_distances_impl(csr, source, true)
}

fn bfs_distances_impl(csr: &CsrSnapshot, source: u32, undirected: bool) -> Vec<u32> {
    let n = csr.vertex_count();
    let mut dist = vec![UNREACHABLE; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = VecDeque::with_capacity(n.min(1024));
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        let mut visit = |v: u32| {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        };
        for &v in csr.out_neighbors(u) {
            visit(v);
        }
        if undirected {
            for &v in csr.in_neighbors(u) {
                visit(v);
            }
        }
    }
    dist
}

/// BFS parents from `source` over out-edges: `parent[v]` is the vertex that
/// discovered `v` (`None` for the source and unreachable vertices). This is
/// the BFS spanning tree.
pub fn bfs_parents(csr: &CsrSnapshot, source: u32) -> Vec<Option<u32>> {
    let n = csr.vertex_count();
    let mut parent: Vec<Option<u32>> = vec![None; n];
    let mut seen = vec![false; n];
    if (source as usize) >= n {
        return parent;
    }
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in csr.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// The number of vertices reachable from `source` (including itself).
pub fn reachable_count(csr: &CsrSnapshot, source: u32) -> usize {
    bfs_distances(csr, source)
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::builders;

    fn csr_of(stream: &gt_core::GraphStream) -> CsrSnapshot {
        CsrSnapshot::from_graph(&builders::materialize(stream))
    }

    #[test]
    fn path_distances() {
        let csr = csr_of(&builders::path(5));
        let dist = bfs_distances(&csr, 0);
        assert_eq!(dist, [0, 1, 2, 3, 4]);
        // Directed: nothing reaches backwards.
        let back = bfs_distances(&csr, 4);
        assert_eq!(
            back,
            [UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE, 0]
        );
        // Undirected traversal reaches everything.
        assert_eq!(bfs_distances_undirected(&csr, 4), [4, 3, 2, 1, 0]);
    }

    #[test]
    fn star_distances() {
        let csr = csr_of(&builders::star(6));
        let dist = bfs_distances(&csr, 0);
        assert_eq!(dist[0], 0);
        assert!(dist[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn parents_form_tree() {
        let csr = csr_of(&builders::grid(3, 3));
        let parent = bfs_parents(&csr, 0);
        assert_eq!(parent[0], None);
        // Every non-root reachable vertex has a parent closer to the root.
        let dist = bfs_distances(&csr, 0);
        for v in 1..9usize {
            let p = parent[v].expect("grid is fully reachable from 0") as usize;
            assert_eq!(dist[p] + 1, dist[v]);
        }
    }

    #[test]
    fn reachability_counts() {
        let csr = csr_of(&builders::path(10));
        assert_eq!(reachable_count(&csr, 0), 10);
        assert_eq!(reachable_count(&csr, 9), 1);
    }

    #[test]
    fn out_of_range_source() {
        let csr = csr_of(&builders::path(3));
        assert!(bfs_distances(&csr, 99).iter().all(|&d| d == UNREACHABLE));
        assert!(bfs_parents(&csr, 99).iter().all(Option::is_none));
    }

    #[test]
    fn empty_graph() {
        let csr = CsrSnapshot::from_graph(&gt_graph::EvolvingGraph::new());
        assert!(bfs_distances(&csr, 0).is_empty());
    }
}

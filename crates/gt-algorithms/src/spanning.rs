//! Spanning tree / forest construction (Table 1, "Routing & traversals").
//!
//! Provides a minimum spanning forest on the undirected projection
//! (Kruskal over union–find) and re-exports the BFS tree from
//! [`crate::traversal::bfs_parents`] as the unweighted variant.

use crate::components::UnionFind;
use gt_graph::CsrSnapshot;

/// An edge of the spanning forest, as dense indices with its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestEdge {
    /// One endpoint.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
    /// The weight used for selection.
    pub weight: f64,
}

/// The minimum spanning forest of the undirected projection.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningForest {
    /// Selected edges; `vertex_count - component_count` of them.
    pub edges: Vec<ForestEdge>,
    /// Total weight of the forest.
    pub total_weight: f64,
    /// Number of connected components spanned.
    pub components: usize,
}

/// Kruskal's algorithm on the undirected projection. Where both directions
/// of an edge exist with different weights, the lighter one wins.
pub fn minimum_spanning_forest(csr: &CsrSnapshot) -> SpanningForest {
    let n = csr.vertex_count();
    // Collect undirected edges with minimal weight per unordered pair.
    use std::collections::HashMap;
    let mut best: HashMap<(u32, u32), f64> = HashMap::new();
    for u in csr.indices() {
        for (&v, &w) in csr.out_neighbors(u).iter().zip(csr.out_weights(u)) {
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            best.entry(key)
                .and_modify(|cur| {
                    if w < *cur {
                        *cur = w;
                    }
                })
                .or_insert(w);
        }
    }
    let mut candidates: Vec<ForestEdge> = best
        .into_iter()
        .map(|((a, b), weight)| ForestEdge { a, b, weight })
        .collect();
    candidates.sort_by(|x, y| {
        x.weight
            .partial_cmp(&y.weight)
            .expect("weights are finite")
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });

    let mut uf = UnionFind::new(n);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut total_weight = 0.0;
    for e in candidates {
        if uf.union(e.a, e.b) {
            total_weight += e.weight;
            edges.push(e);
        }
    }
    SpanningForest {
        edges,
        total_weight,
        components: uf.component_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_graph::{builders, EvolvingGraph};

    fn weighted(edges: &[(u64, u64, f64)], n: u64) -> CsrSnapshot {
        let mut g = EvolvingGraph::new();
        for id in 0..n {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for &(s, d, w) in edges {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::weight(w),
            })
            .unwrap();
        }
        CsrSnapshot::from_graph(&g)
    }

    #[test]
    fn mst_of_weighted_square() {
        // Square 0-1-2-3 with one heavy diagonal; MST picks the 3 lightest.
        let csr = weighted(
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 0, 4.0),
                (0, 2, 10.0),
            ],
            4,
        );
        let forest = minimum_spanning_forest(&csr);
        assert_eq!(forest.edges.len(), 3);
        assert_eq!(forest.total_weight, 6.0);
        assert_eq!(forest.components, 1);
    }

    #[test]
    fn forest_spans_each_component() {
        let csr = weighted(&[(0, 1, 1.0), (2, 3, 1.0)], 5);
        let forest = minimum_spanning_forest(&csr);
        assert_eq!(forest.edges.len(), 2);
        // Components: {0,1}, {2,3}, {4}.
        assert_eq!(forest.components, 3);
    }

    #[test]
    fn parallel_directions_use_lighter_weight() {
        let csr = weighted(&[(0, 1, 5.0), (1, 0, 1.0)], 2);
        let forest = minimum_spanning_forest(&csr);
        assert_eq!(forest.edges.len(), 1);
        assert_eq!(forest.total_weight, 1.0);
    }

    #[test]
    fn tree_has_no_cycles_by_construction() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::complete(8)));
        let forest = minimum_spanning_forest(&csr);
        assert_eq!(forest.edges.len(), 7);
        // All weights default to 1.0.
        assert_eq!(forest.total_weight, 7.0);
    }

    #[test]
    fn empty_graph() {
        let forest = minimum_spanning_forest(&CsrSnapshot::from_graph(&EvolvingGraph::new()));
        assert!(forest.edges.is_empty());
        assert_eq!(forest.components, 0);
    }
}

//! Community detection (Table 1, "Communities"): synchronous label
//! propagation, and k-means over degree features as the paper's "k-means"
//! entry (evolving graphs rarely carry coordinates, so the canonical
//! feature space is structural).

use gt_graph::CsrSnapshot;

/// Result of label propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communities {
    /// Community label per dense index.
    pub labels: Vec<u32>,
    /// Number of distinct communities.
    pub count: usize,
    /// Sweeps executed until convergence or cap.
    pub iterations: usize,
}

/// Synchronous label propagation on the undirected projection with
/// deterministic tie-breaking (smallest label wins), capped at
/// `max_iterations` sweeps.
pub fn label_propagation(csr: &CsrSnapshot, max_iterations: usize) -> Communities {
    let n = csr.vertex_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in csr.indices() {
        for &v in csr.out_neighbors(u) {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut iterations = 0;
    let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        let mut next = labels.clone();
        for v in 0..n {
            if adj[v].is_empty() {
                continue;
            }
            counts.clear();
            for &w in &adj[v] {
                *counts.entry(labels[w as usize]).or_insert(0) += 1;
            }
            // Most frequent neighbor label; ties -> smallest label
            // (BTreeMap iterates ascending, so `>` keeps the first max).
            let mut best_label = labels[v];
            let mut best_count = 0usize;
            for (&label, &count) in &counts {
                if count > best_count {
                    best_count = count;
                    best_label = label;
                }
            }
            if best_label != labels[v] {
                next[v] = best_label;
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }

    let distinct: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
    Communities {
        count: distinct.len(),
        labels,
        iterations,
    }
}

/// k-means over per-vertex structural features `(in_degree, out_degree)`,
/// deterministic via farthest-point ("k-means++ without randomness")
/// seeding. Returns cluster assignment per dense index.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster id per dense index.
    pub assignment: Vec<u32>,
    /// Final centroids `(in_degree, out_degree)`.
    pub centroids: Vec<(f64, f64)>,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs Lloyd's algorithm on degree features.
///
/// # Panics
/// If `k == 0`.
pub fn kmeans_degree_features(csr: &CsrSnapshot, k: usize, max_iterations: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    let n = csr.vertex_count();
    let points: Vec<(f64, f64)> = csr
        .indices()
        .map(|v| (csr.in_degree(v) as f64, csr.out_degree(v) as f64))
        .collect();
    if n == 0 {
        return KMeansResult {
            assignment: Vec::new(),
            centroids: Vec::new(),
            iterations: 0,
        };
    }
    let k = k.min(n);

    // Farthest-point seeding from the first point.
    let mut centroids: Vec<(f64, f64)> = vec![points[0]];
    while centroids.len() < k {
        let far = points
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let da = nearest_dist2(a, &centroids);
                let db = nearest_dist2(b, &centroids);
                da.partial_cmp(&db).expect("finite")
            })
            .map(|(i, _)| points[i])
            .expect("non-empty");
        centroids.push(far);
    }

    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| dist2(p, a).partial_cmp(&dist2(p, b)).expect("finite"))
                .map(|(ci, _)| ci as u32)
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); centroids.len()];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[assignment[i] as usize];
            s.0 += p.0;
            s.1 += p.1;
            s.2 += 1;
        }
        for (c, s) in centroids.iter_mut().zip(&sums) {
            if s.2 > 0 {
                *c = (s.0 / s.2 as f64, s.1 / s.2 as f64);
            }
        }
        if !changed {
            break;
        }
    }

    KMeansResult {
        assignment,
        centroids,
        iterations,
    }
}

fn dist2(a: &(f64, f64), b: &(f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

fn nearest_dist2(p: &(f64, f64), centroids: &[(f64, f64)]) -> f64 {
    centroids
        .iter()
        .map(|c| dist2(p, c))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_graph::{builders, EvolvingGraph};

    /// Two dense cliques joined by a single bridge edge.
    fn two_cliques() -> CsrSnapshot {
        let mut g = EvolvingGraph::new();
        for id in 0..10u64 {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for group in [0u64..5, 5..10] {
            for s in group.clone() {
                for d in group.clone() {
                    if s != d {
                        g.apply(&GraphEvent::AddEdge {
                            id: EdgeId::from((s, d)),
                            state: State::empty(),
                        })
                        .unwrap();
                    }
                }
            }
        }
        g.apply(&GraphEvent::AddEdge {
            id: EdgeId::from((4, 5)),
            state: State::empty(),
        })
        .unwrap();
        CsrSnapshot::from_graph(&g)
    }

    #[test]
    fn label_propagation_separates_cliques() {
        let csr = two_cliques();
        let result = label_propagation(&csr, 50);
        // Each clique converges to a uniform internal label.
        let first: Vec<u32> = (0..5).map(|i| result.labels[i]).collect();
        let second: Vec<u32> = (5..10).map(|i| result.labels[i]).collect();
        assert!(first.windows(2).all(|w| w[0] == w[1]), "{first:?}");
        assert!(second.windows(2).all(|w| w[0] == w[1]), "{second:?}");
        assert!(result.count <= 2);
    }

    #[test]
    fn label_propagation_is_deterministic() {
        let csr = two_cliques();
        assert_eq!(label_propagation(&csr, 50), label_propagation(&csr, 50));
    }

    #[test]
    fn isolated_vertices_keep_their_labels() {
        use gt_core::prelude::*;
        let stream: gt_core::GraphStream = (0..3u64)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        let csr = CsrSnapshot::from_graph(&builders::materialize(&stream));
        let result = label_propagation(&csr, 10);
        assert_eq!(result.labels, [0, 1, 2]);
        assert_eq!(result.count, 3);
    }

    #[test]
    fn kmeans_splits_hub_from_leaves() {
        // Star: center has out-degree n-1, leaves have in-degree 1.
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::star(30)));
        let result = kmeans_degree_features(&csr, 2, 50);
        let center = csr.index_of(VertexId(0)).unwrap() as usize;
        let center_cluster = result.assignment[center];
        let leaves_in_center_cluster = result
            .assignment
            .iter()
            .enumerate()
            .filter(|&(i, &c)| i != center && c == center_cluster)
            .count();
        assert_eq!(leaves_in_center_cluster, 0);
    }

    #[test]
    fn kmeans_k_capped_at_n() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::path(3)));
        let result = kmeans_degree_features(&csr, 10, 10);
        assert!(result.centroids.len() <= 3);
        assert_eq!(result.assignment.len(), 3);
    }

    #[test]
    fn kmeans_empty_graph() {
        let csr = CsrSnapshot::from_graph(&EvolvingGraph::new());
        let result = kmeans_degree_features(&csr, 3, 10);
        assert!(result.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn kmeans_zero_k_panics() {
        let csr = CsrSnapshot::from_graph(&EvolvingGraph::new());
        kmeans_degree_features(&csr, 0, 10);
    }
}

//! Strongly connected components (Tarjan's algorithm, iterative).
//!
//! Directed connectivity complements the weakly-connected view: §3.2
//! names connectivity among the structural graph properties whose
//! evolution the framework tracks, and SCC condensation distinguishes
//! e.g. mutual-follow cores in social graphs from one-way periphery.

use gt_graph::CsrSnapshot;

/// The SCC labeling of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccResult {
    /// Component label per dense index; labels are ordered by completion
    /// (reverse topological order of the condensation).
    pub labels: Vec<u32>,
    /// Number of strongly connected components.
    pub count: usize,
}

impl SccResult {
    /// Whether two dense indices are strongly connected.
    pub fn same_component(&self, a: u32, b: u32) -> bool {
        self.labels[a as usize] == self.labels[b as usize]
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        let mut sizes = std::collections::HashMap::new();
        for &l in &self.labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        sizes.values().copied().max().unwrap_or(0)
    }
}

/// Iterative Tarjan SCC (explicit stack; safe on deep graphs).
pub fn strongly_connected_components(csr: &CsrSnapshot) -> SccResult {
    let n = csr.vertex_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut component = 0u32;

    // Call stack frames: (vertex, next out-edge offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            let out = csr.out_neighbors(v);
            if frame.1 < out.len() {
                let w = out[frame.1];
                frame.1 += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0 as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop it off the stack.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        labels[w as usize] = component;
                        if w == v {
                            break;
                        }
                    }
                    component += 1;
                }
            }
        }
    }

    SccResult {
        labels,
        count: component as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_graph::{builders, EvolvingGraph};

    fn graph_of(edges: &[(u64, u64)], n: u64) -> CsrSnapshot {
        let mut g = EvolvingGraph::new();
        for id in 0..n {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for &(s, d) in edges {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::empty(),
            })
            .unwrap();
        }
        CsrSnapshot::from_graph(&g)
    }

    #[test]
    fn path_is_all_singletons() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::path(5)));
        let scc = strongly_connected_components(&csr);
        assert_eq!(scc.count, 5);
        assert_eq!(scc.largest(), 1);
    }

    #[test]
    fn ring_is_one_component() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::ring(6)));
        let scc = strongly_connected_components(&csr);
        assert_eq!(scc.count, 1);
        assert_eq!(scc.largest(), 6);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // Cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3 (one-way).
        let csr = graph_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)], 5);
        let scc = strongly_connected_components(&csr);
        assert_eq!(scc.count, 2);
        let i = |v: u64| csr.index_of(VertexId(v)).unwrap();
        assert!(scc.same_component(i(0), i(2)));
        assert!(scc.same_component(i(3), i(4)));
        assert!(!scc.same_component(i(0), i(3)));
    }

    #[test]
    fn mutual_edges_merge() {
        let csr = graph_of(&[(0, 1), (1, 0), (1, 2)], 3);
        let scc = strongly_connected_components(&csr);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.largest(), 2);
    }

    #[test]
    fn scc_count_at_least_wcc_count() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(
            &builders::ErdosRenyi {
                n: 120,
                p: 0.02,
                seed: 8,
            }
            .generate(),
        ));
        let scc = strongly_connected_components(&csr);
        let wcc = crate::components::weakly_connected_components(&csr);
        assert!(
            scc.count >= wcc.count,
            "scc {} < wcc {}",
            scc.count,
            wcc.count
        );
        // Strongly connected pairs must be weakly connected.
        for a in csr.indices() {
            for b in csr.indices() {
                if scc.same_component(a, b) {
                    assert!(wcc.same_component(a, b));
                }
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 50k-vertex path: a recursive Tarjan would blow the stack.
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::path(50_000)));
        let scc = strongly_connected_components(&csr);
        assert_eq!(scc.count, 50_000);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrSnapshot::from_graph(&EvolvingGraph::new());
        let scc = strongly_connected_components(&csr);
        assert_eq!(scc.count, 0);
    }
}

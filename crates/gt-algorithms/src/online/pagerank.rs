//! Online PageRank — the paper's running example of a *converging
//! computation* on an evolving graph (§4.4.2, and the "online influence
//! rank" of the Chronograph experiment, §5.3.2).
//!
//! The computation maintains a rank vector and amortizes warm-started power
//! iteration over event ingestion: every event deposits `sweep_rate` units
//! of work, and whenever a whole unit accumulates, one full sweep runs over
//! the *current* graph from the current vector. Query at any time and you
//! get an approximation whose accuracy reflects how much computation has
//! kept up with how much change — exactly the latency/accuracy trade-off
//! the framework measures.

use std::collections::BTreeMap;

use gt_core::prelude::*;

use crate::OnlineComputation;

/// Tuning for [`OnlinePageRank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePageRankConfig {
    /// Damping factor.
    pub damping: f64,
    /// Sweeps of power iteration deposited per ingested event. `0.01`
    /// means one full sweep every 100 events.
    pub sweep_rate: f64,
}

impl Default for OnlinePageRankConfig {
    fn default() -> Self {
        OnlinePageRankConfig {
            damping: 0.85,
            sweep_rate: 0.02,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Node {
    rank: f64,
    out: Vec<VertexId>,
}

/// Incremental, approximate PageRank over an evolving graph.
#[derive(Debug, Clone)]
pub struct OnlinePageRank {
    config: OnlinePageRankConfig,
    nodes: BTreeMap<VertexId, Node>,
    pending_work: f64,
    sweeps_run: u64,
}

impl OnlinePageRank {
    /// Creates an empty computation.
    pub fn new(config: OnlinePageRankConfig) -> Self {
        OnlinePageRank {
            config,
            nodes: BTreeMap::new(),
            pending_work: 0.0,
            sweeps_run: 0,
        }
    }

    /// Total full sweeps executed so far.
    pub fn sweeps_run(&self) -> u64 {
        self.sweeps_run
    }

    /// Runs `k` full sweeps immediately (e.g. to let the computation catch
    /// up after the stream ends, as in the paper's Figure 3d tail).
    pub fn run_sweeps(&mut self, k: usize) {
        for _ in 0..k {
            self.sweep();
        }
    }

    /// The rank of one vertex, if it exists.
    pub fn rank_of(&self, id: VertexId) -> Option<f64> {
        self.nodes.get(&id).map(|n| n.rank)
    }

    /// The `k` highest-ranked vertex ids, descending, ties by id.
    pub fn top_k(&self, k: usize) -> Vec<VertexId> {
        let mut order: Vec<(VertexId, f64)> =
            self.nodes.iter().map(|(id, n)| (*id, n.rank)).collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        order.truncate(k);
        order.into_iter().map(|(id, _)| id).collect()
    }

    /// One synchronous power-iteration sweep over the current graph.
    fn sweep(&mut self) {
        let n = self.nodes.len();
        if n == 0 {
            return;
        }
        let n_f = n as f64;
        let d = self.config.damping;

        let mut next: BTreeMap<VertexId, f64> = BTreeMap::new();
        let mut dangling_mass = 0.0;
        for node in self.nodes.values() {
            if node.out.is_empty() {
                dangling_mass += node.rank;
            } else {
                let per_edge = node.rank / node.out.len() as f64;
                for dst in &node.out {
                    *next.entry(*dst).or_insert(0.0) += per_edge;
                }
            }
        }
        let teleport = (1.0 - d) / n_f + d * dangling_mass / n_f;
        for (id, node) in &mut self.nodes {
            node.rank = teleport + d * next.get(id).copied().unwrap_or(0.0);
        }
        self.sweeps_run += 1;
    }

    fn deposit_work(&mut self) {
        self.pending_work += self.config.sweep_rate;
        while self.pending_work >= 1.0 {
            self.pending_work -= 1.0;
            self.sweep();
        }
    }
}

impl OnlineComputation for OnlinePageRank {
    /// Rank per live vertex.
    type Result = BTreeMap<VertexId, f64>;

    fn apply_event(&mut self, event: &GraphEvent) {
        match event {
            GraphEvent::AddVertex { id, .. } => {
                if !self.nodes.contains_key(id) {
                    // New vertices join with the uniform share; the next
                    // sweeps re-normalize the vector.
                    let initial = 1.0 / (self.nodes.len() as f64 + 1.0);
                    self.nodes.insert(
                        *id,
                        Node {
                            rank: initial,
                            out: Vec::new(),
                        },
                    );
                }
            }
            GraphEvent::RemoveVertex { id } => {
                if self.nodes.remove(id).is_some() {
                    for node in self.nodes.values_mut() {
                        node.out.retain(|v| v != id);
                    }
                }
            }
            GraphEvent::AddEdge { id, .. } => {
                if id.is_self_loop() || !self.nodes.contains_key(&id.dst) {
                    return;
                }
                if let Some(src) = self.nodes.get_mut(&id.src) {
                    if !src.out.contains(&id.dst) {
                        src.out.push(id.dst);
                    }
                }
            }
            GraphEvent::RemoveEdge { id } => {
                if let Some(src) = self.nodes.get_mut(&id.src) {
                    src.out.retain(|v| *v != id.dst);
                }
            }
            GraphEvent::UpdateVertex { .. } | GraphEvent::UpdateEdge { .. } => {}
        }
        self.deposit_work();
    }

    fn result(&self) -> BTreeMap<VertexId, f64> {
        self.nodes.iter().map(|(id, n)| (*id, n.rank)).collect()
    }

    fn name(&self) -> &'static str {
        "online-pagerank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank, PageRankConfig};
    use gt_graph::{builders, CsrSnapshot, EvolvingGraph};

    /// Feeds a stream into both the online computation and a shadow graph.
    fn feed(stream: &GraphStream, config: OnlinePageRankConfig) -> (OnlinePageRank, EvolvingGraph) {
        let mut online = OnlinePageRank::new(config);
        let mut graph = EvolvingGraph::new();
        for event in stream.graph_events() {
            online.apply_event(event);
            graph.apply(event).unwrap();
        }
        (online, graph)
    }

    fn l1_error(online: &OnlinePageRank, graph: &EvolvingGraph) -> f64 {
        let csr = CsrSnapshot::from_graph(graph);
        let exact = pagerank(&csr, &PageRankConfig::default());
        online
            .result()
            .iter()
            .map(|(id, r)| {
                let idx = csr.index_of(*id).expect("same vertex set");
                (r - exact.ranks[idx as usize]).abs()
            })
            .sum()
    }

    #[test]
    fn converges_to_batch_after_quiescence() {
        let stream = builders::BarabasiAlbert {
            n: 150,
            m0: 6,
            m: 3,
            seed: 9,
        }
        .generate();
        let (mut online, graph) = feed(&stream, OnlinePageRankConfig::default());
        // Let the computation catch up once the stream is quiescent.
        online.run_sweeps(100);
        let err = l1_error(&online, &graph);
        assert!(err < 1e-6, "L1 error after catch-up: {err}");
    }

    #[test]
    fn accuracy_improves_with_sweep_rate() {
        let stream = builders::BarabasiAlbert {
            n: 200,
            m0: 6,
            m: 3,
            seed: 3,
        }
        .generate();
        let (lazy, graph) = feed(
            &stream,
            OnlinePageRankConfig {
                sweep_rate: 0.001,
                ..Default::default()
            },
        );
        let (eager, _) = feed(
            &stream,
            OnlinePageRankConfig {
                sweep_rate: 0.2,
                ..Default::default()
            },
        );
        let lazy_err = l1_error(&lazy, &graph);
        let eager_err = l1_error(&eager, &graph);
        assert!(
            eager_err < lazy_err,
            "eager {eager_err} should beat lazy {lazy_err}"
        );
    }

    #[test]
    fn tolerates_hostile_events() {
        let mut online = OnlinePageRank::new(OnlinePageRankConfig::default());
        online.apply_event(&GraphEvent::AddEdge {
            id: EdgeId::from((1, 2)),
            state: State::empty(),
        });
        online.apply_event(&GraphEvent::RemoveVertex { id: VertexId(5) });
        online.apply_event(&GraphEvent::AddVertex {
            id: VertexId(1),
            state: State::empty(),
        });
        online.apply_event(&GraphEvent::AddEdge {
            id: EdgeId::from((1, 1)),
            state: State::empty(),
        });
        assert_eq!(online.result().len(), 1);
    }

    #[test]
    fn removal_keeps_vector_well_formed() {
        let stream = builders::ring(20);
        let (mut online, _) = feed(&stream, OnlinePageRankConfig::default());
        for id in 0..10u64 {
            online.apply_event(&GraphEvent::RemoveVertex { id: VertexId(id) });
        }
        online.run_sweeps(150);
        let sum: f64 = online.result().values().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rank mass {sum}");
        assert_eq!(online.result().len(), 10);
    }

    #[test]
    fn top_k_identifies_hub() {
        // Spokes point at vertex 0.
        let mut online = OnlinePageRank::new(OnlinePageRankConfig::default());
        for id in 0..20u64 {
            online.apply_event(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            });
        }
        for id in 1..20u64 {
            online.apply_event(&GraphEvent::AddEdge {
                id: EdgeId::from((id, 0)),
                state: State::empty(),
            });
        }
        online.run_sweeps(30);
        assert_eq!(online.top_k(1), [VertexId(0)]);
    }

    #[test]
    fn sweep_counter_advances_with_rate() {
        let config = OnlinePageRankConfig {
            sweep_rate: 0.5,
            ..Default::default()
        };
        let mut online = OnlinePageRank::new(config);
        for id in 0..10u64 {
            online.apply_event(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            });
        }
        assert_eq!(online.sweeps_run(), 5);
    }
}

//! A structural-property timeline over the stream — the data source for
//! Table 1's "trend analyses on graph properties" and §3.2's temporal
//! graph properties (growth, churn, densification).
//!
//! The tracker maintains cheap incremental counters and snapshots them
//! every `cadence` graph events, producing `(event_index, properties)`
//! rows that `gt-analysis::trend` fits (e.g. the densification exponent
//! of `m` over `n`).

use gt_core::prelude::*;

use crate::online::DegreeTracker;
use crate::OnlineComputation;

/// One sampled point of the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Graph events ingested when the sample was taken.
    pub events: u64,
    /// Live vertices.
    pub vertices: usize,
    /// Live directed edges.
    pub edges: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Cumulative topology-change events (adds + removes).
    pub topology_events: u64,
    /// Cumulative state-update events.
    pub update_events: u64,
}

/// Samples structural properties every `cadence` events.
#[derive(Debug, Clone)]
pub struct PropertyTimeline {
    degrees: DegreeTracker,
    cadence: u64,
    events: u64,
    topology_events: u64,
    update_events: u64,
    points: Vec<TimelinePoint>,
}

impl PropertyTimeline {
    /// A timeline sampling every `cadence` graph events.
    ///
    /// # Panics
    /// If `cadence` is zero.
    pub fn new(cadence: u64) -> Self {
        assert!(cadence > 0, "cadence must be positive");
        PropertyTimeline {
            degrees: DegreeTracker::new(),
            cadence,
            events: 0,
            topology_events: 0,
            update_events: 0,
            points: Vec::new(),
        }
    }

    /// The sampled points so far.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// Forces a sample at the current position (e.g. at stream end).
    pub fn sample_now(&mut self) {
        let snapshot = self.degrees.result();
        self.points.push(TimelinePoint {
            events: self.events,
            vertices: snapshot.vertices,
            edges: snapshot.edges,
            mean_degree: snapshot.mean_degree,
            max_degree: snapshot.max_degree,
            topology_events: self.topology_events,
            update_events: self.update_events,
        });
    }

    /// `(n, m)` pairs for densification-law fitting.
    pub fn growth_samples(&self) -> Vec<(usize, usize)> {
        self.points.iter().map(|p| (p.vertices, p.edges)).collect()
    }

    /// `(event_index, value)` series for one extracted property.
    pub fn series(&self, f: impl Fn(&TimelinePoint) -> f64) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.events as f64, f(p)))
            .collect()
    }
}

impl OnlineComputation for PropertyTimeline {
    type Result = Vec<TimelinePoint>;

    fn apply_event(&mut self, event: &GraphEvent) {
        self.degrees.apply_event(event);
        self.events += 1;
        if event.is_topology_change() {
            self.topology_events += 1;
        } else {
            self.update_events += 1;
        }
        if self.events % self.cadence == 0 {
            self.sample_now();
        }
    }

    fn result(&self) -> Vec<TimelinePoint> {
        self.points.clone()
    }

    fn name(&self) -> &'static str {
        "property-timeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn ev_add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    #[test]
    fn samples_on_cadence() {
        let mut timeline = PropertyTimeline::new(10);
        for i in 0..35 {
            timeline.apply_event(&ev_add_v(i));
        }
        assert_eq!(timeline.points().len(), 3);
        assert_eq!(timeline.points()[0].events, 10);
        assert_eq!(timeline.points()[0].vertices, 10);
        assert_eq!(timeline.points()[2].events, 30);
        timeline.sample_now();
        assert_eq!(timeline.points()[3].events, 35);
    }

    #[test]
    fn classifies_topology_vs_updates() {
        let mut timeline = PropertyTimeline::new(100);
        timeline.apply_event(&ev_add_v(0));
        timeline.apply_event(&GraphEvent::UpdateVertex {
            id: VertexId(0),
            state: State::new("x"),
        });
        timeline.sample_now();
        let p = &timeline.points()[0];
        assert_eq!(p.topology_events, 1);
        assert_eq!(p.update_events, 1);
    }

    #[test]
    fn densification_trend_from_growing_graph() {
        // Superlinear edge growth: after vertex k, connect it to all
        // previous vertices (m ~ n^2).
        let mut timeline = PropertyTimeline::new(50);
        let mut next = 0u64;
        for k in 0..60u64 {
            timeline.apply_event(&ev_add_v(k));
            next += 1;
            for j in 0..k {
                timeline.apply_event(&ev_add_e(k, j));
                next += 1;
            }
        }
        let _ = next;
        timeline.sample_now();
        let a = gt_analysis_densification(&timeline.growth_samples());
        assert!(a > 1.5, "densification exponent {a}");
    }

    /// Inline copy of the log-log slope fit (gt-algorithms does not
    /// depend on gt-analysis; the real pipeline does this in analysis).
    fn gt_analysis_densification(samples: &[(usize, usize)]) -> f64 {
        let pts: Vec<(f64, f64)> = samples
            .iter()
            .filter(|&&(n, m)| n > 1 && m > 0)
            .map(|&(n, m)| ((n as f64).ln(), (m as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let mt = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let mv = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pts.iter().map(|p| (p.0 - mt) * (p.1 - mv)).sum();
        let var: f64 = pts.iter().map(|p| (p.0 - mt).powi(2)).sum();
        cov / var
    }

    #[test]
    fn series_extraction() {
        let mut timeline = PropertyTimeline::new(5);
        for i in 0..10 {
            timeline.apply_event(&ev_add_v(i));
        }
        let series = timeline.series(|p| p.vertices as f64);
        assert_eq!(series, [(5.0, 5.0), (10.0, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_panics() {
        PropertyTimeline::new(0);
    }
}

//! Online sampling (Table 1, "Temporal analyses"): a classic reservoir
//! sampler over the event stream. Useful for unbiased workload
//! characterization while streaming — e.g. estimating the event mix of an
//! unbounded stream in constant memory.

use gt_core::prelude::*;
use rand_like::SplitMix64;

use crate::OnlineComputation;

/// A tiny deterministic PRNG (SplitMix64) so the sampler has no external
/// dependencies and stays reproducible under a seed.
mod rand_like {
    /// SplitMix64: the standard 64-bit mixing generator.
    #[derive(Debug, Clone)]
    pub struct SplitMix64(u64);

    impl SplitMix64 {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SplitMix64(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (bound > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Reservoir sampling (Algorithm R) over graph events.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: u64,
    reservoir: Vec<GraphEvent>,
    rng: SplitMix64,
}

impl ReservoirSampler {
    /// A sampler holding at most `capacity` events.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReservoirSampler {
            capacity,
            seen: 0,
            reservoir: Vec::with_capacity(capacity),
            rng: SplitMix64::new(seed),
        }
    }

    /// Events observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn sample(&self) -> &[GraphEvent] {
        &self.reservoir
    }

    /// Estimated fraction of sampled events matching a predicate.
    pub fn estimate_fraction(&self, pred: impl Fn(&GraphEvent) -> bool) -> f64 {
        if self.reservoir.is_empty() {
            return 0.0;
        }
        self.reservoir.iter().filter(|e| pred(e)).count() as f64 / self.reservoir.len() as f64
    }
}

impl OnlineComputation for ReservoirSampler {
    /// The sampled events.
    type Result = Vec<GraphEvent>;

    fn apply_event(&mut self, event: &GraphEvent) {
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(event.clone());
        } else {
            let j = self.rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = event.clone();
            }
        }
    }

    fn result(&self) -> Vec<GraphEvent> {
        self.reservoir.clone()
    }

    fn name(&self) -> &'static str {
        "reservoir-sampler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    #[test]
    fn fills_then_stays_at_capacity() {
        let mut s = ReservoirSampler::new(10, 1);
        for i in 0..5 {
            s.apply_event(&ev(i));
        }
        assert_eq!(s.sample().len(), 5);
        for i in 5..100 {
            s.apply_event(&ev(i));
        }
        assert_eq!(s.sample().len(), 10);
        assert_eq!(s.seen(), 100);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = ReservoirSampler::new(5, seed);
            for i in 0..200 {
                s.apply_event(&ev(i));
            }
            s.result()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each of 1000 events should land in a 100-slot reservoir with
        // p = 0.1; count how often event #500 survives across seeds.
        let mut hits = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut s = ReservoirSampler::new(100, seed);
            for i in 0..1000 {
                s.apply_event(&ev(i));
            }
            if s.sample().iter().any(|e| e.vertex() == Some(VertexId(500))) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((0.05..0.16).contains(&frac), "survival fraction {frac}");
    }

    #[test]
    fn estimate_fraction_of_event_kinds() {
        let mut s = ReservoirSampler::new(200, 3);
        for i in 0..1000u64 {
            if i % 4 == 0 {
                s.apply_event(&GraphEvent::RemoveVertex { id: VertexId(i) });
            } else {
                s.apply_event(&ev(i));
            }
        }
        let frac = s.estimate_fraction(|e| matches!(e, GraphEvent::RemoveVertex { .. }));
        assert!((frac - 0.25).abs() < 0.1, "estimated {frac}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        ReservoirSampler::new(0, 0);
    }
}

//! Online degree statistics (Table 1, "Graph statistics").

use std::collections::{BTreeMap, HashMap, HashSet};

use gt_core::prelude::*;

use crate::OnlineComputation;

/// A point-in-time view of the degree statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSnapshot {
    /// Live vertices.
    pub vertices: usize,
    /// Live directed edges.
    pub edges: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Histogram `total degree -> vertex count`.
    pub histogram: BTreeMap<usize, usize>,
}

/// Maintains vertex/edge counts and the total-degree histogram under the
/// full six-operation event model. Events that reference unknown entities
/// are ignored (lenient semantics), so the tracker is safe on faulty
/// streams.
#[derive(Debug, Clone, Default)]
pub struct DegreeTracker {
    out: HashMap<VertexId, HashSet<VertexId>>,
    inc: HashMap<VertexId, HashSet<VertexId>>,
    histogram: BTreeMap<usize, usize>,
    edges: usize,
}

impl DegreeTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.out.get(&v).map_or(0, HashSet::len) + self.inc.get(&v).map_or(0, HashSet::len)
    }

    fn histogram_move(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        if let Some(c) = self.histogram.get_mut(&from) {
            *c -= 1;
            if *c == 0 {
                self.histogram.remove(&from);
            }
        }
        *self.histogram.entry(to).or_insert(0) += 1;
    }

    fn add_edge(&mut self, e: EdgeId) {
        if e.is_self_loop() || !self.out.contains_key(&e.src) || !self.out.contains_key(&e.dst) {
            return;
        }
        let src_deg = self.degree(e.src);
        if !self.out.get_mut(&e.src).expect("checked").insert(e.dst) {
            return; // duplicate
        }
        self.histogram_move(src_deg, src_deg + 1);
        let dst_deg = self.degree(e.dst);
        self.inc.get_mut(&e.dst).expect("checked").insert(e.src);
        self.histogram_move(dst_deg, dst_deg + 1);
        self.edges += 1;
    }

    fn remove_edge(&mut self, e: EdgeId) {
        let exists = self.out.get(&e.src).is_some_and(|s| s.contains(&e.dst));
        if !exists {
            return;
        }
        let src_deg = self.degree(e.src);
        self.out.get_mut(&e.src).expect("exists").remove(&e.dst);
        self.histogram_move(src_deg, src_deg - 1);
        let dst_deg = self.degree(e.dst);
        self.inc.get_mut(&e.dst).expect("exists").remove(&e.src);
        self.histogram_move(dst_deg, dst_deg - 1);
        self.edges -= 1;
    }
}

impl OnlineComputation for DegreeTracker {
    type Result = DegreeSnapshot;

    fn apply_event(&mut self, event: &GraphEvent) {
        match event {
            GraphEvent::AddVertex { id, .. } => {
                if !self.out.contains_key(id) {
                    self.out.insert(*id, HashSet::new());
                    self.inc.insert(*id, HashSet::new());
                    *self.histogram.entry(0).or_insert(0) += 1;
                }
            }
            GraphEvent::RemoveVertex { id } => {
                if !self.out.contains_key(id) {
                    return;
                }
                let out: Vec<VertexId> = self
                    .out
                    .get(id)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                let inc: Vec<VertexId> = self
                    .inc
                    .get(id)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                for dst in out {
                    self.remove_edge(EdgeId::new(*id, dst));
                }
                for src in inc {
                    self.remove_edge(EdgeId::new(src, *id));
                }
                self.out.remove(id);
                self.inc.remove(id);
                self.histogram_move(0, usize::MAX);
                self.histogram.remove(&usize::MAX);
            }
            GraphEvent::AddEdge { id, .. } => self.add_edge(*id),
            GraphEvent::RemoveEdge { id } => self.remove_edge(*id),
            GraphEvent::UpdateVertex { .. } | GraphEvent::UpdateEdge { .. } => {}
        }
    }

    fn result(&self) -> DegreeSnapshot {
        let vertices = self.out.len();
        let mean = if vertices == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / vertices as f64
        };
        DegreeSnapshot {
            vertices,
            edges: self.edges,
            mean_degree: mean,
            max_degree: self.histogram.keys().next_back().copied().unwrap_or(0),
            histogram: self.histogram.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "degree-stats"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::properties::DegreeDistribution;
    use gt_graph::EvolvingGraph;

    fn feed(events: &[GraphEvent]) -> (DegreeTracker, EvolvingGraph) {
        let mut tracker = DegreeTracker::new();
        let mut graph = EvolvingGraph::new();
        for e in events {
            tracker.apply_event(e);
            let _ = graph.apply_with(e, gt_graph::ApplyPolicy::Lenient);
        }
        (tracker, graph)
    }

    fn ev_add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn ev_add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    #[test]
    fn tracks_star_histogram() {
        let mut events: Vec<GraphEvent> = (0..5).map(ev_add_v).collect();
        events.extend((1..5).map(|i| ev_add_e(0, i)));
        let (tracker, graph) = feed(&events);
        let snap = tracker.result();
        assert_eq!(snap.vertices, 4 + 1);
        assert_eq!(snap.edges, 4);
        assert_eq!(snap.max_degree, 4);
        let reference = DegreeDistribution::total(&graph);
        for (d, c) in reference.iter() {
            assert_eq!(
                snap.histogram.get(&d).copied().unwrap_or(0),
                c,
                "degree {d}"
            );
        }
    }

    #[test]
    fn removal_updates_histogram() {
        let mut events: Vec<GraphEvent> = (0..4).map(ev_add_v).collect();
        events.push(ev_add_e(0, 1));
        events.push(ev_add_e(1, 2));
        events.push(GraphEvent::RemoveVertex { id: VertexId(1) });
        let (tracker, graph) = feed(&events);
        let snap = tracker.result();
        assert_eq!(snap.vertices, 3);
        assert_eq!(snap.edges, 0);
        assert_eq!(snap.max_degree, 0);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn ignores_invalid_events() {
        let events = vec![
            ev_add_e(0, 1),                               // vertices missing
            GraphEvent::RemoveVertex { id: VertexId(7) }, // missing
            GraphEvent::RemoveEdge {
                id: EdgeId::from((0, 1)),
            }, // missing
            ev_add_v(0),
            ev_add_v(0),    // duplicate
            ev_add_e(0, 0), // self loop
        ];
        let (tracker, _) = feed(&events);
        let snap = tracker.result();
        assert_eq!(snap.vertices, 1);
        assert_eq!(snap.edges, 0);
    }

    #[test]
    fn duplicate_edges_counted_once() {
        let events = vec![ev_add_v(0), ev_add_v(1), ev_add_e(0, 1), ev_add_e(0, 1)];
        let (tracker, _) = feed(&events);
        assert_eq!(tracker.result().edges, 1);
    }

    #[test]
    fn mean_degree() {
        let events = vec![ev_add_v(0), ev_add_v(1), ev_add_e(0, 1)];
        let (tracker, _) = feed(&events);
        // 2 vertices, 1 edge: mean total degree = 1.0.
        assert!((tracker.result().mean_degree - 1.0).abs() < 1e-12);
    }
}

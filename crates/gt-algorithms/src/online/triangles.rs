//! Exact incremental triangle counting over the undirected projection.
//!
//! Unlike the converging computations, triangle count "always yields a
//! definite result" (§4.4.2) — but computed online it may be based on a
//! stale view. This implementation is exact with respect to the events it
//! has ingested: each undirected edge insertion adds the number of common
//! neighbors, each removal subtracts it.

use std::collections::{HashMap, HashSet};

use gt_core::prelude::*;

use crate::OnlineComputation;

/// Exact, incrementally maintained triangle count.
#[derive(Debug, Clone, Default)]
pub struct StreamingTriangles {
    /// Undirected neighborhoods.
    adj: HashMap<VertexId, HashSet<VertexId>>,
    /// The directed edges ingested so far (the projection's ground truth:
    /// an undirected pair exists iff at least one direction does).
    directed: HashSet<EdgeId>,
    triangles: u64,
}

impl StreamingTriangles {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current triangle count.
    pub fn count(&self) -> u64 {
        self.triangles
    }

    fn common_neighbors(&self, a: VertexId, b: VertexId) -> u64 {
        let (Some(na), Some(nb)) = (self.adj.get(&a), self.adj.get(&b)) else {
            return 0;
        };
        let (small, large) = if na.len() <= nb.len() {
            (na, nb)
        } else {
            (nb, na)
        };
        small.iter().filter(|v| large.contains(v)).count() as u64
    }

    fn add_directed(&mut self, e: EdgeId) {
        if e.is_self_loop()
            || !self.adj.contains_key(&e.src)
            || !self.adj.contains_key(&e.dst)
            || self.directed.contains(&e)
        {
            return;
        }
        self.directed.insert(e);
        if !self.directed.contains(&e.reversed()) {
            // New undirected edge: count triangles it closes.
            self.triangles += self.common_neighbors(e.src, e.dst);
            self.adj.get_mut(&e.src).expect("checked").insert(e.dst);
            self.adj.get_mut(&e.dst).expect("checked").insert(e.src);
        }
    }

    fn remove_directed(&mut self, e: EdgeId) {
        if !self.directed.remove(&e) {
            return; // lenient: edge was never ingested
        }
        if !self.directed.contains(&e.reversed()) {
            // Undirected edge disappears: subtract the triangles it closed.
            self.adj
                .get_mut(&e.src)
                .expect("edge existed")
                .remove(&e.dst);
            self.adj
                .get_mut(&e.dst)
                .expect("edge existed")
                .remove(&e.src);
            self.triangles -= self.common_neighbors(e.src, e.dst);
        }
    }

    /// Whether at least one direction of the pair `a`/`b` has been
    /// ingested.
    pub fn has_pair(&self, a: VertexId, b: VertexId) -> bool {
        self.directed.contains(&EdgeId::new(a, b)) || self.directed.contains(&EdgeId::new(b, a))
    }
}

impl OnlineComputation for StreamingTriangles {
    type Result = u64;

    fn apply_event(&mut self, event: &GraphEvent) {
        match event {
            GraphEvent::AddVertex { id, .. } => {
                self.adj.entry(*id).or_default();
            }
            GraphEvent::RemoveVertex { id } => {
                let Some(neighbors) = self.adj.get(id) else {
                    return;
                };
                let neighbors: Vec<VertexId> = neighbors.iter().copied().collect();
                for n in neighbors {
                    // Remove the undirected pair and both directed edges.
                    self.directed.remove(&EdgeId::new(*id, n));
                    self.directed.remove(&EdgeId::new(n, *id));
                    self.adj.get_mut(id).expect("exists").remove(&n);
                    self.adj.get_mut(&n).expect("exists").remove(id);
                    self.triangles -= self.common_neighbors(*id, n);
                }
                self.adj.remove(id);
            }
            GraphEvent::AddEdge { id, .. } => self.add_directed(*id),
            GraphEvent::RemoveEdge { id } => self.remove_directed(*id),
            GraphEvent::UpdateVertex { .. } | GraphEvent::UpdateEdge { .. } => {}
        }
    }

    fn result(&self) -> u64 {
        self.triangles
    }

    fn name(&self) -> &'static str {
        "streaming-triangles"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::triangle_count;
    use gt_graph::{ApplyPolicy, CsrSnapshot, EvolvingGraph};

    fn ev_add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn ev_add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    fn check_against_batch(events: &[GraphEvent]) {
        let mut online = StreamingTriangles::new();
        let mut graph = EvolvingGraph::new();
        for e in events {
            online.apply_event(e);
            let _ = graph.apply_with(e, ApplyPolicy::Lenient);
        }
        let batch = triangle_count(&CsrSnapshot::from_graph(&graph));
        assert_eq!(online.count(), batch, "events: {events:?}");
    }

    #[test]
    fn single_triangle_incremental() {
        let mut events: Vec<GraphEvent> = (0..3).map(ev_add_v).collect();
        events.extend([ev_add_e(0, 1), ev_add_e(1, 2)]);
        let mut online = StreamingTriangles::new();
        for e in &events {
            online.apply_event(e);
        }
        assert_eq!(online.count(), 0);
        online.apply_event(&ev_add_e(2, 0));
        assert_eq!(online.count(), 1);
    }

    #[test]
    fn reciprocal_edges_counted_once() {
        let mut events: Vec<GraphEvent> = (0..3).map(ev_add_v).collect();
        events.extend([
            ev_add_e(0, 1),
            ev_add_e(1, 0),
            ev_add_e(1, 2),
            ev_add_e(2, 0),
        ]);
        check_against_batch(&events);
    }

    #[test]
    fn removing_one_direction_keeps_triangle() {
        let mut online = StreamingTriangles::new();
        for e in (0..3).map(ev_add_v) {
            online.apply_event(&e);
        }
        for e in [
            ev_add_e(0, 1),
            ev_add_e(1, 0),
            ev_add_e(1, 2),
            ev_add_e(2, 0),
        ] {
            online.apply_event(&e);
        }
        assert_eq!(online.count(), 1);
        online.apply_event(&GraphEvent::RemoveEdge {
            id: EdgeId::from((0, 1)),
        });
        // 1 -> 0 still exists, so the undirected triangle survives.
        assert_eq!(online.count(), 1);
        online.apply_event(&GraphEvent::RemoveEdge {
            id: EdgeId::from((1, 0)),
        });
        assert_eq!(online.count(), 0);
    }

    #[test]
    fn vertex_removal_destroys_incident_triangles() {
        let mut events: Vec<GraphEvent> = (0..4).map(ev_add_v).collect();
        // Two triangles sharing edge 1-2: (0,1,2) and (1,2,3).
        events.extend([
            ev_add_e(0, 1),
            ev_add_e(1, 2),
            ev_add_e(2, 0),
            ev_add_e(1, 3),
            ev_add_e(3, 2),
        ]);
        let mut online = StreamingTriangles::new();
        for e in &events {
            online.apply_event(e);
        }
        assert_eq!(online.count(), 2);
        online.apply_event(&GraphEvent::RemoveVertex { id: VertexId(0) });
        assert_eq!(online.count(), 1);
        online.apply_event(&GraphEvent::RemoveVertex { id: VertexId(1) });
        assert_eq!(online.count(), 0);
        events.push(GraphEvent::RemoveVertex { id: VertexId(0) });
        events.push(GraphEvent::RemoveVertex { id: VertexId(1) });
        check_against_batch(&events);
    }

    #[test]
    fn hostile_events_are_ignored() {
        let events = vec![
            ev_add_e(0, 1),
            GraphEvent::RemoveEdge {
                id: EdgeId::from((3, 4)),
            },
            GraphEvent::RemoveVertex { id: VertexId(9) },
            ev_add_v(0),
            ev_add_e(0, 0),
        ];
        check_against_batch(&events);
    }

    #[test]
    fn matches_batch_on_dense_graph() {
        let mut events: Vec<GraphEvent> = (0..8).map(ev_add_v).collect();
        for s in 0..8u64 {
            for d in 0..8u64 {
                if s != d && (s + d) % 3 != 0 {
                    events.push(ev_add_e(s, d));
                }
            }
        }
        check_against_batch(&events);
    }
}

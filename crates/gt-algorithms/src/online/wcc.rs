//! Incremental weakly connected components.
//!
//! Additions are handled exactly and in near-constant time via union–find.
//! Removals cannot be expressed in a union–find, so the computation keeps
//! its own adjacency and marks the result *stale*; the next [`refresh`]
//! (or any query through [`component_count`]) rebuilds from the stored
//! adjacency. This is the classic online trade-off: cheap and exact while
//! the graph only grows, periodic catch-up cost under churn.
//!
//! [`refresh`]: IncrementalWcc::refresh
//! [`component_count`]: IncrementalWcc::component_count

use std::collections::{BTreeMap, BTreeSet};

use gt_core::prelude::*;

use crate::components::UnionFind;
use crate::OnlineComputation;

/// Incrementally maintained weakly connected components.
#[derive(Debug, Clone, Default)]
pub struct IncrementalWcc {
    /// Undirected adjacency (the ground truth this structure can always
    /// rebuild from).
    adj: BTreeMap<VertexId, BTreeSet<VertexId>>,
    /// The directed edges ingested so far; an undirected pair exists iff at
    /// least one direction does.
    directed: BTreeSet<EdgeId>,
    /// Union–find over dense slots.
    uf: UnionFind,
    /// VertexId -> dense slot.
    slots: BTreeMap<VertexId, u32>,
    /// Slots of removed vertices are abandoned; they would distort the
    /// component count, so we track how many live in the forest.
    abandoned: usize,
    stale: bool,
    rebuilds: u64,
}

impl IncrementalWcc {
    /// An empty computation.
    pub fn new() -> Self {
        IncrementalWcc {
            uf: UnionFind::new(0),
            ..Default::default()
        }
    }

    /// Whether the union–find is out of sync with the adjacency (a removal
    /// happened since the last rebuild).
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// How many full rebuilds removals have forced so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The current component count, rebuilding first if stale.
    pub fn component_count(&mut self) -> usize {
        if self.stale {
            self.refresh();
        }
        self.uf.component_count().saturating_sub(self.abandoned)
    }

    /// The component count without rebuilding (may be inaccurate after
    /// removals — this is the "fast, possibly stale" query). Saturating:
    /// removing several vertices of one merged component can push the
    /// abandoned-slot correction past the forest's count.
    pub fn component_count_stale(&self) -> usize {
        self.uf.component_count().saturating_sub(self.abandoned)
    }

    /// Whether two vertices are weakly connected, rebuilding if stale.
    /// `None` if either vertex is unknown.
    pub fn connected(&mut self, a: VertexId, b: VertexId) -> Option<bool> {
        if self.stale {
            self.refresh();
        }
        let (sa, sb) = (*self.slots.get(&a)?, *self.slots.get(&b)?);
        Some(self.uf.find(sa) == self.uf.find(sb))
    }

    /// Rebuilds the union–find from the stored adjacency.
    pub fn refresh(&mut self) {
        self.slots.clear();
        self.uf = UnionFind::new(self.adj.len());
        for (i, v) in self.adj.keys().enumerate() {
            self.slots.insert(*v, i as u32);
        }
        for (v, neighbors) in &self.adj {
            let sv = self.slots[v];
            for n in neighbors {
                self.uf.union(sv, self.slots[n]);
            }
        }
        self.abandoned = 0;
        self.stale = false;
        self.rebuilds += 1;
    }
}

impl OnlineComputation for IncrementalWcc {
    /// `(component_count, is_exact)`: the stale-tolerant fast result.
    type Result = (usize, bool);

    fn apply_event(&mut self, event: &GraphEvent) {
        match event {
            GraphEvent::AddVertex { id, .. } => {
                if !self.adj.contains_key(id) {
                    self.adj.insert(*id, BTreeSet::new());
                    let slot = self.uf.push();
                    self.slots.insert(*id, slot);
                }
            }
            GraphEvent::RemoveVertex { id } => {
                let Some(neighbors) = self.adj.remove(id) else {
                    return;
                };
                for n in &neighbors {
                    self.adj.get_mut(n).expect("symmetric adjacency").remove(id);
                    self.directed.remove(&EdgeId::new(*id, *n));
                    self.directed.remove(&EdgeId::new(*n, *id));
                }
                self.slots.remove(id);
                self.abandoned += 1;
                if !neighbors.is_empty() {
                    self.stale = true;
                }
            }
            GraphEvent::AddEdge { id, .. } => {
                if id.is_self_loop()
                    || !self.adj.contains_key(&id.src)
                    || !self.adj.contains_key(&id.dst)
                    || self.directed.contains(id)
                {
                    return;
                }
                self.directed.insert(*id);
                if !self.directed.contains(&id.reversed()) {
                    self.adj.get_mut(&id.src).expect("checked").insert(id.dst);
                    self.adj.get_mut(&id.dst).expect("checked").insert(id.src);
                    if !self.stale {
                        let (sa, sb) = (self.slots[&id.src], self.slots[&id.dst]);
                        self.uf.union(sa, sb);
                    }
                }
            }
            GraphEvent::RemoveEdge { id } => {
                if !self.directed.remove(id) {
                    return; // lenient: edge was never ingested
                }
                if !self.directed.contains(&id.reversed()) {
                    self.adj
                        .get_mut(&id.src)
                        .expect("edge existed")
                        .remove(&id.dst);
                    self.adj
                        .get_mut(&id.dst)
                        .expect("edge existed")
                        .remove(&id.src);
                    self.stale = true;
                }
            }
            GraphEvent::UpdateVertex { .. } | GraphEvent::UpdateEdge { .. } => {}
        }
    }

    fn result(&self) -> (usize, bool) {
        (self.component_count_stale(), !self.stale)
    }

    fn name(&self) -> &'static str {
        "incremental-wcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::weakly_connected_components;
    use gt_graph::{ApplyPolicy, CsrSnapshot, EvolvingGraph};

    fn ev_add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn ev_add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    fn check_against_batch(events: &[GraphEvent]) {
        let mut online = IncrementalWcc::new();
        let mut graph = EvolvingGraph::new();
        for e in events {
            online.apply_event(e);
            let _ = graph.apply_with(e, ApplyPolicy::Lenient);
        }
        let batch = weakly_connected_components(&CsrSnapshot::from_graph(&graph));
        assert_eq!(online.component_count(), batch.count, "events: {events:?}");
    }

    #[test]
    fn additions_stay_exact_without_rebuilds() {
        let mut online = IncrementalWcc::new();
        for e in (0..6).map(ev_add_v) {
            online.apply_event(&e);
        }
        assert_eq!(online.component_count(), 6);
        online.apply_event(&ev_add_e(0, 1));
        online.apply_event(&ev_add_e(2, 3));
        assert_eq!(online.component_count(), 4);
        online.apply_event(&ev_add_e(1, 2));
        assert_eq!(online.component_count(), 3);
        assert!(!online.is_stale());
        assert_eq!(online.rebuilds(), 0);
        assert_eq!(online.connected(VertexId(0), VertexId(3)), Some(true));
        assert_eq!(online.connected(VertexId(0), VertexId(5)), Some(false));
    }

    #[test]
    fn edge_removal_marks_stale_and_rebuild_corrects() {
        let mut online = IncrementalWcc::new();
        for e in (0..3).map(ev_add_v) {
            online.apply_event(&e);
        }
        online.apply_event(&ev_add_e(0, 1));
        online.apply_event(&ev_add_e(1, 2));
        assert_eq!(online.component_count(), 1);
        online.apply_event(&GraphEvent::RemoveEdge {
            id: EdgeId::from((0, 1)),
        });
        assert!(online.is_stale());
        // Stale fast-path still reports the old merge.
        assert_eq!(online.result(), (1, false));
        // Exact query rebuilds.
        assert_eq!(online.component_count(), 2);
        assert_eq!(online.rebuilds(), 1);
        assert!(!online.is_stale());
    }

    #[test]
    fn vertex_removal() {
        let events: Vec<GraphEvent> = (0..4)
            .map(ev_add_v)
            .chain([ev_add_e(0, 1), ev_add_e(1, 2), ev_add_e(2, 3)])
            .chain([GraphEvent::RemoveVertex { id: VertexId(1) }])
            .collect();
        check_against_batch(&events);
    }

    #[test]
    fn isolated_vertex_removal_does_not_stale() {
        let mut online = IncrementalWcc::new();
        for e in (0..3).map(ev_add_v) {
            online.apply_event(&e);
        }
        online.apply_event(&GraphEvent::RemoveVertex { id: VertexId(2) });
        assert!(!online.is_stale());
        assert_eq!(online.component_count(), 2);
    }

    #[test]
    fn reciprocal_edge_removal_only_stales_when_projection_changes() {
        let mut online = IncrementalWcc::new();
        for e in (0..2).map(ev_add_v) {
            online.apply_event(&e);
        }
        online.apply_event(&ev_add_e(0, 1));
        online.apply_event(&ev_add_e(1, 0));
        online.apply_event(&GraphEvent::RemoveEdge {
            id: EdgeId::from((0, 1)),
        });
        // 1 -> 0 remains; the undirected pair survives.
        assert!(!online.is_stale());
        assert_eq!(online.component_count(), 1);
    }

    #[test]
    fn hostile_events_ignored() {
        let events = vec![
            ev_add_e(0, 1),
            GraphEvent::RemoveVertex { id: VertexId(5) },
            GraphEvent::RemoveEdge {
                id: EdgeId::from((1, 2)),
            },
            ev_add_v(0),
            ev_add_v(0),
        ];
        check_against_batch(&events);
    }

    #[test]
    fn long_mixed_sequence_matches_batch() {
        let mut events: Vec<GraphEvent> = (0..20).map(ev_add_v).collect();
        for i in 0..19u64 {
            events.push(ev_add_e(i, i + 1));
        }
        events.push(GraphEvent::RemoveEdge {
            id: EdgeId::from((5, 6)),
        });
        events.push(GraphEvent::RemoveVertex { id: VertexId(10) });
        events.push(ev_add_e(0, 19));
        check_against_batch(&events);
    }
}

//! Online computations: stream-driven, fast, approximate (paper §4.4.2).
//!
//! Each type here implements [`crate::OnlineComputation`]: it consumes graph
//! events directly, maintains its own internal model, and can be queried at
//! any time for a (possibly approximate or stale) result. The accuracy of
//! these results against the batch references in the parent modules is
//! precisely the latency-vs-correctness trade-off the framework measures.

mod degree;
mod pagerank;
mod sampling;
mod timeline;
mod triangles;
mod wcc;

pub use degree::{DegreeSnapshot, DegreeTracker};
pub use pagerank::{OnlinePageRank, OnlinePageRankConfig};
pub use sampling::ReservoirSampler;
pub use timeline::{PropertyTimeline, TimelinePoint};
pub use triangles::StreamingTriangles;
pub use wcc::IncrementalWcc;

//! Triangle counting (Table 1, "Graph theory").
//!
//! Triangles are counted on the *undirected projection* of the graph
//! (an edge in either direction connects two vertices), the standard
//! convention for social-graph clustering metrics.

use std::collections::HashSet;

use gt_graph::CsrSnapshot;

/// Counts triangles on the undirected projection.
///
/// Uses the degree-ordered neighbor-intersection method: each triangle is
/// counted exactly once at its lowest-(degree, index) corner.
pub fn triangle_count(csr: &CsrSnapshot) -> u64 {
    let n = csr.vertex_count();
    if n < 3 {
        return 0;
    }

    // Undirected adjacency (deduplicated), as sorted vectors.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in csr.indices() {
        for &v in csr.out_neighbors(u) {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    // Rank by (degree, index): orient each undirected edge from lower to
    // higher rank and intersect forward neighborhoods.
    let rank = |v: u32| (adj[v as usize].len(), v);
    let mut forward: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n as u32 {
        for &v in &adj[u as usize] {
            if rank(u) < rank(v) {
                forward[u as usize].push(v);
            }
        }
    }

    let mut count = 0u64;
    let mut marker: Vec<u64> = vec![0; n];
    let mut stamp = 0u64;
    for u in 0..n as u32 {
        stamp += 1;
        for &v in &forward[u as usize] {
            marker[v as usize] = stamp;
        }
        for &v in &forward[u as usize] {
            for &w in &forward[v as usize] {
                if marker[w as usize] == stamp {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Global clustering coefficient: `3 * triangles / open-or-closed wedges`
/// on the undirected projection. Returns 0 when there are no wedges.
pub fn global_clustering_coefficient(csr: &CsrSnapshot) -> f64 {
    let n = csr.vertex_count();
    let mut neighbor_sets: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for u in csr.indices() {
        for &v in csr.out_neighbors(u) {
            if u != v {
                neighbor_sets[u as usize].insert(v);
                neighbor_sets[v as usize].insert(u);
            }
        }
    }
    let wedges: u64 = neighbor_sets
        .iter()
        .map(|s| {
            let d = s.len() as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(csr) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_graph::{builders, EvolvingGraph};

    fn graph_of(edges: &[(u64, u64)], n: u64) -> CsrSnapshot {
        let mut g = EvolvingGraph::new();
        for id in 0..n {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for &(s, d) in edges {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::empty(),
            })
            .unwrap();
        }
        CsrSnapshot::from_graph(&g)
    }

    #[test]
    fn single_triangle() {
        let csr = graph_of(&[(0, 1), (1, 2), (2, 0)], 3);
        assert_eq!(triangle_count(&csr), 1);
        assert!((global_clustering_coefficient(&csr) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direction_and_reciprocals_do_not_double_count() {
        // Both directions of each edge present: still one triangle.
        let csr = graph_of(&[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)], 3);
        assert_eq!(triangle_count(&csr), 1);
    }

    #[test]
    fn path_has_no_triangles() {
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::path(10)));
        assert_eq!(triangle_count(&csr), 0);
        assert_eq!(global_clustering_coefficient(&csr), 0.0);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles.
        let csr = CsrSnapshot::from_graph(&builders::materialize(&builders::complete(5)));
        assert_eq!(triangle_count(&csr), 10);
        assert!((global_clustering_coefficient(&csr) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let csr = graph_of(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 2)], 4);
        assert_eq!(triangle_count(&csr), 2);
    }

    #[test]
    fn small_graphs() {
        assert_eq!(triangle_count(&graph_of(&[], 0)), 0);
        assert_eq!(triangle_count(&graph_of(&[], 2)), 0);
        assert_eq!(triangle_count(&graph_of(&[(0, 1)], 2)), 0);
    }
}

#![warn(missing_docs)]

//! # gt-algorithms
//!
//! The computation catalogue of the paper's Table 1, in two flavors:
//!
//! | Family | Batch (exact reference) | Online (stream-driven) |
//! |---|---|---|
//! | Graph statistics | [`gt_graph::properties`] | [`online::DegreeTracker`] |
//! | Graph properties | [`pagerank`], [`cycles`], [`scc`], [`centrality`] | [`online::OnlinePageRank`] |
//! | Routing & traversals | [`traversal`], [`shortest`], [`spanning`], [`diameter`] | — |
//! | Graph theory | [`coloring`], [`triangles`] | [`online::StreamingTriangles`] |
//! | Communities | [`components`], [`communities`] | [`online::IncrementalWcc`] |
//! | Temporal analyses | — | [`online::ReservoirSampler`] (online sampling) |
//!
//! Batch algorithms run on [`gt_graph::CsrSnapshot`]s — the paper's
//! "offline computations executed on graph snapshots reconstructed from
//! the event stream" (§4.4.2). Online computations implement
//! [`OnlineComputation`] and consume graph events directly, yielding the
//! fast-but-approximate results whose accuracy the framework measures
//! against the batch reference.

pub mod centrality;
pub mod coloring;
pub mod communities;
pub mod components;
pub mod cycles;
pub mod diameter;
pub mod online;
pub mod pagerank;
pub mod scc;
pub mod shortest;
pub mod spanning;
pub mod traversal;
pub mod triangles;

use gt_core::prelude::*;

/// A computation that processes incoming graph stream events directly
/// (the paper's "online computations", §4.4.2).
///
/// Implementations must tolerate *any* event sequence a lenient platform
/// would accept: events referencing unknown entities are ignored.
pub trait OnlineComputation {
    /// The result type exposed to queries.
    type Result;

    /// Feeds one graph event.
    fn apply_event(&mut self, event: &GraphEvent);

    /// The current (possibly approximate) result.
    fn result(&self) -> Self::Result;

    /// A short name for result logs.
    fn name(&self) -> &'static str;
}

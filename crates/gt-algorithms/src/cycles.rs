//! Directed cycle detection (Table 1, "Graph properties") via iterative
//! three-color DFS.

use gt_graph::CsrSnapshot;

/// Whether the directed graph contains at least one cycle.
pub fn has_cycle(csr: &CsrSnapshot) -> bool {
    find_cycle(csr).is_some()
}

/// Finds one directed cycle as a sequence of dense indices
/// `[v0, v1, ..., v0]`, or `None` if the graph is acyclic.
pub fn find_cycle(csr: &CsrSnapshot) -> Option<Vec<u32>> {
    let n = csr.vertex_count();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<u32>> = vec![None; n];

    for start in 0..n as u32 {
        if color[start as usize] != Color::White {
            continue;
        }
        // Iterative DFS: stack of (vertex, next-edge-offset).
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        color[start as usize] = Color::Gray;
        while let Some(frame) = stack.last_mut() {
            let u = frame.0;
            let out = csr.out_neighbors(u);
            if frame.1 < out.len() {
                let v = out[frame.1];
                frame.1 += 1;
                match color[v as usize] {
                    Color::White => {
                        color[v as usize] = Color::Gray;
                        parent[v as usize] = Some(u);
                        stack.push((v, 0));
                    }
                    Color::Gray => {
                        // Back edge u -> v closes a cycle v -> ... -> u -> v.
                        let mut cycle = vec![v];
                        let mut cur = u;
                        while cur != v {
                            cycle.push(cur);
                            cur = parent[cur as usize].expect("gray vertices have parents");
                        }
                        cycle.push(v);
                        // Collected back-to-front from u; reverse into
                        // forward order v -> ... -> u -> v.
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[u as usize] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Whether every consecutive pair in `cycle` is an edge (for verification).
pub fn is_valid_cycle(csr: &CsrSnapshot, cycle: &[u32]) -> bool {
    cycle.len() >= 3
        && cycle.first() == cycle.last()
        && cycle
            .windows(2)
            .all(|w| csr.out_neighbors(w[0]).contains(&w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::builders;

    fn csr_of(stream: &gt_core::GraphStream) -> CsrSnapshot {
        CsrSnapshot::from_graph(&builders::materialize(stream))
    }

    #[test]
    fn path_is_acyclic() {
        assert!(!has_cycle(&csr_of(&builders::path(10))));
        assert_eq!(find_cycle(&csr_of(&builders::path(10))), None);
    }

    #[test]
    fn ring_has_cycle() {
        let csr = csr_of(&builders::ring(5));
        let cycle = find_cycle(&csr).expect("ring has a cycle");
        assert!(is_valid_cycle(&csr, &cycle), "{cycle:?}");
        assert_eq!(cycle.len(), 6); // 5 vertices + closing repeat
    }

    #[test]
    fn grid_is_acyclic() {
        assert!(!has_cycle(&csr_of(&builders::grid(4, 4))));
    }

    #[test]
    fn two_cycle() {
        use gt_core::prelude::*;
        let mut g = gt_graph::EvolvingGraph::new();
        for id in 0..2u64 {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for (s, d) in [(0u64, 1u64), (1, 0)] {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::empty(),
            })
            .unwrap();
        }
        let csr = CsrSnapshot::from_graph(&g);
        let cycle = find_cycle(&csr).unwrap();
        assert!(is_valid_cycle(&csr, &cycle));
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn cycle_in_later_component_is_found() {
        use gt_core::prelude::*;
        // Acyclic component first (vertices 0-2), cycle in 10-12.
        let mut stream = builders::path(3);
        for id in 10..13u64 {
            stream.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            }));
        }
        for (s, d) in [(10u64, 11u64), (11, 12), (12, 10)] {
            stream.push(StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::empty(),
            }));
        }
        let csr = csr_of(&stream);
        let cycle = find_cycle(&csr).unwrap();
        assert!(is_valid_cycle(&csr, &cycle));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let csr = CsrSnapshot::from_graph(&gt_graph::EvolvingGraph::new());
        assert!(!has_cycle(&csr));
    }
}

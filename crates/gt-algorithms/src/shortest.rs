//! Weighted shortest paths: Bellman–Ford and Floyd–Warshall (Table 1,
//! "Routing & traversals"). Edge weights come from edge state payloads
//! (non-numeric payloads default to weight 1.0 — see
//! [`gt_graph::CsrSnapshot`]).

use gt_graph::CsrSnapshot;

/// Result of a single-source shortest path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    /// Distance per dense vertex index; `f64::INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// Predecessor per dense vertex index on a shortest path.
    pub pred: Vec<Option<u32>>,
}

impl ShortestPaths {
    /// Reconstructs the path `source -> ... -> target` as dense indices, or
    /// `None` if unreachable.
    pub fn path_to(&self, target: u32) -> Option<Vec<u32>> {
        if !self.dist[target as usize].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.pred[cur as usize] {
            path.push(p);
            cur = p;
            if path.len() > self.dist.len() {
                // Defensive: a predecessor cycle would mean a negative
                // cycle slipped through.
                return None;
            }
        }
        path.reverse();
        Some(path)
    }
}

/// Bellman–Ford from `source`. Returns `Err(())`-like `None` if a negative
/// cycle is reachable from the source.
pub fn bellman_ford(csr: &CsrSnapshot, source: u32) -> Option<ShortestPaths> {
    let n = csr.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<u32>> = vec![None; n];
    if (source as usize) >= n {
        return Some(ShortestPaths { dist, pred });
    }
    dist[source as usize] = 0.0;

    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for u in csr.indices() {
            let du = dist[u as usize];
            if !du.is_finite() {
                continue;
            }
            for (&v, &w) in csr.out_neighbors(u).iter().zip(csr.out_weights(u)) {
                if du + w < dist[v as usize] {
                    dist[v as usize] = du + w;
                    pred[v as usize] = Some(u);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // One more pass: any improvement means a reachable negative cycle.
    for u in csr.indices() {
        let du = dist[u as usize];
        if !du.is_finite() {
            continue;
        }
        for (&v, &w) in csr.out_neighbors(u).iter().zip(csr.out_weights(u)) {
            if du + w < dist[v as usize] - 1e-12 {
                return None;
            }
        }
    }

    Some(ShortestPaths { dist, pred })
}

/// Floyd–Warshall all-pairs distances. O(n³); intended for small snapshots
/// and as ground truth for other routing computations.
///
/// Returns a row-major `n * n` matrix; `result[u * n + v]` is the distance
/// from `u` to `v` (`f64::INFINITY` if unreachable). Returns `None` when a
/// negative cycle exists (some diagonal entry goes negative).
pub fn floyd_warshall(csr: &CsrSnapshot) -> Option<Vec<f64>> {
    let n = csr.vertex_count();
    let mut d = vec![f64::INFINITY; n * n];
    for u in 0..n {
        d[u * n + u] = 0.0;
    }
    for u in csr.indices() {
        for (&v, &w) in csr.out_neighbors(u).iter().zip(csr.out_weights(u)) {
            let slot = &mut d[u as usize * n + v as usize];
            if w < *slot {
                *slot = w;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let alt = dik + d[k * n + j];
                if alt < d[i * n + j] {
                    d[i * n + j] = alt;
                }
            }
        }
    }
    if (0..n).any(|u| d[u * n + u] < 0.0) {
        return None;
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_graph::EvolvingGraph;

    fn weighted_graph(edges: &[(u64, u64, f64)]) -> CsrSnapshot {
        let mut g = EvolvingGraph::new();
        let mut vertices: Vec<u64> = edges.iter().flat_map(|&(s, d, _)| [s, d]).collect();
        vertices.sort_unstable();
        vertices.dedup();
        for v in vertices {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(v),
                state: State::empty(),
            })
            .unwrap();
        }
        for &(s, d, w) in edges {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::weight(w),
            })
            .unwrap();
        }
        CsrSnapshot::from_graph(&g)
    }

    #[test]
    fn bellman_ford_simple() {
        // 0 -> 1 (4), 0 -> 2 (1), 2 -> 1 (2): best 0->1 is via 2, cost 3.
        let csr = weighted_graph(&[(0, 1, 4.0), (0, 2, 1.0), (2, 1, 2.0)]);
        let sp = bellman_ford(&csr, 0).unwrap();
        assert_eq!(sp.dist, [0.0, 3.0, 1.0]);
        assert_eq!(sp.path_to(1), Some(vec![0, 2, 1]));
    }

    #[test]
    fn bellman_ford_handles_negative_edges() {
        let csr = weighted_graph(&[(0, 1, 5.0), (0, 2, 2.0), (2, 1, -4.0)]);
        let sp = bellman_ford(&csr, 0).unwrap();
        assert_eq!(sp.dist[1], -2.0);
    }

    #[test]
    fn bellman_ford_detects_negative_cycle() {
        let csr = weighted_graph(&[(0, 1, 1.0), (1, 2, -3.0), (2, 1, 1.0)]);
        assert!(bellman_ford(&csr, 0).is_none());
    }

    #[test]
    fn bellman_ford_unreachable() {
        let csr = weighted_graph(&[(0, 1, 1.0), (2, 3, 1.0)]);
        let sp = bellman_ford(&csr, 0).unwrap();
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.path_to(3), None);
    }

    #[test]
    fn floyd_warshall_matches_bellman_ford() {
        let csr = weighted_graph(&[
            (0, 1, 3.0),
            (0, 2, 8.0),
            (1, 3, 1.0),
            (3, 2, 2.0),
            (2, 0, 4.0),
            (1, 2, 4.0),
        ]);
        let n = csr.vertex_count();
        let fw = floyd_warshall(&csr).unwrap();
        for src in csr.indices() {
            let bf = bellman_ford(&csr, src).unwrap();
            for v in 0..n {
                let a = fw[src as usize * n + v];
                let b = bf.dist[v];
                assert!(
                    (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                    "src {src}, v {v}: fw {a}, bf {b}"
                );
            }
        }
    }

    #[test]
    fn floyd_warshall_detects_negative_cycle() {
        let csr = weighted_graph(&[(0, 1, 1.0), (1, 0, -2.0)]);
        assert!(floyd_warshall(&csr).is_none());
    }

    #[test]
    fn unweighted_edges_default_to_one() {
        let csr = CsrSnapshot::from_graph(&gt_graph::builders::materialize(
            &gt_graph::builders::path(4),
        ));
        let sp = bellman_ford(&csr, 0).unwrap();
        assert_eq!(sp.dist, [0.0, 1.0, 2.0, 3.0]);
    }
}

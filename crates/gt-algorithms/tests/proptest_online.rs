//! Property-based equivalence tests: the online computations must agree
//! with their batch references on the graph induced by any event sequence
//! (applied leniently — hostile events are part of the contract).

use gt_algorithms::components::weakly_connected_components;
use gt_algorithms::online::{IncrementalWcc, StreamingTriangles};
use gt_algorithms::triangles::triangle_count;
use gt_algorithms::OnlineComputation;
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, CsrSnapshot, EvolvingGraph};
use proptest::prelude::*;

fn arbitrary_event() -> impl Strategy<Value = GraphEvent> {
    let vid = (0u64..15).prop_map(VertexId);
    let eid = ((0u64..15), (0u64..15)).prop_map(EdgeId::from);
    prop_oneof![
        4 => vid.clone().prop_map(|id| GraphEvent::AddVertex { id, state: State::empty() }),
        1 => vid.prop_map(|id| GraphEvent::RemoveVertex { id }),
        4 => eid.clone().prop_map(|id| GraphEvent::AddEdge { id, state: State::empty() }),
        2 => eid.prop_map(|id| GraphEvent::RemoveEdge { id }),
    ]
}

fn lenient_graph(events: &[GraphEvent]) -> EvolvingGraph {
    let mut g = EvolvingGraph::new();
    for e in events {
        let _ = g.apply_with(e, ApplyPolicy::Lenient);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn streaming_triangles_match_batch(events in proptest::collection::vec(arbitrary_event(), 0..250)) {
        let mut online = StreamingTriangles::new();
        for e in &events {
            online.apply_event(e);
        }
        let graph = lenient_graph(&events);
        let batch = triangle_count(&CsrSnapshot::from_graph(&graph));
        prop_assert_eq!(online.count(), batch);
    }

    #[test]
    fn incremental_wcc_matches_batch(events in proptest::collection::vec(arbitrary_event(), 0..250)) {
        let mut online = IncrementalWcc::new();
        for e in &events {
            online.apply_event(e);
        }
        let graph = lenient_graph(&events);
        let batch = weakly_connected_components(&CsrSnapshot::from_graph(&graph));
        prop_assert_eq!(online.component_count(), batch.count);
    }

    /// When the structure reports itself non-stale, the fast query must be
    /// exact — no silent divergence.
    #[test]
    fn non_stale_wcc_fast_path_is_exact(events in proptest::collection::vec(arbitrary_event(), 0..250)) {
        let mut online = IncrementalWcc::new();
        for e in &events {
            online.apply_event(e);
        }
        let (fast, exact_flag) = online.result();
        if exact_flag {
            prop_assert_eq!(fast, online.component_count());
        }
    }

    /// WCC connectivity queries agree with batch labels.
    #[test]
    fn wcc_connected_queries_match(events in proptest::collection::vec(arbitrary_event(), 10..150)) {
        let mut online = IncrementalWcc::new();
        for e in &events {
            online.apply_event(e);
        }
        let graph = lenient_graph(&events);
        let csr = CsrSnapshot::from_graph(&graph);
        let batch = weakly_connected_components(&csr);
        let ids: Vec<VertexId> = graph.vertices().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i) {
                let expected = batch.same_component(
                    csr.index_of(a).unwrap(),
                    csr.index_of(b).unwrap(),
                );
                prop_assert_eq!(online.connected(a, b), Some(expected));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Online PageRank converges to batch PageRank once the stream stops.
    #[test]
    fn online_pagerank_converges(events in proptest::collection::vec(arbitrary_event(), 10..120)) {
        use gt_algorithms::online::{OnlinePageRank, OnlinePageRankConfig};
        use gt_algorithms::pagerank::{pagerank, PageRankConfig};

        let mut online = OnlinePageRank::new(OnlinePageRankConfig::default());
        for e in &events {
            online.apply_event(e);
        }
        online.run_sweeps(300);
        let graph = lenient_graph(&events);
        let csr = CsrSnapshot::from_graph(&graph);
        let exact = pagerank(&csr, &PageRankConfig::default());
        let result = online.result();
        prop_assert_eq!(result.len(), graph.vertex_count());
        let l1: f64 = result
            .iter()
            .map(|(id, r)| {
                let idx = csr.index_of(*id).expect("same vertex set");
                (r - exact.ranks[idx as usize]).abs()
            })
            .sum();
        prop_assert!(l1 < 1e-5, "L1 error {l1}");
    }
}

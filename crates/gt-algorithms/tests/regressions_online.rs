//! Regression sequences resolved from the formerly checked-in
//! `proptest_online.proptest-regressions` seed file.
//!
//! The vendored proptest does not replay `.proptest-regressions` files, so
//! each shrunk failure case is transcribed here as an explicit unit test.
//! The sequences probe the historically fragile paths: `RemoveEdge` with
//! reversed endpoints (the undirected adjacency must survive while the
//! opposite directed edge exists), self-loops, and vertices that are
//! removed and later re-added.
//!
//! Every test checks the full online suite (WCC, triangles, degrees)
//! against the batch references on the leniently-applied graph, so these
//! stay meaningful even as the online structures evolve.

use gt_algorithms::components::weakly_connected_components;
use gt_algorithms::online::{DegreeTracker, IncrementalWcc, StreamingTriangles};
use gt_algorithms::triangles::triangle_count;
use gt_algorithms::OnlineComputation;
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, CsrSnapshot, EvolvingGraph};

fn add_v(id: u64) -> GraphEvent {
    GraphEvent::AddVertex {
        id: VertexId(id),
        state: State::empty(),
    }
}

fn rm_v(id: u64) -> GraphEvent {
    GraphEvent::RemoveVertex { id: VertexId(id) }
}

fn add_e(src: u64, dst: u64) -> GraphEvent {
    GraphEvent::AddEdge {
        id: EdgeId::new(VertexId(src), VertexId(dst)),
        state: State::empty(),
    }
}

fn rm_e(src: u64, dst: u64) -> GraphEvent {
    GraphEvent::RemoveEdge {
        id: EdgeId::new(VertexId(src), VertexId(dst)),
    }
}

/// Replays the sequence through every online structure and asserts
/// agreement with the batch references.
fn assert_online_matches_batch(events: &[GraphEvent]) {
    let mut wcc = IncrementalWcc::new();
    let mut tri = StreamingTriangles::new();
    let mut deg = DegreeTracker::new();
    let mut graph = EvolvingGraph::new();
    for e in events {
        wcc.apply_event(e);
        tri.apply_event(e);
        deg.apply_event(e);
        let _ = graph.apply_with(e, ApplyPolicy::Lenient);
    }
    let csr = CsrSnapshot::from_graph(&graph);
    let batch_wcc = weakly_connected_components(&csr);

    let (fast, exact) = wcc.result();
    if exact {
        assert_eq!(fast, batch_wcc.count, "non-stale fast path diverged");
    }
    assert_eq!(wcc.component_count(), batch_wcc.count, "WCC count diverged");
    assert_eq!(tri.count(), triangle_count(&csr), "triangle count diverged");

    let snap = deg.result();
    assert_eq!(snap.vertices, graph.vertex_count(), "vertex count diverged");
    assert_eq!(snap.edges, graph.edge_count(), "edge count diverged");
    let mut hist = std::collections::BTreeMap::new();
    for vid in graph.vertices() {
        let d = graph.out_degree(vid).unwrap() + graph.in_degree(vid).unwrap();
        *hist.entry(d).or_insert(0usize) += 1;
    }
    assert_eq!(snap.histogram, hist, "degree histogram diverged");
}

/// Seed 6b5c94e2: removing the reverse orientation of the only edge must
/// not disconnect the pair — only `3->1` is removed, `1->3` never existed
/// as `3->1`, so lenient semantics make it a no-op.
#[test]
fn remove_edge_with_reversed_endpoints() {
    assert_online_matches_batch(&[add_v(3), add_v(1), add_e(1, 3), rm_e(3, 1)]);
}

/// Seed 082d4fcf: a triangle where one removal names the reverse direction
/// of an existing edge. The triangle must survive because `2->3` is still
/// present; only an exact-direction match may tear it down.
#[test]
fn triangle_survives_reversed_remove() {
    assert_online_matches_batch(&[
        add_v(3),
        add_v(5),
        add_v(2),
        add_e(2, 3),
        add_e(3, 5),
        add_e(2, 5),
        rm_e(3, 2),
    ]);
}

/// Seed 5965197f: a vertex participates in a reversed remove, then a
/// self-loop add (always rejected), then repeated duplicate re-adds. The
/// duplicates and the rejected loop must all be no-ops.
#[test]
fn readded_vertex_after_reversed_remove_and_self_loop() {
    assert_online_matches_batch(&[
        add_v(9),
        add_v(0),
        add_e(0, 9),
        rm_e(9, 0),
        add_v(0),
        add_e(0, 0),
        add_v(0),
        add_v(0),
        add_v(0),
        add_v(0),
    ]);
}

/// Seed 7b8483cd: a larger mixed sequence ending in a cascade of vertex
/// removals that tear down a path (`2 -> 10 -> {1, 13}`), with duplicate
/// vertex adds and self-loops interleaved throughout.
#[test]
fn vertex_removal_cascade_with_duplicates() {
    assert_online_matches_batch(&[
        add_v(3),
        add_v(1),
        add_v(11),
        add_e(3, 11),
        add_v(10),
        add_e(10, 1),
        add_v(1),
        add_v(1),
        add_v(13),
        add_v(2),
        add_v(1),
        add_e(2, 10),
        add_v(4),
        add_v(1),
        add_e(10, 13),
        add_e(0, 0),
        add_e(0, 0),
        add_e(1, 3),
        rm_v(10),
        rm_v(1),
        rm_v(2),
    ]);
}

/// A vertex removed and re-added must come back isolated: its old edges
/// stay gone in every online structure.
#[test]
fn removed_then_readded_vertex_is_isolated() {
    assert_online_matches_batch(&[
        add_v(1),
        add_v(2),
        add_v(3),
        add_e(1, 2),
        add_e(2, 3),
        add_e(3, 1),
        rm_v(2),
        add_v(2),
        add_e(2, 1),
    ]);
}

/// Removing both orientations of a doubly-linked pair, one at a time:
/// connectivity must only break on the second removal.
#[test]
fn both_orientations_removed_one_at_a_time() {
    assert_online_matches_batch(&[
        add_v(1),
        add_v(2),
        add_e(1, 2),
        add_e(2, 1),
        rm_e(1, 2),
        rm_e(2, 1),
    ]);
}

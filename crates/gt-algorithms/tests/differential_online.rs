//! Seeded differential fuzz: every online computation replayed against its
//! batch reference over randomized hostile event sequences (duplicate
//! adds, reversed removes, self-loops, vertex churn on a small id space).
//!
//! Divergent seeds are greedily minimized before reporting so a failure
//! prints a near-minimal reproducing sequence ready to be transcribed
//! into `regressions_online.rs`.

use gt_algorithms::components::weakly_connected_components;
use gt_algorithms::online::{DegreeTracker, IncrementalWcc, StreamingTriangles};
use gt_algorithms::triangles::triangle_count;
use gt_algorithms::OnlineComputation;
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, CsrSnapshot, EvolvingGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_event(rng: &mut StdRng, n: u64) -> GraphEvent {
    let v = |rng: &mut StdRng| VertexId(rng.random_range(0..n));
    let e = |rng: &mut StdRng| {
        EdgeId::new(
            VertexId(rng.random_range(0..n)),
            VertexId(rng.random_range(0..n)),
        )
    };
    match rng.random_range(0..10u32) {
        0 | 1 => GraphEvent::AddVertex {
            id: v(rng),
            state: State::empty(),
        },
        2 => GraphEvent::RemoveVertex { id: v(rng) },
        3..=5 => GraphEvent::AddEdge {
            id: e(rng),
            state: State::empty(),
        },
        6 | 7 => GraphEvent::RemoveEdge { id: e(rng) },
        8 => GraphEvent::UpdateVertex {
            id: v(rng),
            state: State::empty(),
        },
        _ => GraphEvent::UpdateEdge {
            id: e(rng),
            state: State::empty(),
        },
    }
}

fn divergence(events: &[GraphEvent]) -> Option<String> {
    let mut wcc = IncrementalWcc::new();
    let mut tri = StreamingTriangles::new();
    let mut deg = DegreeTracker::new();
    let mut graph = EvolvingGraph::new();
    for e in events {
        wcc.apply_event(e);
        tri.apply_event(e);
        deg.apply_event(e);
        let _ = graph.apply_with(e, ApplyPolicy::Lenient);
    }
    let csr = CsrSnapshot::from_graph(&graph);
    let batch_wcc = weakly_connected_components(&csr);
    let batch_tri = triangle_count(&csr);
    // Fast-path claim: when not stale, the cheap count must already be exact.
    let (fast, exact_claim) = wcc.result();
    if exact_claim && fast != batch_wcc.count {
        return Some(format!(
            "wcc fast path claims exact {} != {}",
            fast, batch_wcc.count
        ));
    }
    if wcc.component_count() != batch_wcc.count {
        return Some(format!(
            "wcc {} != {}",
            wcc.component_count(),
            batch_wcc.count
        ));
    }
    if tri.count() != batch_tri {
        return Some(format!("tri {} != {}", tri.count(), batch_tri));
    }
    let snap = deg.result();
    if snap.vertices != graph.vertex_count() {
        return Some(format!(
            "deg vertices {} != {}",
            snap.vertices,
            graph.vertex_count()
        ));
    }
    if snap.edges != graph.edge_count() {
        return Some(format!(
            "deg edges {} != {}",
            snap.edges,
            graph.edge_count()
        ));
    }
    // Per-vertex degree histogram vs graph.
    let mut hist = std::collections::BTreeMap::new();
    for vid in graph.vertices() {
        let d = graph.out_degree(vid).unwrap() + graph.in_degree(vid).unwrap();
        *hist.entry(d).or_insert(0usize) += 1;
    }
    if snap.histogram != hist {
        return Some(format!("deg histogram {:?} != {:?}", snap.histogram, hist));
    }
    // connected() queries must match batch component assignment.
    let vids: Vec<VertexId> = graph.vertices().collect();
    for (i, &a) in vids.iter().enumerate() {
        for &b in &vids[i..] {
            let ia = csr.index_of(a).unwrap();
            let ib = csr.index_of(b).unwrap();
            let expected = batch_wcc.labels[ia as usize] == batch_wcc.labels[ib as usize];
            if wcc.connected(a, b) != Some(expected) {
                return Some(format!(
                    "connected({a},{b}) {:?} != {expected}",
                    wcc.connected(a, b)
                ));
            }
        }
    }
    None
}

fn minimize(mut events: Vec<GraphEvent>) -> Vec<GraphEvent> {
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < events.len() {
            let mut candidate = events.clone();
            candidate.remove(i);
            if divergence(&candidate).is_some() {
                events = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return events;
        }
    }
}

#[test]
fn differential_fuzz() {
    let mut failures = 0;
    for seed in 0..5_000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(2..8u64);
        let len = rng.random_range(1..100usize);
        let events: Vec<GraphEvent> = (0..len).map(|_| random_event(&mut rng, n)).collect();
        if let Some(msg) = divergence(&events) {
            let min = minimize(events);
            println!(
                "seed {seed}: {msg}\n  minimized: {min:?}\n  still: {:?}",
                divergence(&min)
            );
            failures += 1;
            if failures >= 5 {
                break;
            }
        }
    }
    assert_eq!(failures, 0, "{failures} divergent seeds");
}

//! Shard-local graph state, shared by the serial and sharded stores.
//!
//! Every shard worker keeps a partition-local view of the vertices and
//! edges routed to it so reads can be answered without a global lock.
//! Events apply *leniently* — the cross-shard existence of edge endpoints
//! cannot be checked locally; the merged commit-log reconstruction at
//! shutdown is authoritative for consistency.
//!
//! Edge state is held per source vertex in a degree-adaptive
//! [`HybridAdjacency`] (gt-graph): the common small-degree case stays in
//! an inline sorted array, hubs promote to a map. The serial store's
//! shard threads and `sharded.rs`'s per-shard workers both build on this
//! type, so the two code paths cannot drift apart.

use std::collections::HashMap;

use gt_core::prelude::*;
use gt_graph::HybridAdjacency;

/// The vertex and edge state held by one shard worker.
#[derive(Debug, Default)]
pub struct PartitionState {
    vertices: HashMap<VertexId, State>,
    /// Outgoing adjacency with per-edge state, keyed by source vertex.
    out: HashMap<VertexId, HybridAdjacency<State>>,
    edge_count: usize,
}

impl PartitionState {
    /// An empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices with explicit state.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges held locally.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Applies one graph event leniently (unknown entities are upserted
    /// or ignored, never an error — see the module docs).
    pub fn apply(&mut self, event: &GraphEvent) {
        match event {
            GraphEvent::AddVertex { id, state } | GraphEvent::UpdateVertex { id, state } => {
                self.vertices.insert(*id, state.clone());
            }
            GraphEvent::RemoveVertex { id } => {
                self.vertices.remove(id);
                if let Some(adj) = self.out.remove(id) {
                    self.edge_count -= adj.len();
                }
                // Reverse side: drop edges pointing at the removed vertex.
                let mut dropped = 0;
                self.out.retain(|_, adj| {
                    if adj.remove(*id).is_some() {
                        dropped += 1;
                    }
                    !adj.is_empty()
                });
                self.edge_count -= dropped;
            }
            GraphEvent::AddEdge { id, state } | GraphEvent::UpdateEdge { id, state } => {
                if self
                    .out
                    .entry(id.src)
                    .or_default()
                    .insert(id.dst, state.clone())
                    .is_none()
                {
                    self.edge_count += 1;
                }
            }
            GraphEvent::RemoveEdge { id } => {
                if let Some(adj) = self.out.get_mut(&id.src) {
                    if adj.remove(id.dst).is_some() {
                        self.edge_count -= 1;
                    }
                    if adj.is_empty() {
                        self.out.remove(&id.src);
                    }
                }
            }
        }
    }

    /// The state of a vertex, cloned for a reply channel.
    pub fn read_vertex(&self, id: VertexId) -> Option<State> {
        self.vertices.get(&id).cloned()
    }

    /// The state of an edge, cloned for a reply channel.
    pub fn read_edge(&self, id: EdgeId) -> Option<State> {
        self.out
            .get(&id.src)
            .and_then(|adj| adj.get(id.dst))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_edge(state: &mut PartitionState, src: u64, dst: u64, s: &str) {
        state.apply(&GraphEvent::AddEdge {
            id: EdgeId::from((src, dst)),
            state: State::new(s),
        });
    }

    #[test]
    fn lenient_upserts_and_reads() {
        let mut p = PartitionState::new();
        // Edges may arrive before their endpoints — kept verbatim.
        add_edge(&mut p, 1, 2, "w=1");
        p.apply(&GraphEvent::AddVertex {
            id: VertexId(1),
            state: State::new("v"),
        });
        assert_eq!(p.read_vertex(VertexId(1)).unwrap().as_str(), "v");
        assert_eq!(p.read_edge(EdgeId::from((1, 2))).unwrap().as_str(), "w=1");
        assert_eq!(p.read_edge(EdgeId::from((2, 1))), None);
        assert_eq!(p.edge_count(), 1);
        // UpdateEdge overwrites in place without changing the count.
        p.apply(&GraphEvent::UpdateEdge {
            id: EdgeId::from((1, 2)),
            state: State::new("w=2"),
        });
        assert_eq!(p.read_edge(EdgeId::from((1, 2))).unwrap().as_str(), "w=2");
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn remove_vertex_drops_both_edge_directions() {
        let mut p = PartitionState::new();
        add_edge(&mut p, 1, 2, "");
        add_edge(&mut p, 2, 1, "");
        add_edge(&mut p, 2, 3, "");
        p.apply(&GraphEvent::RemoveVertex { id: VertexId(1) });
        assert_eq!(p.read_edge(EdgeId::from((1, 2))), None);
        assert_eq!(p.read_edge(EdgeId::from((2, 1))), None);
        assert!(p.read_edge(EdgeId::from((2, 3))).is_some());
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn remove_edge_is_idempotent() {
        let mut p = PartitionState::new();
        add_edge(&mut p, 1, 2, "");
        p.apply(&GraphEvent::RemoveEdge {
            id: EdgeId::from((1, 2)),
        });
        p.apply(&GraphEvent::RemoveEdge {
            id: EdgeId::from((1, 2)),
        });
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.read_edge(EdgeId::from((1, 2))), None);
    }

    #[test]
    fn hub_degrees_promote_without_changing_reads() {
        let mut p = PartitionState::new();
        for dst in 0..64u64 {
            if dst != 7 {
                add_edge(&mut p, 7, dst, "x");
            }
        }
        assert_eq!(p.edge_count(), 63);
        assert_eq!(p.read_edge(EdgeId::from((7, 42))).unwrap().as_str(), "x");
        p.apply(&GraphEvent::RemoveVertex { id: VertexId(7) });
        assert_eq!(p.edge_count(), 0);
    }
}

//! The sharded store runtime: client → entity-affine router → N batched
//! per-shard sequencers.
//!
//! The serial [`crate::TideStore`] deliberately funnels every transaction
//! through one timestamper thread — the Weaver-style bottleneck the paper
//! measures (fig 3b/3c). This module is the scaling counter-move: the
//! global sequencer is replaced by a lock-free router that assigns each
//! event a global sequence number ([`std::sync::atomic::AtomicU64`]) and
//! forwards it to the shard owning its entity ([`crate::store::shard_for`]
//! — the same pure routing function the serial store's writers use). Each
//! shard runs its *own* sequencer, paying the ordering cost once per
//! received batch instead of once per transaction on a single thread, so
//! ordering work parallelizes N ways while the total order *within* each
//! partition is preserved: one entity's events always meet the same shard
//! in submission order.
//!
//! # Equivalence to the serial store
//!
//! The global sequence numbers are assigned at routing time, before any
//! shard queue is touched. With a single connector this numbering equals
//! the serial timestamper's commit order, so merging the per-shard logs
//! by sequence number at shutdown must reconstruct a bit-identical graph
//! — the property the differential harness
//! ([`gt_harness::differential`](../gt_harness/index.html)) pins.
//!
//! # Markers
//!
//! A marker records its *cut* — the router's sequence counter at the
//! moment the marker is submitted — and is then broadcast to every shard
//! (each shard logs it exactly once; [`ShardedClient::marker_barrier`]
//! additionally waits for every live shard to acknowledge). The cut is
//! recorded at the router rather than inside any shard, so it survives
//! shard crashes, and log entries below the cut are exactly the events
//! submitted before the marker.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, EvolvingGraph};
use gt_metrics::hub::Counter;
use gt_metrics::MetricsHub;
use gt_sut::WorkerSupervisor;
use gt_trace::{Probe, Stage, TracerCell};
use parking_lot::{Mutex, RwLock};

use crate::store::{busy_work, shard_for, shard_for_key, StoreConfig, StoreStats, Transaction};

/// A shard's committed write log: `(sequence number, event)` pairs in
/// apply order.
type ShardLog = Vec<(u64, SharedGraphEvent)>;

/// What a shard thread returns: its slot and its log (empty for a crash).
type ShardExit = (usize, ShardLog);

/// Shared per-shard marker sightings: `(interned name, shard)` in
/// processing order.
type MarkerSightings = Arc<Mutex<Vec<(Arc<str>, usize)>>>;

/// Work delivered to a shard's sequencer queue.
enum ShardJob {
    /// One transaction's slice for this shard, already sequence-stamped
    /// by the router. The shard pays the ordering cost once per batch —
    /// the "batched per-shard sequencer".
    Batch(Vec<(u64, SharedGraphEvent)>),
    /// A broadcast watermark; the optional channel acknowledges receipt
    /// (the marker barrier). The name is interned: the per-shard fan-out
    /// bumps a refcount instead of cloning a `String` per queue.
    Marker(Arc<str>, Option<Sender<()>>),
    ReadVertex(VertexId, Sender<Option<State>>),
    ReadEdge(EdgeId, Sender<Option<State>>),
    /// A simulated shard kill: discard state and log and exit.
    Crash,
    Stop,
}

/// The shard fabric: current senders (swapped on restart) + liveness.
struct Fabric {
    /// Write-locked only while a restart swaps a sender — which also
    /// excludes the router, so recovery never interleaves with routing.
    txs: RwLock<Vec<Sender<ShardJob>>>,
    alive: Vec<AtomicBool>,
}

/// Fault/recovery counters registered on the store's hub under the same
/// names the serial store uses, plus `store.marker_skips` for markers a
/// dead shard never saw.
#[derive(Clone)]
struct Counters {
    tx: Counter,
    events: Counter,
    crashes: Counter,
    restarts: Counter,
    events_lost: Counter,
    events_replayed: Counter,
    marker_skips: Counter,
}

impl Counters {
    fn register(hub: &MetricsHub) -> Self {
        Counters {
            tx: hub.counter("store.tx"),
            events: hub.counter("store.events"),
            crashes: hub.counter("store.crashes"),
            restarts: hub.counter("store.restarts"),
            events_lost: hub.counter("store.events_lost"),
            events_replayed: hub.counter("store.events_replayed"),
            marker_skips: hub.counter("store.marker_skips"),
        }
    }
}

/// Shared internals of the sharded runtime.
struct ShardedCore {
    fabric: Arc<Fabric>,
    handles: Mutex<Vec<JoinHandle<ShardExit>>>,
    /// `(sequence, event)` — populated only in supervised mode.
    retained: Mutex<Vec<(u64, SharedGraphEvent)>>,
    /// The router's global event sequence: assigned at submit time,
    /// before any queue send, so it is crash-safe and (with a single
    /// connector) equals the serial store's commit order.
    global_seq: AtomicU64,
    /// Marker cuts in submission order: `(name, sequence at the cut)`.
    cuts: Mutex<Vec<(String, u64)>>,
    /// Per-shard marker sightings: `(name, shard)` in processing order —
    /// the shard contract's "exactly once per shard" witness.
    shard_markers: MarkerSightings,
    config: StoreConfig,
    hub: MetricsHub,
    tracer_cell: TracerCell,
    /// Set by shutdown; blocks further restarts and submits.
    stopping: AtomicBool,
    counters: Counters,
}

impl ShardedCore {
    fn spawn_shard(&self, shard_id: usize, rx: Receiver<ShardJob>) -> JoinHandle<ShardExit> {
        let busy = self.hub.counter(&format!("shard-{shard_id}.busy_micros"));
        let applied = self.hub.counter(&format!("shard-{shard_id}.events"));
        let seq_cost = self.config.timestamper_cost_per_tx;
        let write_cost = self.config.shard_cost_per_event;
        let cell = self.tracer_cell.clone();
        let fabric = Arc::clone(&self.fabric);
        let crashes = self.counters.crashes.clone();
        let markers = Arc::clone(&self.shard_markers);
        std::thread::Builder::new()
            .name(format!("tide-store-seq-{shard_id}"))
            .spawn(move || {
                shard_loop(
                    shard_id, rx, seq_cost, write_cost, busy, applied, cell, fabric, crashes,
                    markers,
                )
            })
            .expect("spawn shard sequencer")
    }
}

/// The running sharded store.
pub struct ShardedStore {
    core: Arc<ShardedCore>,
}

/// A router client handle; cloneable. Each submit routes the
/// transaction's events to their owner shards under the fabric's read
/// lock, stamping each with the next global sequence number.
#[derive(Clone)]
pub struct ShardedClient {
    core: Arc<ShardedCore>,
}

impl ShardedStore {
    /// Starts the sharded store: `config.shards` sequencer threads and no
    /// central timestamper. `config.timestamper_cost_per_tx` is paid once
    /// per *shard batch* by the owning shard's sequencer;
    /// `config.shard_cost_per_event` per event as in the serial store.
    /// Metrics are registered on `hub` under the serial store's names
    /// (`store.tx`, `store.events`, `shard-N.busy_micros`, …).
    pub fn start(config: StoreConfig, hub: &MetricsHub) -> Self {
        assert!(config.shards >= 1, "at least one shard required");
        let mut txs: Vec<Sender<ShardJob>> = Vec::with_capacity(config.shards);
        let mut rxs: Vec<Receiver<ShardJob>> = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = bounded::<ShardJob>(config.queue_capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        let fabric = Arc::new(Fabric {
            txs: RwLock::new(txs),
            alive: (0..config.shards).map(|_| AtomicBool::new(true)).collect(),
        });
        let core = Arc::new(ShardedCore {
            fabric,
            handles: Mutex::new(Vec::with_capacity(config.shards)),
            retained: Mutex::new(Vec::new()),
            global_seq: AtomicU64::new(0),
            cuts: Mutex::new(Vec::new()),
            shard_markers: Arc::new(Mutex::new(Vec::new())),
            config,
            hub: hub.clone(),
            tracer_cell: TracerCell::new(),
            stopping: AtomicBool::new(false),
            counters: Counters::register(hub),
        });
        {
            let mut handles = core.handles.lock();
            for (shard_id, rx) in rxs.into_iter().enumerate() {
                handles.push(core.spawn_shard(shard_id, rx));
            }
        }
        ShardedStore { core }
    }

    /// A new router client handle.
    pub fn client(&self) -> ShardedClient {
        ShardedClient {
            core: Arc::clone(&self.core),
        }
    }

    /// The tracer slot shared with the shard threads (apply stamps are
    /// keyed by global sequence number, as in the serial store).
    pub fn tracer_cell(&self) -> &TracerCell {
        &self.core.tracer_cell
    }

    /// The store's crash/restart control surface, for chaos runs.
    pub fn supervisor(&self) -> Arc<dyn WorkerSupervisor> {
        Arc::new(ShardedSupervisor {
            core: Arc::clone(&self.core),
        })
    }

    /// Events routed (sequenced) so far.
    pub fn events_routed(&self) -> u64 {
        self.core.global_seq.load(Ordering::SeqCst)
    }

    /// Sum of the live shards' queue lengths.
    pub fn total_queue_len(&self) -> usize {
        let txs = self.core.fabric.txs.read();
        txs.iter()
            .enumerate()
            .filter(|(s, _)| self.core.fabric.alive[*s].load(Ordering::SeqCst))
            .map(|(_, tx)| tx.len())
            .sum()
    }

    /// Blocks until all live shard queues are empty and the applied-event
    /// count is stable across two polls, or the timeout elapses.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_applied = u64::MAX;
        loop {
            let queue = self.total_queue_len();
            let applied: u64 = (0..self.core.config.shards)
                .map(|s| self.core.hub.counter(&format!("shard-{s}.events")).get())
                .sum();
            if queue == 0 && applied == last_applied {
                return true;
            }
            last_applied = applied;
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Per-shard marker sightings so far: `(name, shard)` in processing
    /// order.
    pub fn shard_markers(&self) -> Vec<(String, usize)> {
        self.core
            .shard_markers
            .lock()
            .iter()
            .map(|(name, shard)| (name.to_string(), *shard))
            .collect()
    }

    /// Stops all shards, joins them tolerantly, and merges their logs by
    /// global sequence number into the committed graph — the same
    /// reconstruction the serial store performs over commit timestamps.
    pub fn shutdown(self) -> ShardedStats {
        self.core.stopping.store(true, Ordering::SeqCst);
        {
            let txs = self.core.fabric.txs.read();
            for tx in txs.iter() {
                let _ = tx.send(ShardJob::Stop);
            }
        }
        let handles: Vec<JoinHandle<ShardExit>> = {
            let mut guard = self.core.handles.lock();
            guard.drain(..).collect()
        };
        let mut per_shard_seqs: Vec<Vec<u64>> = vec![Vec::new(); self.core.config.shards];
        let mut all: Vec<(u64, SharedGraphEvent)> = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok((shard_id, log)) => {
                    // A restarted slot joins twice (dead thread first, with
                    // an empty log); appending keeps the rebuilt order.
                    per_shard_seqs[shard_id].extend(log.iter().map(|(seq, _)| *seq));
                    all.extend(log);
                }
                Err(_) => self.core.counters.crashes.inc(),
            }
        }
        all.sort_by_key(|(seq, _)| *seq);
        let mut graph = EvolvingGraph::new();
        let mut events = 0u64;
        for (_, event) in &all {
            let _ = graph.apply_with(event.event(), ApplyPolicy::Lenient);
            events += 1;
        }
        ShardedStats {
            store: StoreStats {
                transactions: self.core.counters.tx.get(),
                events,
                graph,
                crashes: self.core.counters.crashes.get(),
                restarts: self.core.counters.restarts.get(),
                events_lost: self.core.counters.events_lost.get(),
                events_replayed: self.core.counters.events_replayed.get(),
                markers: std::mem::take(&mut *self.core.cuts.lock()),
                log: all,
            },
            per_shard_seqs,
            shard_markers: self
                .core
                .shard_markers
                .lock()
                .drain(..)
                .map(|(name, shard)| (name.to_string(), shard))
                .collect(),
            marker_skips: self.core.counters.marker_skips.get(),
        }
    }
}

/// Final statistics of a sharded run: the merged [`StoreStats`] view plus
/// the per-shard evidence the shard contract tests assert on.
#[derive(Debug)]
pub struct ShardedStats {
    /// The merged view — same shape as the serial store's stats, with
    /// sequence numbers in the timestamp slots.
    pub store: StoreStats,
    /// Apply-order sequence numbers per shard slot. With a single
    /// connector and no faults each list is strictly increasing and
    /// equals the input subsequence routed to that shard.
    pub per_shard_seqs: Vec<Vec<u64>>,
    /// Marker sightings `(name, shard)` in processing order — every
    /// marker must appear exactly once per live shard.
    pub shard_markers: Vec<(String, usize)>,
    /// Markers that could not be delivered because a shard was dead.
    pub marker_skips: u64,
}

impl ShardedClient {
    /// Routes a transaction's events to their owner shards, stamping each
    /// with the next global sequence number. Blocks while an owner
    /// shard's queue is full (per-shard backpressure); events owed to a
    /// dead shard are counted lost, exactly like the serial store.
    pub fn submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        if self.core.stopping.load(Ordering::SeqCst) {
            return Err(transaction);
        }
        // Holding the read lock across sequencing *and* delivery means a
        // restart (write lock) can never observe a half-routed
        // transaction, and the retained log never misses an in-flight
        // event.
        let txs = self.core.fabric.txs.read();
        let shards = txs.len() as u64;
        let supervised = self.core.config.supervised;
        let mut slices: Vec<Vec<(u64, SharedGraphEvent)>> = vec![Vec::new(); txs.len()];
        for event in transaction.events {
            let seq = self.core.global_seq.fetch_add(1, Ordering::SeqCst);
            if supervised {
                self.core.retained.lock().push((seq, event.clone()));
            }
            let shard = shard_for(event.event(), shards) as usize;
            slices[shard].push((seq, event));
        }
        for (shard, slice) in slices.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let n = slice.len() as u64;
            if txs[shard].send(ShardJob::Batch(slice)).is_err() {
                self.core.counters.events_lost.add(n);
            } else {
                self.core.counters.events.add(n);
            }
        }
        self.core.counters.tx.inc();
        Ok(())
    }

    /// Submits a watermark: records its cut (the router's sequence
    /// counter right now) and broadcasts it to every shard. Dead shards
    /// are skipped and counted (`store.marker_skips`) — a degradation
    /// record, never a hang. Returns the number of shards reached.
    pub fn marker(&self, name: &str) -> usize {
        self.marker_with(name, None)
    }

    /// Like [`Self::marker`], but waits (up to `timeout`) until every
    /// shard that received the marker has processed it — the marker
    /// barrier. Returns the number of acknowledgements received.
    pub fn marker_barrier(&self, name: &str, timeout: Duration) -> usize {
        let (ack_tx, ack_rx) = bounded::<()>(self.core.config.shards);
        let sent = self.marker_with(name, Some(ack_tx));
        let deadline = Instant::now() + timeout;
        let mut acked = 0usize;
        while acked < sent {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || ack_rx.recv_timeout(left).is_err() {
                break;
            }
            acked += 1;
        }
        acked
    }

    fn marker_with(&self, name: &str, ack: Option<Sender<()>>) -> usize {
        // The cut is recorded at the router, not inside any shard: it
        // survives shard crashes and needs no cross-shard coordination.
        let cut = self.core.global_seq.load(Ordering::SeqCst);
        self.core.cuts.lock().push((name.to_owned(), cut));
        // Intern once; the per-shard fan-out clones refcounts, not Strings.
        let name = gt_core::intern::intern(name);
        let txs = self.core.fabric.txs.read();
        let mut reached = 0usize;
        for tx in txs.iter() {
            if tx
                .send(ShardJob::Marker(Arc::clone(&name), ack.clone()))
                .is_ok()
            {
                reached += 1;
            } else {
                self.core.counters.marker_skips.inc();
            }
        }
        reached
    }

    /// Reads a vertex's current state from its owner shard, ordered
    /// behind every write this client routed to that shard before.
    pub fn read_vertex(&self, id: VertexId) -> Result<Option<State>, crate::store::StoreClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        {
            let txs = self.core.fabric.txs.read();
            let shard = shard_for_key(id.0, txs.len() as u64) as usize;
            txs[shard]
                .send(ShardJob::ReadVertex(id, reply_tx))
                .map_err(|_| crate::store::StoreClosed)?;
        }
        reply_rx.recv().map_err(|_| crate::store::StoreClosed)
    }

    /// Reads an edge's current state from the shard owning its source.
    pub fn read_edge(&self, id: EdgeId) -> Result<Option<State>, crate::store::StoreClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        {
            let txs = self.core.fabric.txs.read();
            let shard = shard_for_key(id.src.0, txs.len() as u64) as usize;
            txs[shard]
                .send(ShardJob::ReadEdge(id, reply_tx))
                .map_err(|_| crate::store::StoreClosed)?;
        }
        reply_rx.recv().map_err(|_| crate::store::StoreClosed)
    }
}

/// The sharded store's [`WorkerSupervisor`]: kills and resurrects
/// individual shard sequencers.
pub struct ShardedSupervisor {
    core: Arc<ShardedCore>,
}

impl WorkerSupervisor for ShardedSupervisor {
    fn worker_count(&self) -> usize {
        self.core.config.shards
    }

    fn inject_crash(&self, worker: usize) -> bool {
        if worker >= self.core.config.shards
            || self.core.stopping.load(Ordering::SeqCst)
            || !self.core.fabric.alive[worker].load(Ordering::SeqCst)
        {
            return false;
        }
        let txs = self.core.fabric.txs.read();
        txs[worker].send(ShardJob::Crash).is_ok()
    }

    /// Restarts a crashed shard (supervised mode only): with routing
    /// write-locked out, spawns a fresh sequencer and replays its share
    /// of the retained log — sorted by sequence number, so the rebuilt
    /// shard log keeps the per-partition total order.
    fn restart_worker(&self, worker: usize) -> bool {
        let config = &self.core.config;
        if worker >= config.shards || !config.supervised {
            return false;
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.core.fabric.alive[worker].load(Ordering::SeqCst) {
            if Instant::now() > deadline || self.core.stopping.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut txs = self.core.fabric.txs.write();
        if self.core.stopping.load(Ordering::SeqCst) {
            return false;
        }
        let (tx, rx) = bounded::<ShardJob>(config.queue_capacity);
        // Spawn first so the bounded queue drains while replay fills it.
        let handle = self.core.spawn_shard(worker, rx);
        let shards = config.shards as u64;
        let mut replay: Vec<(u64, SharedGraphEvent)> = {
            let retained = self.core.retained.lock();
            retained
                .iter()
                .filter(|(_, event)| shard_for(event.event(), shards) == worker as u64)
                .cloned()
                .collect()
        };
        replay.sort_by_key(|(seq, _)| *seq);
        let replayed = replay.len() as u64;
        for chunk in replay.chunks(64) {
            let _ = tx.send(ShardJob::Batch(chunk.to_vec()));
        }
        txs[worker] = tx;
        self.core.fabric.alive[worker].store(true, Ordering::SeqCst);
        self.core.handles.lock().push(handle);
        self.core.counters.restarts.inc();
        self.core.counters.events_replayed.add(replayed);
        true
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard_id: usize,
    rx: Receiver<ShardJob>,
    seq_cost: Duration,
    write_cost: Duration,
    busy: Counter,
    applied: Counter,
    tracer_cell: TracerCell,
    fabric: Arc<Fabric>,
    crashes: Counter,
    markers: MarkerSightings,
) -> ShardExit {
    let mut log: ShardLog = Vec::new();
    let mut trace_probe: Option<Probe> = None;
    // Partition-local read state (hybrid adjacency, lenient apply — see
    // `partition.rs`; the merged reconstruction at shutdown is
    // authoritative).
    let mut state = crate::partition::PartitionState::new();
    while let Ok(job) = rx.recv() {
        match job {
            ShardJob::Batch(batch) => {
                let start = Instant::now();
                // The per-shard sequencer: ordering cost once per batch.
                busy_work(seq_cost);
                for (seq, event) in batch {
                    busy_work(write_cost);
                    state.apply(event.event());
                    log.push((seq, event));
                    applied.inc();
                    if trace_probe.is_none() {
                        trace_probe = tracer_cell.probe(Stage::EngineApply);
                    }
                    if let Some(probe) = &trace_probe {
                        probe.stamp_seq(seq);
                    }
                }
                busy.add(start.elapsed().as_micros() as u64);
            }
            ShardJob::Marker(name, ack) => {
                markers.lock().push((name, shard_id));
                if let Some(ack) = ack {
                    let _ = ack.send(());
                }
            }
            ShardJob::ReadVertex(id, reply) => {
                let _ = reply.send(state.read_vertex(id));
            }
            ShardJob::ReadEdge(id, reply) => {
                let _ = reply.send(state.read_edge(id));
            }
            ShardJob::Crash => {
                fabric.alive[shard_id].store(false, Ordering::SeqCst);
                crashes.inc();
                return (shard_id, Vec::new());
            }
            ShardJob::Stop => break,
        }
    }
    (shard_id, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(shards: usize) -> StoreConfig {
        StoreConfig {
            shards,
            timestamper_cost_per_tx: Duration::ZERO,
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 64,
            supervised: false,
        }
    }

    fn vertex_events(n: u64) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
            .collect()
    }

    #[test]
    fn sharded_store_commits_and_reconstructs() {
        let hub = MetricsHub::new();
        let store = ShardedStore::start(fast_config(4), &hub);
        let client = store.client();
        for event in vertex_events(100) {
            client.submit(Transaction::single(event)).unwrap();
        }
        assert!(store.quiesce(Duration::from_secs(5)));
        let stats = store.shutdown();
        assert_eq!(stats.store.events, 100);
        assert_eq!(stats.store.graph.vertex_count(), 100);
        // Sequence numbers cover 0..100 exactly once after the merge.
        let seqs: Vec<u64> = stats.store.log.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn per_shard_logs_preserve_submission_order() {
        let hub = MetricsHub::new();
        let store = ShardedStore::start(fast_config(3), &hub);
        let client = store.client();
        let events = vertex_events(200);
        for event in &events {
            client.submit(Transaction::single(event.clone())).unwrap();
        }
        assert!(store.quiesce(Duration::from_secs(5)));
        let stats = store.shutdown();
        for (shard, seqs) in stats.per_shard_seqs.iter().enumerate() {
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "shard {shard} log out of order: {seqs:?}"
            );
            let expected: Vec<u64> = (0..200u64)
                .filter(|i| shard_for(&events[*i as usize], 3) == shard as u64)
                .collect();
            assert_eq!(seqs, &expected, "shard {shard}");
        }
    }

    #[test]
    fn markers_cut_and_reach_every_shard() {
        let hub = MetricsHub::new();
        let store = ShardedStore::start(fast_config(4), &hub);
        let client = store.client();
        for event in vertex_events(10) {
            client.submit(Transaction::single(event)).unwrap();
        }
        let acked = client.marker_barrier("mid", Duration::from_secs(5));
        assert_eq!(acked, 4);
        for event in vertex_events(10).into_iter().map(|e| match e {
            GraphEvent::AddVertex { id, state } => GraphEvent::AddVertex {
                id: VertexId(id.0 + 100),
                state,
            },
            other => other,
        }) {
            client.submit(Transaction::single(event)).unwrap();
        }
        assert!(store.quiesce(Duration::from_secs(5)));
        let stats = store.shutdown();
        assert_eq!(stats.store.markers, vec![("mid".to_owned(), 10)]);
        let sightings: Vec<usize> = stats
            .shard_markers
            .iter()
            .filter(|(name, _)| name == "mid")
            .map(|(_, shard)| *shard)
            .collect();
        let mut sorted = sightings.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "exactly once per shard");
        assert_eq!(stats.marker_skips, 0);
    }

    #[test]
    fn crash_and_supervised_restart_rebuild_the_shard() {
        let hub = MetricsHub::new();
        let store = ShardedStore::start(
            StoreConfig {
                supervised: true,
                ..fast_config(2)
            },
            &hub,
        );
        let client = store.client();
        let events = vertex_events(50);
        for event in &events[..25] {
            client.submit(Transaction::single(event.clone())).unwrap();
        }
        let supervisor = store.supervisor();
        assert!(supervisor.inject_crash(0));
        assert!(supervisor.restart_worker(0));
        for event in &events[25..] {
            client.submit(Transaction::single(event.clone())).unwrap();
        }
        assert!(store.quiesce(Duration::from_secs(5)));
        let stats = store.shutdown();
        // Replay rebuilt the crashed shard: the merged graph is complete.
        assert_eq!(stats.store.graph.vertex_count(), 50);
        assert_eq!(stats.store.crashes, 1);
        assert_eq!(stats.store.restarts, 1);
    }
}

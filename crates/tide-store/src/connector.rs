//! The platform-specific connector plugging the store into the replayer
//! (§4.1: "the analyst either plugs a platform-specific connector into the
//! graph stream replayer component, or provides logic within the platform").
//!
//! [`BatchingConnector`] implements [`gt_replayer::EventSink`]: it groups
//! incoming graph events into transactions of a configurable size — the
//! paper's "single transaction per event vs. 10 events batched as 1
//! transaction" experiment axis — and submits them to a [`StoreClient`],
//! inheriting the store's backpressure (a full store visibly slows the
//! replayer, which is exactly the backthrottling Figure 3b shows).

use std::io;

use gt_core::prelude::*;
use gt_replayer::EventSink;
use gt_trace::Probe;

use crate::sharded::ShardedClient;
use crate::store::{StoreClient, Transaction};

/// The client surface a [`BatchingConnector`] writes into: both the serial
/// store's [`StoreClient`] (one global timestamper) and the sharded
/// runtime's [`ShardedClient`] (router + per-shard sequencers) implement
/// it, so one connector serves the serial/sharded A/B without separate
/// plumbing.
pub trait StoreFrontend: Send {
    /// Submits a transaction, blocking on backpressure; returns the
    /// transaction back when the store has shut down.
    fn submit(&self, transaction: Transaction) -> Result<(), Transaction>;
    /// Submits a watermark so the store records the marker's cut.
    fn marker(&self, name: &str);
}

impl StoreFrontend for StoreClient {
    fn submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        StoreClient::submit(self, transaction)
    }

    fn marker(&self, name: &str) {
        let _ = StoreClient::marker(self, name);
    }
}

impl StoreFrontend for ShardedClient {
    fn submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        ShardedClient::submit(self, transaction)
    }

    fn marker(&self, name: &str) {
        let _ = ShardedClient::marker(self, name);
    }
}

/// Batches replayed events into store transactions.
///
/// The batched sink path ([`EventSink::send_batch`]) shares the replayer's
/// event allocations into the transaction — only the `Arc` is cloned per
/// event. The per-event [`EventSink::send`] fallback still accepts borrowed
/// entries (and must copy them once into shared handles).
pub struct BatchingConnector<C: StoreFrontend = StoreClient> {
    client: C,
    batch_size: usize,
    pending: Vec<SharedGraphEvent>,
    submitted_tx: u64,
    submitted_events: u64,
    trace_probe: Option<Probe>,
}

impl<C: StoreFrontend> BatchingConnector<C> {
    /// A connector committing `batch_size` events per transaction.
    ///
    /// # Panics
    /// If `batch_size` is zero.
    pub fn new(client: C, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchingConnector {
            client,
            batch_size,
            pending: Vec::with_capacity(batch_size),
            submitted_tx: 0,
            submitted_events: 0,
            trace_probe: None,
        }
    }

    /// Attaches a Level-2 tracepoint (normally
    /// [`gt_trace::Stage::ConnectorRecv`]) stamped once per received
    /// graph event, in stream order.
    #[must_use]
    pub fn with_trace_probe(mut self, probe: Probe) -> Self {
        self.trace_probe = Some(probe);
        self
    }

    /// Transactions submitted so far.
    pub fn submitted_transactions(&self) -> u64 {
        self.submitted_tx
    }

    /// Events submitted so far (excludes events still pending).
    pub fn submitted_events(&self) -> u64 {
        self.submitted_events
    }

    /// Events accumulated but not yet submitted.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn push(&mut self, event: SharedGraphEvent) -> io::Result<()> {
        // Every graph event passes through here exactly once, in stream
        // order — the connector-receive tracepoint.
        if let Some(probe) = &self.trace_probe {
            probe.stamp();
        }
        self.pending.push(event);
        if self.pending.len() >= self.batch_size {
            self.submit_pending()?;
        }
        Ok(())
    }

    fn submit_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        // Drain rather than take: the transaction gets an exactly-sized
        // allocation while `pending` keeps its capacity for the next batch.
        let events: Vec<SharedGraphEvent> = self.pending.drain(..).collect();
        let count = events.len() as u64;
        self.client
            .submit(Transaction { events })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "store shut down"))?;
        self.submitted_tx += 1;
        self.submitted_events += count;
        Ok(())
    }

    /// Flushes pending events, then forwards the marker to the store so
    /// the cut is recorded with everything streamed before it sequenced
    /// first.
    fn forward_marker(&mut self, name: &str) -> io::Result<()> {
        self.submit_pending()?;
        self.client.marker(name);
        Ok(())
    }
}

impl<C: StoreFrontend> EventSink for BatchingConnector<C> {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        match entry {
            StreamEntry::Graph(event) => self.push(SharedGraphEvent::new(event.clone())),
            // Markers flush so that everything streamed before the marker
            // is committed when the marker's timestamp is taken.
            StreamEntry::Marker(name) => self.forward_marker(name),
            StreamEntry::Control(_) => Ok(()),
        }
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        for entry in batch {
            match SharedGraphEvent::from_entry(entry) {
                Some(event) => self.push(event)?,
                None => {
                    if let StreamEntry::Marker(name) = &**entry {
                        self.forward_marker(name)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.submit_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{StoreConfig, TideStore};
    use gt_metrics::MetricsHub;
    use gt_replayer::{Replayer, ReplayerConfig};
    use std::time::Duration;

    fn fast_store(hub: &MetricsHub) -> TideStore {
        TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::ZERO,
                shard_cost_per_event: Duration::ZERO,
                queue_capacity: 64,
                supervised: false,
            },
            hub,
        )
    }

    fn stream(n: u64) -> GraphStream {
        let mut s: GraphStream = (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        s.push(StreamEntry::marker("end"));
        s
    }

    #[test]
    fn batches_exactly() {
        let hub = MetricsHub::new();
        let store = fast_store(&hub);
        let mut connector = BatchingConnector::new(store.client(), 10);
        for entry in stream(25) {
            connector.send(&entry).unwrap();
        }
        connector.flush().unwrap();
        // 25 events: two full batches, marker flushes the remaining 5.
        assert_eq!(connector.submitted_transactions(), 3);
        let stats = store.shutdown();
        assert_eq!(stats.events, 25);
        assert_eq!(stats.transactions, 3);
    }

    #[test]
    fn replayer_to_store_end_to_end() {
        let hub = MetricsHub::new();
        let store = fast_store(&hub);
        let mut connector = BatchingConnector::new(store.client(), 1);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        });
        let report = replayer
            .replay_stream(&stream(200), &mut connector)
            .unwrap();
        assert_eq!(report.graph_events, 200);
        let stats = store.shutdown();
        assert_eq!(stats.events, 200);
        assert_eq!(stats.graph.vertex_count(), 200);
    }

    #[test]
    fn batched_dispatch_shares_events_and_flushes_at_markers() {
        let hub = MetricsHub::new();
        let store = fast_store(&hub);
        let mut connector = BatchingConnector::new(store.client(), 10);
        let entries: Vec<SharedEntry> = stream(25)
            .into_entries()
            .into_iter()
            .map(SharedEntry::new)
            .collect();
        connector.send_batch(&entries).unwrap();
        // 25 events: two full batches, the trailing marker flushes the 5.
        assert_eq!(connector.submitted_transactions(), 3);
        assert_eq!(connector.submitted_events(), 25);
        assert_eq!(connector.pending_len(), 0);
        let stats = store.shutdown();
        assert_eq!(stats.events, 25);
        assert_eq!(stats.graph.vertex_count(), 25);
    }

    #[test]
    fn pending_buffer_keeps_capacity_across_batches() {
        let hub = MetricsHub::new();
        let store = fast_store(&hub);
        let mut connector = BatchingConnector::new(store.client(), 16);
        for entry in stream(100).into_entries() {
            connector.send(&entry).unwrap();
        }
        connector.flush().unwrap();
        assert!(
            connector.pending.capacity() >= 16,
            "pending buffer lost its allocation: capacity {}",
            connector.pending.capacity()
        );
        store.shutdown();
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let hub = MetricsHub::new();
        let store = fast_store(&hub);
        let _ = BatchingConnector::new(store.client(), 0);
    }
}

//! The store runtime: client → timestamper → shards.

use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, EvolvingGraph};
use gt_metrics::hub::{Counter, Gauge};
use gt_metrics::MetricsHub;
use gt_trace::{Probe, Stage, TracerCell};

/// Store configuration.
///
/// The two cost knobs model where a Weaver-class system spends its time:
/// global transaction ordering (timestamper, per transaction) and
/// partition writes (shards, per event). The throughput ceiling for a
/// batch size `k` is approximately
/// `k / max(timestamper_cost_per_tx, k * shard_cost_per_event / shards)`.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Simulated ordering cost per transaction at the timestamper.
    pub timestamper_cost_per_tx: Duration,
    /// Simulated write cost per event at a shard.
    pub shard_cost_per_event: Duration,
    /// Capacity of the client→timestamper and timestamper→shard queues;
    /// full queues backpressure the sender (the paper's "backthrottling").
    pub queue_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::from_micros(800),
            shard_cost_per_event: Duration::from_micros(20),
            queue_capacity: 256,
        }
    }
}

/// A write transaction: a batch of graph events committed atomically under
/// one global timestamp.
///
/// Events are carried as [`SharedGraphEvent`] handles: a transaction built
/// from the batched connector path shares the replayer's allocations all
/// the way into the shard logs — no per-event payload copies.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// The events of the transaction, applied in order.
    pub events: Vec<SharedGraphEvent>,
}

impl Transaction {
    /// A single-event transaction.
    pub fn single(event: impl Into<SharedGraphEvent>) -> Self {
        Transaction {
            events: vec![event.into()],
        }
    }

    /// A transaction over owned events (wraps each in a shared handle).
    pub fn from_events(events: impl IntoIterator<Item = GraphEvent>) -> Self {
        Transaction {
            events: events.into_iter().map(SharedGraphEvent::new).collect(),
        }
    }
}

/// Ingestion-channel message: client traffic or the shutdown sentinel.
/// The sentinel (rather than channel disconnect) ends the timestamper, so
/// shutdown completes even while client handles are still alive.
enum ClientMsg {
    Tx(Transaction),
    /// A read transaction: routed through the timestamper like any other
    /// transaction, so reads are ordered against writes (the refinable-
    /// timestamp discipline, simplified to a single global sequencer).
    ReadVertex(VertexId, Sender<Option<State>>),
    ReadEdge(EdgeId, Sender<Option<State>>),
    Shutdown,
}

/// A client handle; cloneable, blocking on backpressure.
#[derive(Clone)]
pub struct StoreClient {
    tx: Sender<ClientMsg>,
}

impl StoreClient {
    /// Submits a transaction, blocking while the ingestion queue is full.
    /// Errors when the store has shut down.
    pub fn submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        self.tx
            .send(ClientMsg::Tx(transaction))
            .map_err(|e| match e.0 {
                ClientMsg::Tx(tx) => tx,
                _ => unreachable!("clients only send transactions"),
            })
    }

    /// Non-blocking submit; returns the transaction back on a full queue.
    pub fn try_submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        self.tx
            .try_send(ClientMsg::Tx(transaction))
            .map_err(|e| match e.into_inner() {
                ClientMsg::Tx(tx) => tx,
                _ => unreachable!("clients only send transactions"),
            })
    }

    /// Reads a vertex's current state as a transaction: the read is
    /// ordered behind every write submitted before it on this client.
    /// `None` if the vertex does not exist; `Err(StoreClosed)` if the
    /// store has shut down.
    pub fn read_vertex(&self, id: VertexId) -> Result<Option<State>, StoreClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ClientMsg::ReadVertex(id, reply_tx))
            .map_err(|_| StoreClosed)?;
        reply_rx.recv().map_err(|_| StoreClosed)
    }

    /// Reads an edge's current state; same semantics as
    /// [`Self::read_vertex`].
    pub fn read_edge(&self, id: EdgeId) -> Result<Option<State>, StoreClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ClientMsg::ReadEdge(id, reply_tx))
            .map_err(|_| StoreClosed)?;
        reply_rx.recv().map_err(|_| StoreClosed)
    }
}

/// The store has shut down and can no longer serve reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreClosed;

impl std::fmt::Display for StoreClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store has shut down")
    }
}

impl std::error::Error for StoreClosed {}

/// Final statistics and state after shutdown.
#[derive(Debug)]
pub struct StoreStats {
    /// Transactions committed.
    pub transactions: u64,
    /// Events applied across all shards.
    pub events: u64,
    /// The reconstructed graph (all shard logs merged in timestamp order).
    pub graph: EvolvingGraph,
}

enum ShardMsg {
    Apply(u64, SharedGraphEvent),
    ReadVertex(VertexId, Sender<Option<State>>),
    ReadEdge(EdgeId, Sender<Option<State>>),
    Stop,
}

/// A shard's committed write log: `(timestamp, event)` pairs.
type ShardLog = Vec<(u64, SharedGraphEvent)>;

/// The running store.
pub struct TideStore {
    client_tx: Option<Sender<ClientMsg>>,
    timestamper: Option<JoinHandle<u64>>,
    shards: Option<Vec<JoinHandle<ShardLog>>>,
    events_counter: Counter,
    tx_counter: Counter,
    /// Lazily installed Level-2 tracer shared with the shard threads,
    /// which spawn in [`TideStore::start`] — before any tracer exists.
    tracer_cell: TracerCell,
}

/// Burns CPU for the given duration (simulated component work). Spinning —
/// not sleeping — so the busy time is real CPU time that a Level-0
/// process sampler can observe.
fn busy_work(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let end = Instant::now() + cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

impl TideStore {
    /// Starts the store: one timestamper thread and `config.shards` shard
    /// threads. Metrics are registered on `hub`:
    ///
    /// * `store.tx` / `store.events` — committed counts,
    /// * `timestamper.busy_micros`, `shard-N.busy_micros` — per-component
    ///   simulated CPU time,
    /// * `timestamper.queue` — ingestion queue length gauge.
    pub fn start(config: StoreConfig, hub: &MetricsHub) -> Self {
        assert!(config.shards >= 1, "at least one shard required");
        let (client_tx, client_rx) = bounded::<ClientMsg>(config.queue_capacity);
        let tracer_cell = TracerCell::new();

        let mut shard_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(config.shards);
        let mut shard_handles = Vec::with_capacity(config.shards);
        for shard_id in 0..config.shards {
            let (tx, rx) = bounded::<ShardMsg>(config.queue_capacity);
            shard_txs.push(tx);
            let busy = hub.counter(&format!("shard-{shard_id}.busy_micros"));
            let applied = hub.counter(&format!("shard-{shard_id}.events"));
            let cost = config.shard_cost_per_event;
            let cell = tracer_cell.clone();
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("tide-store-shard-{shard_id}"))
                    .spawn(move || shard_loop(rx, cost, busy, applied, cell))
                    .expect("spawn shard"),
            );
        }

        let events_counter = hub.counter("store.events");
        let tx_counter = hub.counter("store.tx");
        let ts_busy = hub.counter("timestamper.busy_micros");
        let ts_queue = hub.gauge("timestamper.queue");
        let ts_cost = config.timestamper_cost_per_tx;
        let events_counter_t = events_counter.clone();
        let tx_counter_t = tx_counter.clone();
        let timestamper = std::thread::Builder::new()
            .name("tide-store-timestamper".into())
            .spawn(move || {
                timestamper_loop(
                    client_rx,
                    shard_txs,
                    ts_cost,
                    ts_busy,
                    ts_queue,
                    tx_counter_t,
                    events_counter_t,
                )
            })
            .expect("spawn timestamper");

        TideStore {
            client_tx: Some(client_tx),
            timestamper: Some(timestamper),
            shards: Some(shard_handles),
            events_counter,
            tx_counter,
            tracer_cell,
        }
    }

    /// The tracer slot shared with the shard threads. Installing a
    /// [`gt_trace::Tracer`] here makes every shard stamp applied events
    /// at [`Stage::EngineApply`], keyed by their global commit timestamp
    /// — which equals the event's global stream position, so the stamps
    /// match the replayer-side stages without any event metadata.
    pub fn tracer_cell(&self) -> &TracerCell {
        &self.tracer_cell
    }

    /// A new client handle.
    pub fn client(&self) -> StoreClient {
        StoreClient {
            tx: self
                .client_tx
                .as_ref()
                .expect("store not shut down")
                .clone(),
        }
    }

    /// Events committed so far (live).
    pub fn events_committed(&self) -> u64 {
        self.events_counter.get()
    }

    /// Transactions committed so far (live).
    pub fn transactions_committed(&self) -> u64 {
        self.tx_counter.get()
    }

    /// Stops ingestion, drains all queues, joins all threads, and
    /// reconstructs the committed graph from the shard logs.
    ///
    /// Everything enqueued before this call commits; client handles that
    /// outlive the store receive errors on subsequent submits.
    pub fn shutdown(mut self) -> StoreStats {
        let client_tx = self.client_tx.take().expect("not yet shut down");
        // A sentinel (not channel disconnect) ends the timestamper, so
        // shutdown completes even while client clones are still alive.
        let _ = client_tx.send(ClientMsg::Shutdown);
        drop(client_tx);
        let transactions = self
            .timestamper
            .take()
            .expect("not yet shut down")
            .join()
            .expect("timestamper panicked");
        let mut all: Vec<(u64, SharedGraphEvent)> = Vec::new();
        for handle in self.shards.take().expect("not yet shut down") {
            all.extend(handle.join().expect("shard panicked"));
        }
        all.sort_by_key(|(ts, _)| *ts);
        let mut graph = EvolvingGraph::new();
        let mut events = 0u64;
        for (_, event) in &all {
            let _ = graph.apply_with(event.event(), ApplyPolicy::Lenient);
            events += 1;
        }
        StoreStats {
            transactions,
            events,
            graph,
        }
    }
}

fn timestamper_loop(
    client_rx: Receiver<ClientMsg>,
    shard_txs: Vec<Sender<ShardMsg>>,
    cost: Duration,
    busy: Counter,
    queue: Gauge,
    tx_counter: Counter,
    events_counter: Counter,
) -> u64 {
    let shards = shard_txs.len() as u64;
    let mut next_ts = 0u64;
    let mut committed = 0u64;
    while let Ok(msg) = client_rx.recv() {
        let transaction = match msg {
            ClientMsg::Tx(tx) => tx,
            ClientMsg::ReadVertex(id, reply) => {
                // Reads pay the ordering cost like any transaction.
                let start = Instant::now();
                busy_work(cost);
                busy.add(start.elapsed().as_micros() as u64);
                let shard = shard_for_key(id.0, shards);
                if shard_txs[shard as usize]
                    .send(ShardMsg::ReadVertex(id, reply))
                    .is_err()
                {
                    return committed;
                }
                continue;
            }
            ClientMsg::ReadEdge(id, reply) => {
                let start = Instant::now();
                busy_work(cost);
                busy.add(start.elapsed().as_micros() as u64);
                let shard = shard_for_key(id.src.0, shards);
                if shard_txs[shard as usize]
                    .send(ShardMsg::ReadEdge(id, reply))
                    .is_err()
                {
                    return committed;
                }
                continue;
            }
            ClientMsg::Shutdown => break,
        };
        queue.set(client_rx.len() as i64);
        // Global ordering: the serial, per-transaction cost.
        let start = Instant::now();
        busy_work(cost);
        busy.add(start.elapsed().as_micros() as u64);

        for event in transaction.events {
            let ts = next_ts;
            next_ts += 1;
            let shard = shard_for(event.event(), shards);
            // Blocking send: full shard queues backpressure the
            // timestamper, which in turn backpressures clients.
            if shard_txs[shard as usize]
                .send(ShardMsg::Apply(ts, event))
                .is_err()
            {
                return committed;
            }
            events_counter.inc();
        }
        committed += 1;
        tx_counter.inc();
    }
    for tx in &shard_txs {
        let _ = tx.send(ShardMsg::Stop);
    }
    committed
}

fn shard_loop(
    rx: Receiver<ShardMsg>,
    cost: Duration,
    busy: Counter,
    applied: Counter,
    tracer_cell: TracerCell,
) -> ShardLog {
    let mut log: ShardLog = Vec::new();
    // Lazily acquired apply tracepoint: the thread outlives tracer
    // installation, so it polls the cell (one atomic load while empty).
    let mut trace_probe: Option<Probe> = None;
    // Partition-local state for reads: vertex and edge states, applied
    // leniently (the cross-shard existence of endpoints cannot be checked
    // locally; the merged reconstruction at shutdown is authoritative).
    let mut vertices: std::collections::HashMap<VertexId, State> = std::collections::HashMap::new();
    let mut edges: std::collections::HashMap<EdgeId, State> = std::collections::HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Apply(ts, event) => {
                let start = Instant::now();
                busy_work(cost);
                busy.add(start.elapsed().as_micros() as u64);
                match event.event() {
                    GraphEvent::AddVertex { id, state }
                    | GraphEvent::UpdateVertex { id, state } => {
                        vertices.insert(*id, state.clone());
                    }
                    GraphEvent::RemoveVertex { id } => {
                        vertices.remove(id);
                        edges.retain(|e, _| e.src != *id && e.dst != *id);
                    }
                    GraphEvent::AddEdge { id, state } | GraphEvent::UpdateEdge { id, state } => {
                        edges.insert(*id, state.clone());
                    }
                    GraphEvent::RemoveEdge { id } => {
                        edges.remove(id);
                    }
                }
                log.push((ts, event));
                applied.inc();
                if trace_probe.is_none() {
                    trace_probe = tracer_cell.probe(Stage::EngineApply);
                }
                if let Some(probe) = &trace_probe {
                    // The commit timestamp is the event's global stream
                    // position: shards apply out of order, so the stamp
                    // carries it explicitly.
                    probe.stamp_seq(ts);
                }
            }
            ShardMsg::ReadVertex(id, reply) => {
                let _ = reply.send(vertices.get(&id).cloned());
            }
            ShardMsg::ReadEdge(id, reply) => {
                let _ = reply.send(edges.get(&id).cloned());
            }
            ShardMsg::Stop => break,
        }
    }
    log
}

/// Routing: vertex events go to the owner of the vertex, edge events to
/// the owner of the source vertex.
fn shard_for(event: &GraphEvent, shards: u64) -> u64 {
    let key = match event {
        GraphEvent::AddVertex { id, .. }
        | GraphEvent::RemoveVertex { id }
        | GraphEvent::UpdateVertex { id, .. } => id.0,
        GraphEvent::AddEdge { id, .. }
        | GraphEvent::RemoveEdge { id }
        | GraphEvent::UpdateEdge { id, .. } => id.src.0,
    };
    shard_for_key(key, shards)
}

/// Fibonacci hashing for an even spread of sequential ids.
fn shard_for_key(key: u64, shards: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> StoreConfig {
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::ZERO,
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 64,
        }
    }

    fn vertex_events(n: u64) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
            .collect()
    }

    #[test]
    fn commits_all_events_and_reconstructs_graph() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(100) {
            client.submit(Transaction::single(event)).unwrap();
        }
        // Edges between the vertices (cross-shard order must hold).
        for i in 1..100u64 {
            client
                .submit(Transaction::single(GraphEvent::AddEdge {
                    id: EdgeId::from((i - 1, i)),
                    state: State::empty(),
                }))
                .unwrap();
        }
        let stats = store.shutdown();
        assert_eq!(stats.transactions, 199);
        assert_eq!(stats.events, 199);
        assert_eq!(stats.graph.vertex_count(), 100);
        assert_eq!(stats.graph.edge_count(), 99);
        stats.graph.check_invariants().unwrap();
    }

    #[test]
    fn batched_transactions_commit_atomically_in_order() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for chunk in vertex_events(100).chunks(10) {
            client
                .submit(Transaction::from_events(chunk.iter().cloned()))
                .unwrap();
        }
        let stats = store.shutdown();
        assert_eq!(stats.transactions, 10);
        assert_eq!(stats.events, 100);
        assert_eq!(stats.graph.vertex_count(), 100);
    }

    #[test]
    fn live_counters_advance() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(10) {
            client.submit(Transaction::single(event)).unwrap();
        }
        // Drain by shutting down, then check hub counters.
        let stats = store.shutdown();
        assert_eq!(stats.events, 10);
        assert_eq!(hub.counter("store.events").get(), 10);
        assert_eq!(hub.counter("store.tx").get(), 10);
        let shard_total: u64 =
            hub.counter("shard-0.events").get() + hub.counter("shard-1.events").get();
        assert_eq!(shard_total, 10);
    }

    #[test]
    fn timestamper_cost_caps_throughput() {
        // 2 ms per tx ⇒ ceiling ≈ 500 tx/s. Offer far more for ~300 ms and
        // verify the commit rate respects the ceiling.
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::from_millis(2),
                shard_cost_per_event: Duration::ZERO,
                queue_capacity: 16,
            },
            &hub,
        );
        let client = store.client();
        let start = Instant::now();
        let mut submitted = 0u64;
        while start.elapsed() < Duration::from_millis(300) {
            if client
                .try_submit(Transaction::single(GraphEvent::AddVertex {
                    id: VertexId(submitted),
                    state: State::empty(),
                }))
                .is_ok()
            {
                submitted += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let committed_during = store.transactions_committed();
        let rate = committed_during as f64 / elapsed;
        assert!(
            rate < 750.0,
            "ceiling should hold near 500 tx/s, measured {rate}"
        );
        // And backpressure must have rejected most of the offered load.
        let stats = store.shutdown();
        assert!(stats.transactions >= committed_during);
    }

    #[test]
    fn batching_raises_event_ceiling() {
        // Same timestamper cost; 10 events per tx must commit far more
        // events in the same wall time than 1 event per tx.
        let run = |batch: usize| -> u64 {
            let hub = MetricsHub::new();
            let store = TideStore::start(
                StoreConfig {
                    shards: 2,
                    timestamper_cost_per_tx: Duration::from_micros(1_000),
                    shard_cost_per_event: Duration::ZERO,
                    queue_capacity: 16,
                },
                &hub,
            );
            let client = store.client();
            let start = Instant::now();
            let mut next_id = 0u64;
            while start.elapsed() < Duration::from_millis(250) {
                let events: Vec<GraphEvent> = (0..batch)
                    .map(|_| {
                        let id = next_id;
                        next_id += 1;
                        GraphEvent::AddVertex {
                            id: VertexId(id),
                            state: State::empty(),
                        }
                    })
                    .collect();
                let _ = client.try_submit(Transaction::from_events(events));
            }
            let committed = store.events_committed();
            store.shutdown();
            committed
        };
        let single = run(1);
        let batched = run(10);
        assert!(
            batched as f64 > single as f64 * 4.0,
            "batched {batched} vs single {single}"
        );
    }

    #[test]
    fn busy_accounting_shows_timestamper_dominating() {
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::from_micros(500),
                shard_cost_per_event: Duration::from_micros(10),
                queue_capacity: 16,
            },
            &hub,
        );
        let client = store.client();
        for event in vertex_events(200) {
            client.submit(Transaction::single(event)).unwrap();
        }
        store.shutdown();
        let ts_busy = hub.counter("timestamper.busy_micros").get();
        let shard_busy =
            hub.counter("shard-0.busy_micros").get() + hub.counter("shard-1.busy_micros").get();
        assert!(
            ts_busy > shard_busy * 5,
            "timestamper {ts_busy}µs vs shards {shard_busy}µs"
        );
    }

    #[test]
    fn reads_are_ordered_behind_writes() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        client
            .submit(Transaction::single(GraphEvent::AddVertex {
                id: VertexId(7),
                state: State::new("v1"),
            }))
            .unwrap();
        // Read-your-writes: the read is sequenced behind the write above.
        assert_eq!(
            client.read_vertex(VertexId(7)).unwrap(),
            Some(State::new("v1"))
        );
        assert_eq!(client.read_vertex(VertexId(8)).unwrap(), None);

        client
            .submit(Transaction::single(GraphEvent::UpdateVertex {
                id: VertexId(7),
                state: State::new("v2"),
            }))
            .unwrap();
        assert_eq!(
            client.read_vertex(VertexId(7)).unwrap(),
            Some(State::new("v2"))
        );
        store.shutdown();
    }

    #[test]
    fn edge_reads() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(2) {
            client.submit(Transaction::single(event)).unwrap();
        }
        let edge = EdgeId::from((0, 1));
        client
            .submit(Transaction::single(GraphEvent::AddEdge {
                id: edge,
                state: State::weight(2.5),
            }))
            .unwrap();
        assert_eq!(client.read_edge(edge).unwrap(), Some(State::weight(2.5)));
        client
            .submit(Transaction::single(GraphEvent::RemoveEdge { id: edge }))
            .unwrap();
        assert_eq!(client.read_edge(edge).unwrap(), None);
        store.shutdown();
    }

    #[test]
    fn reads_after_shutdown_error() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        store.shutdown();
        assert!(client.read_vertex(VertexId(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        TideStore::start(
            StoreConfig {
                shards: 0,
                ..fast_config()
            },
            &MetricsHub::new(),
        );
    }
}

//! The store runtime: client → timestamper → shards.
//!
//! # Crash containment and supervised recovery
//!
//! Shards are *crash-containable*: a [`ShardMsg::Crash`] delivered through
//! the store's [`gt_sut::WorkerSupervisor`] (see [`TideStore::supervisor`])
//! makes the shard discard its state and log and exit, like a killed
//! process. The timestamper keeps sequencing — events routed to a dead
//! shard are counted as lost (`store.events_lost`) instead of silently
//! ending the run (which is what the old early-return did), reads routed
//! to a dead shard fail with [`StoreClosed`] rather than hanging, and
//! shutdown joins dead shards tolerantly. In *supervised* mode
//! ([`StoreConfig::supervised`]) the timestamper additionally retains
//! every committed `(timestamp, event)` pair, so a crashed shard can be
//! restarted and rebuilt by replaying its share of the retained log with
//! the original timestamps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, EvolvingGraph};
use gt_metrics::hub::{Counter, Gauge};
use gt_metrics::MetricsHub;
use gt_sut::WorkerSupervisor;
use gt_trace::{Probe, Stage, TracerCell};
use parking_lot::{Mutex, RwLock};

/// Store configuration.
///
/// The two cost knobs model where a Weaver-class system spends its time:
/// global transaction ordering (timestamper, per transaction) and
/// partition writes (shards, per event). The throughput ceiling for a
/// batch size `k` is approximately
/// `k / max(timestamper_cost_per_tx, k * shard_cost_per_event / shards)`.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Simulated ordering cost per transaction at the timestamper.
    pub timestamper_cost_per_tx: Duration,
    /// Simulated write cost per event at a shard.
    pub shard_cost_per_event: Duration,
    /// Capacity of the client→timestamper and timestamper→shard queues;
    /// full queues backpressure the sender (the paper's "backthrottling").
    pub queue_capacity: usize,
    /// Retain every committed `(timestamp, event)` pair so crashed shards
    /// can be restarted with their state rebuilt by replay (the
    /// single-process stand-in for a durable write-ahead log). Costs
    /// memory proportional to the stream length; off by default.
    pub supervised: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::from_micros(800),
            shard_cost_per_event: Duration::from_micros(20),
            queue_capacity: 256,
            supervised: false,
        }
    }
}

/// A write transaction: a batch of graph events committed atomically under
/// one global timestamp.
///
/// Events are carried as [`SharedGraphEvent`] handles: a transaction built
/// from the batched connector path shares the replayer's allocations all
/// the way into the shard logs — no per-event payload copies.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// The events of the transaction, applied in order.
    pub events: Vec<SharedGraphEvent>,
}

impl Transaction {
    /// A single-event transaction.
    pub fn single(event: impl Into<SharedGraphEvent>) -> Self {
        Transaction {
            events: vec![event.into()],
        }
    }

    /// A transaction over owned events (wraps each in a shared handle).
    pub fn from_events(events: impl IntoIterator<Item = GraphEvent>) -> Self {
        Transaction {
            events: events.into_iter().map(SharedGraphEvent::new).collect(),
        }
    }
}

/// Ingestion-channel message: client traffic or the shutdown sentinel.
/// The sentinel (rather than channel disconnect) ends the timestamper, so
/// shutdown completes even while client handles are still alive.
enum ClientMsg {
    Tx(Transaction),
    /// A read transaction: routed through the timestamper like any other
    /// transaction, so reads are ordered against writes (the refinable-
    /// timestamp discipline, simplified to a single global sequencer).
    ReadVertex(VertexId, Sender<Option<State>>),
    ReadEdge(EdgeId, Sender<Option<State>>),
    /// A watermark: the timestamper records the current commit timestamp
    /// as the marker's *cut* — every event sequenced before the marker
    /// has a smaller timestamp, so the cut slices the merged log into
    /// the marker window's consistent prefix.
    Marker(String),
    Shutdown,
}

/// A client handle; cloneable, blocking on backpressure.
#[derive(Clone)]
pub struct StoreClient {
    tx: Sender<ClientMsg>,
}

impl StoreClient {
    /// Submits a transaction, blocking while the ingestion queue is full.
    /// Errors when the store has shut down.
    pub fn submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        self.tx
            .send(ClientMsg::Tx(transaction))
            .map_err(|e| match e.0 {
                ClientMsg::Tx(tx) => tx,
                _ => unreachable!("clients only send transactions"),
            })
    }

    /// Non-blocking submit; returns the transaction back on a full queue.
    pub fn try_submit(&self, transaction: Transaction) -> Result<(), Transaction> {
        self.tx
            .try_send(ClientMsg::Tx(transaction))
            .map_err(|e| match e.into_inner() {
                ClientMsg::Tx(tx) => tx,
                _ => unreachable!("clients only send transactions"),
            })
    }

    /// Reads a vertex's current state as a transaction: the read is
    /// ordered behind every write submitted before it on this client.
    /// `None` if the vertex does not exist; `Err(StoreClosed)` if the
    /// store has shut down — or if the owning shard has crashed (its
    /// partition is unavailable until a supervised restart).
    pub fn read_vertex(&self, id: VertexId) -> Result<Option<State>, StoreClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ClientMsg::ReadVertex(id, reply_tx))
            .map_err(|_| StoreClosed)?;
        reply_rx.recv().map_err(|_| StoreClosed)
    }

    /// Reads an edge's current state; same semantics as
    /// [`Self::read_vertex`].
    pub fn read_edge(&self, id: EdgeId) -> Result<Option<State>, StoreClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ClientMsg::ReadEdge(id, reply_tx))
            .map_err(|_| StoreClosed)?;
        reply_rx.recv().map_err(|_| StoreClosed)
    }

    /// Submits a watermark. The timestamper records the commit timestamp
    /// current when the marker is sequenced as the marker's cut — the
    /// boundary of that marker window in the merged commit log (see
    /// [`StoreStats::markers`]).
    pub fn marker(&self, name: &str) -> Result<(), StoreClosed> {
        self.tx
            .send(ClientMsg::Marker(name.to_owned()))
            .map_err(|_| StoreClosed)
    }
}

/// The store has shut down and can no longer serve reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreClosed;

impl std::fmt::Display for StoreClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store has shut down")
    }
}

impl std::error::Error for StoreClosed {}

/// Final statistics and state after shutdown.
#[derive(Debug)]
pub struct StoreStats {
    /// Transactions committed.
    pub transactions: u64,
    /// Events applied across all shards (merged log entries; a crashed,
    /// un-restarted shard's events are missing here).
    pub events: u64,
    /// The reconstructed graph (all shard logs merged in timestamp order).
    pub graph: EvolvingGraph,
    /// Shard deaths (injected crashes plus contained panics).
    pub crashes: u64,
    /// Supervised shard restarts.
    pub restarts: u64,
    /// Events that could not be delivered because their shard was dead.
    pub events_lost: u64,
    /// Events re-enqueued from the retained log on restarts.
    pub events_replayed: u64,
    /// Marker cuts, in sequencing order: `(marker name, commit timestamp
    /// at the cut)`. Log entries with a smaller timestamp belong to the
    /// window the marker closes.
    pub markers: Vec<(String, u64)>,
    /// The merged commit log the graph was reconstructed from, in
    /// timestamp order. Slicing it at a marker cut reproduces that
    /// window's graph state (the digest/differential path).
    pub log: Vec<(u64, SharedGraphEvent)>,
}

enum ShardMsg {
    Apply(u64, SharedGraphEvent),
    ReadVertex(VertexId, Sender<Option<State>>),
    ReadEdge(EdgeId, Sender<Option<State>>),
    /// A simulated shard kill: discard state and log and exit immediately,
    /// as if the process died. Queued like any message, so the crash lands
    /// at a deterministic position in the shard's message stream.
    Crash,
    Stop,
}

/// A shard's committed write log: `(timestamp, event)` pairs.
type ShardLog = Vec<(u64, SharedGraphEvent)>;

/// The retained commit log for supervised replay.
type Retained = Arc<Mutex<Vec<(u64, SharedGraphEvent)>>>;

/// The shard fabric shared by the timestamper, the shards themselves, and
/// the supervisor: the current sender of every shard slot (swapped on
/// restart, hence the lock) plus a liveness flag per slot.
struct ShardFabric {
    /// Write-locked only while a restart swaps a sender — which also
    /// excludes the timestamper's routing, so recovery never interleaves
    /// with the commit order.
    txs: RwLock<Vec<Sender<ShardMsg>>>,
    alive: Vec<AtomicBool>,
}

/// Counters describing fault/recovery activity, registered on the store's
/// hub (`store.crashes`, `store.restarts`, `store.events_lost`,
/// `store.events_replayed`).
#[derive(Clone)]
struct FaultCounters {
    crashes: Counter,
    restarts: Counter,
    events_lost: Counter,
    events_replayed: Counter,
}

impl FaultCounters {
    fn register(hub: &MetricsHub) -> Self {
        FaultCounters {
            crashes: hub.counter("store.crashes"),
            restarts: hub.counter("store.restarts"),
            events_lost: hub.counter("store.events_lost"),
            events_replayed: hub.counter("store.events_replayed"),
        }
    }
}

/// Everything a supervisor needs to kill and resurrect shards; shared
/// between the [`TideStore`] handle and [`StoreSupervisor`] clones.
struct StoreCore {
    fabric: Arc<ShardFabric>,
    handles: Mutex<Vec<JoinHandle<ShardLog>>>,
    retained: Retained,
    config: StoreConfig,
    hub: MetricsHub,
    tracer_cell: TracerCell,
    /// Set by shutdown; blocks further restarts.
    stopping: AtomicBool,
    counters: FaultCounters,
}

impl StoreCore {
    /// Spawns (or respawns) the shard for a slot, consuming the receiver
    /// side of its fresh queue. Hub metrics are looked up by name, so a
    /// restarted shard keeps accumulating on the same series.
    fn spawn_shard(&self, shard_id: usize, rx: Receiver<ShardMsg>) -> JoinHandle<ShardLog> {
        let busy = self.hub.counter(&format!("shard-{shard_id}.busy_micros"));
        let applied = self.hub.counter(&format!("shard-{shard_id}.events"));
        let cost = self.config.shard_cost_per_event;
        let cell = self.tracer_cell.clone();
        let fabric = Arc::clone(&self.fabric);
        let crashes = self.counters.crashes.clone();
        std::thread::Builder::new()
            .name(format!("tide-store-shard-{shard_id}"))
            .spawn(move || shard_loop(shard_id, rx, cost, busy, applied, cell, fabric, crashes))
            .expect("spawn shard")
    }
}

/// The running store.
pub struct TideStore {
    client_tx: Option<Sender<ClientMsg>>,
    timestamper: Option<JoinHandle<u64>>,
    core: Arc<StoreCore>,
    events_counter: Counter,
    tx_counter: Counter,
    /// Marker cuts recorded by the timestamper: `(name, commit ts)`.
    marker_cuts: Arc<Mutex<Vec<(String, u64)>>>,
}

/// Burns CPU for the given duration (simulated component work). Spinning —
/// not sleeping — so the busy time is real CPU time that a Level-0
/// process sampler can observe.
pub(crate) fn busy_work(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let end = Instant::now() + cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

impl TideStore {
    /// Starts the store: one timestamper thread and `config.shards` shard
    /// threads. Metrics are registered on `hub`:
    ///
    /// * `store.tx` / `store.events` — committed counts,
    /// * `timestamper.busy_micros`, `shard-N.busy_micros` — per-component
    ///   simulated CPU time,
    /// * `timestamper.queue` — ingestion queue length gauge,
    /// * `store.crashes` / `store.restarts` / `store.events_lost` /
    ///   `store.events_replayed` — fault and recovery activity.
    pub fn start(config: StoreConfig, hub: &MetricsHub) -> Self {
        assert!(config.shards >= 1, "at least one shard required");
        let (client_tx, client_rx) = bounded::<ClientMsg>(config.queue_capacity);
        let tracer_cell = TracerCell::new();

        let mut shard_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(config.shards);
        let mut shard_rxs: Vec<Receiver<ShardMsg>> = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = bounded::<ShardMsg>(config.queue_capacity);
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let fabric = Arc::new(ShardFabric {
            txs: RwLock::new(shard_txs),
            alive: (0..config.shards).map(|_| AtomicBool::new(true)).collect(),
        });
        let core = Arc::new(StoreCore {
            fabric: Arc::clone(&fabric),
            handles: Mutex::new(Vec::with_capacity(config.shards)),
            retained: Arc::new(Mutex::new(Vec::new())),
            config: config.clone(),
            hub: hub.clone(),
            tracer_cell: tracer_cell.clone(),
            stopping: AtomicBool::new(false),
            counters: FaultCounters::register(hub),
        });
        {
            let mut handles = core.handles.lock();
            for (shard_id, rx) in shard_rxs.into_iter().enumerate() {
                handles.push(core.spawn_shard(shard_id, rx));
            }
        }

        let events_counter = hub.counter("store.events");
        let tx_counter = hub.counter("store.tx");
        let ts_busy = hub.counter("timestamper.busy_micros");
        let ts_queue = hub.gauge("timestamper.queue");
        let ts_cost = config.timestamper_cost_per_tx;
        let events_counter_t = events_counter.clone();
        let tx_counter_t = tx_counter.clone();
        let retained = config.supervised.then(|| Arc::clone(&core.retained));
        let events_lost = core.counters.events_lost.clone();
        let marker_cuts: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let marker_cuts_t = Arc::clone(&marker_cuts);
        let timestamper = std::thread::Builder::new()
            .name("tide-store-timestamper".into())
            .spawn(move || {
                timestamper_loop(
                    client_rx,
                    fabric,
                    retained,
                    ts_cost,
                    ts_busy,
                    ts_queue,
                    tx_counter_t,
                    events_counter_t,
                    events_lost,
                    marker_cuts_t,
                )
            })
            .expect("spawn timestamper");

        TideStore {
            client_tx: Some(client_tx),
            timestamper: Some(timestamper),
            core,
            events_counter,
            tx_counter,
            marker_cuts,
        }
    }

    /// The tracer slot shared with the shard threads. Installing a
    /// [`gt_trace::Tracer`] here makes every shard stamp applied events
    /// at [`Stage::EngineApply`], keyed by their global commit timestamp
    /// — which equals the event's global stream position, so the stamps
    /// match the replayer-side stages without any event metadata.
    pub fn tracer_cell(&self) -> &TracerCell {
        &self.core.tracer_cell
    }

    /// The store's crash/restart control surface, for chaos runs. The
    /// handle shares the store's internals (not the store itself), so it
    /// stays valid until shutdown.
    pub fn supervisor(&self) -> Arc<dyn WorkerSupervisor> {
        Arc::new(StoreSupervisor {
            core: Arc::clone(&self.core),
        })
    }

    /// A new client handle.
    pub fn client(&self) -> StoreClient {
        StoreClient {
            tx: self
                .client_tx
                .as_ref()
                .expect("store not shut down")
                .clone(),
        }
    }

    /// Events committed so far (live).
    pub fn events_committed(&self) -> u64 {
        self.events_counter.get()
    }

    /// Transactions committed so far (live).
    pub fn transactions_committed(&self) -> u64 {
        self.tx_counter.get()
    }

    /// Stops ingestion, drains all queues, joins all threads, and
    /// reconstructs the committed graph from the shard logs.
    ///
    /// Everything enqueued before this call commits; client handles that
    /// outlive the store receive errors on subsequent submits. Crashed
    /// shards are joined tolerantly — their events are simply absent from
    /// the reconstruction (unless a supervised restart replayed them) —
    /// and a shard that *panicked* is contained and counted as a crash
    /// instead of poisoning the run.
    pub fn shutdown(mut self) -> StoreStats {
        self.core.stopping.store(true, Ordering::SeqCst);
        let client_tx = self.client_tx.take().expect("not yet shut down");
        // A sentinel (not channel disconnect) ends the timestamper, so
        // shutdown completes even while client clones are still alive.
        let _ = client_tx.send(ClientMsg::Shutdown);
        drop(client_tx);
        let transactions = match self.timestamper.take().expect("not yet shut down").join() {
            Ok(committed) => committed,
            // Contained timestamper panic: the run survives with the
            // live-counter value standing in for the return.
            Err(_) => self.tx_counter.get(),
        };
        // The timestamper sends Stop on its normal exit; repeat here so a
        // panicked timestamper cannot leave the shards running (the
        // duplicate is harmless — a stopped shard's channel rejects it).
        {
            let txs = self.core.fabric.txs.read();
            for tx in txs.iter() {
                let _ = tx.send(ShardMsg::Stop);
            }
        }
        let handles: Vec<JoinHandle<ShardLog>> = {
            let mut guard = self.core.handles.lock();
            guard.drain(..).collect()
        };
        let mut all: Vec<(u64, SharedGraphEvent)> = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(log) => all.extend(log),
                // Contained panic: the run survives, the death is counted.
                Err(_) => self.core.counters.crashes.inc(),
            }
        }
        all.sort_by_key(|(ts, _)| *ts);
        let mut graph = EvolvingGraph::new();
        let mut events = 0u64;
        for (_, event) in &all {
            let _ = graph.apply_with(event.event(), ApplyPolicy::Lenient);
            events += 1;
        }
        StoreStats {
            transactions,
            events,
            graph,
            crashes: self.core.counters.crashes.get(),
            restarts: self.core.counters.restarts.get(),
            events_lost: self.core.counters.events_lost.get(),
            events_replayed: self.core.counters.events_replayed.get(),
            markers: std::mem::take(&mut *self.marker_cuts.lock()),
            log: all,
        }
    }
}

/// The store's [`WorkerSupervisor`]: kills and resurrects individual
/// shards. Obtained from [`TideStore::supervisor`].
pub struct StoreSupervisor {
    core: Arc<StoreCore>,
}

impl WorkerSupervisor for StoreSupervisor {
    fn worker_count(&self) -> usize {
        self.core.config.shards
    }

    /// Enqueues a crash on the shard's queue. The kill lands behind the
    /// shard's current backlog — a deterministic position in its message
    /// stream — and the shard then discards its state and log and exits.
    fn inject_crash(&self, worker: usize) -> bool {
        if worker >= self.core.config.shards
            || self.core.stopping.load(Ordering::SeqCst)
            || !self.core.fabric.alive[worker].load(Ordering::SeqCst)
        {
            return false;
        }
        let txs = self.core.fabric.txs.read();
        txs[worker].send(ShardMsg::Crash).is_ok()
    }

    /// Restarts a crashed shard (supervised mode only): waits briefly for
    /// the crash to land, then — with the timestamper's routing
    /// write-locked out — spawns a fresh shard and replays its share of
    /// the retained commit log (original timestamps) into its new queue.
    fn restart_worker(&self, worker: usize) -> bool {
        let config = &self.core.config;
        if worker >= config.shards || !config.supervised {
            return false;
        }
        // The crash message travels through the shard's backlog; give it
        // time to land before declaring the restart impossible.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.core.fabric.alive[worker].load(Ordering::SeqCst) {
            if Instant::now() > deadline || self.core.stopping.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut txs = self.core.fabric.txs.write();
        if self.core.stopping.load(Ordering::SeqCst) {
            return false;
        }
        let (tx, rx) = bounded::<ShardMsg>(config.queue_capacity);
        // Spawn first so the bounded queue drains while replay fills it.
        let handle = self.core.spawn_shard(worker, rx);
        let shards = config.shards as u64;
        let mut replayed = 0u64;
        {
            let retained = self.core.retained.lock();
            for (ts, event) in retained.iter() {
                if shard_for(event.event(), shards) == worker as u64 {
                    let _ = tx.send(ShardMsg::Apply(*ts, event.clone()));
                    replayed += 1;
                }
            }
        }
        txs[worker] = tx;
        self.core.fabric.alive[worker].store(true, Ordering::SeqCst);
        self.core.handles.lock().push(handle);
        self.core.counters.restarts.inc();
        self.core.counters.events_replayed.add(replayed);
        true
    }
}

#[allow(clippy::too_many_arguments)]
fn timestamper_loop(
    client_rx: Receiver<ClientMsg>,
    fabric: Arc<ShardFabric>,
    retained: Option<Retained>,
    cost: Duration,
    busy: Counter,
    queue: Gauge,
    tx_counter: Counter,
    events_counter: Counter,
    events_lost: Counter,
    marker_cuts: Arc<Mutex<Vec<(String, u64)>>>,
) -> u64 {
    let shards = {
        let txs = fabric.txs.read();
        txs.len() as u64
    };
    let mut next_ts = 0u64;
    let mut committed = 0u64;
    while let Ok(msg) = client_rx.recv() {
        let transaction = match msg {
            ClientMsg::Tx(tx) => tx,
            ClientMsg::Marker(name) => {
                // The cut: every event sequenced before this marker has a
                // timestamp below `next_ts`. Markers are control traffic —
                // they pay no ordering cost.
                marker_cuts.lock().push((name, next_ts));
                continue;
            }
            ClientMsg::ReadVertex(id, reply) => {
                // Reads pay the ordering cost like any transaction.
                let start = Instant::now();
                busy_work(cost);
                busy.add(start.elapsed().as_micros() as u64);
                let shard = shard_for_key(id.0, shards);
                let txs = fabric.txs.read();
                // A dead shard's queue rejects the send; dropping the
                // reply sender turns the client's wait into StoreClosed
                // instead of a hang.
                let _ = txs[shard as usize].send(ShardMsg::ReadVertex(id, reply));
                continue;
            }
            ClientMsg::ReadEdge(id, reply) => {
                let start = Instant::now();
                busy_work(cost);
                busy.add(start.elapsed().as_micros() as u64);
                let shard = shard_for_key(id.src.0, shards);
                let txs = fabric.txs.read();
                let _ = txs[shard as usize].send(ShardMsg::ReadEdge(id, reply));
                continue;
            }
            ClientMsg::Shutdown => break,
        };
        queue.set(client_rx.len() as i64);
        // Global ordering: the serial, per-transaction cost.
        let start = Instant::now();
        busy_work(cost);
        busy.add(start.elapsed().as_micros() as u64);

        for event in transaction.events {
            let ts = next_ts;
            next_ts += 1;
            let shard = shard_for(event.event(), shards);
            // Retain + route under one read lock: a restart (write lock)
            // can then never snapshot the retained log with this event's
            // delivery still in flight, which would replay it twice.
            let txs = fabric.txs.read();
            if let Some(retained) = &retained {
                retained.lock().push((ts, event.clone()));
            }
            // Blocking send: full shard queues backpressure the
            // timestamper, which in turn backpressures clients. A dead
            // shard's queue fails fast instead — the event is counted
            // lost and sequencing continues (a dead partition must not
            // end the whole store).
            if txs[shard as usize]
                .send(ShardMsg::Apply(ts, event))
                .is_err()
            {
                events_lost.inc();
            } else {
                events_counter.inc();
            }
        }
        committed += 1;
        tx_counter.inc();
    }
    let txs = fabric.txs.read();
    for tx in txs.iter() {
        let _ = tx.send(ShardMsg::Stop);
    }
    committed
}

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard_id: usize,
    rx: Receiver<ShardMsg>,
    cost: Duration,
    busy: Counter,
    applied: Counter,
    tracer_cell: TracerCell,
    fabric: Arc<ShardFabric>,
    crashes: Counter,
) -> ShardLog {
    let mut log: ShardLog = Vec::new();
    // Lazily acquired apply tracepoint: the thread outlives tracer
    // installation, so it polls the cell (one atomic load while empty).
    let mut trace_probe: Option<Probe> = None;
    // Partition-local state for reads (hybrid adjacency, lenient apply —
    // see `partition.rs` for the semantics).
    let mut state = crate::partition::PartitionState::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Apply(ts, event) => {
                let start = Instant::now();
                busy_work(cost);
                busy.add(start.elapsed().as_micros() as u64);
                state.apply(event.event());
                log.push((ts, event));
                applied.inc();
                if trace_probe.is_none() {
                    trace_probe = tracer_cell.probe(Stage::EngineApply);
                }
                if let Some(probe) = &trace_probe {
                    // The commit timestamp is the event's global stream
                    // position: shards apply out of order, so the stamp
                    // carries it explicitly.
                    probe.stamp_seq(ts);
                }
            }
            ShardMsg::ReadVertex(id, reply) => {
                let _ = reply.send(state.read_vertex(id));
            }
            ShardMsg::ReadEdge(id, reply) => {
                let _ = reply.send(state.read_edge(id));
            }
            ShardMsg::Crash => {
                // Die like a killed process: state and log abandoned,
                // queued messages dropped with the receiver. The alive
                // flag tells the timestamper (and a waiting supervisor)
                // that this partition is vacant.
                fabric.alive[shard_id].store(false, Ordering::SeqCst);
                crashes.inc();
                return Vec::new();
            }
            ShardMsg::Stop => break,
        }
    }
    log
}

/// Routing: vertex events go to the owner of the vertex, edge events to
/// the owner of the source vertex.
///
/// Public because the routing function is part of the store's sharding
/// *contract*: it must be a pure function of the entity id (the shard
/// contract tests pin this), and the supervisor's replay and the sharded
/// sequencer must agree with it exactly.
pub fn shard_for(event: &GraphEvent, shards: u64) -> u64 {
    let key = match event {
        GraphEvent::AddVertex { id, .. }
        | GraphEvent::RemoveVertex { id }
        | GraphEvent::UpdateVertex { id, .. } => id.0,
        GraphEvent::AddEdge { id, .. }
        | GraphEvent::RemoveEdge { id }
        | GraphEvent::UpdateEdge { id, .. } => id.src.0,
    };
    shard_for_key(key, shards)
}

/// Fibonacci hashing for an even spread of sequential ids.
pub fn shard_for_key(key: u64, shards: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> StoreConfig {
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::ZERO,
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 64,
            supervised: false,
        }
    }

    fn vertex_events(n: u64) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
            .collect()
    }

    #[test]
    fn commits_all_events_and_reconstructs_graph() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(100) {
            client.submit(Transaction::single(event)).unwrap();
        }
        // Edges between the vertices (cross-shard order must hold).
        for i in 1..100u64 {
            client
                .submit(Transaction::single(GraphEvent::AddEdge {
                    id: EdgeId::from((i - 1, i)),
                    state: State::empty(),
                }))
                .unwrap();
        }
        let stats = store.shutdown();
        assert_eq!(stats.transactions, 199);
        assert_eq!(stats.events, 199);
        assert_eq!(stats.graph.vertex_count(), 100);
        assert_eq!(stats.graph.edge_count(), 99);
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.events_lost, 0);
        stats.graph.check_invariants().unwrap();
    }

    #[test]
    fn batched_transactions_commit_atomically_in_order() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for chunk in vertex_events(100).chunks(10) {
            client
                .submit(Transaction::from_events(chunk.iter().cloned()))
                .unwrap();
        }
        let stats = store.shutdown();
        assert_eq!(stats.transactions, 10);
        assert_eq!(stats.events, 100);
        assert_eq!(stats.graph.vertex_count(), 100);
    }

    #[test]
    fn live_counters_advance() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(10) {
            client.submit(Transaction::single(event)).unwrap();
        }
        // Drain by shutting down, then check hub counters.
        let stats = store.shutdown();
        assert_eq!(stats.events, 10);
        assert_eq!(hub.counter("store.events").get(), 10);
        assert_eq!(hub.counter("store.tx").get(), 10);
        let shard_total: u64 =
            hub.counter("shard-0.events").get() + hub.counter("shard-1.events").get();
        assert_eq!(shard_total, 10);
    }

    #[test]
    fn timestamper_cost_caps_throughput() {
        // 2 ms per tx ⇒ ceiling ≈ 500 tx/s. Offer far more for ~300 ms and
        // verify the commit rate respects the ceiling.
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::from_millis(2),
                shard_cost_per_event: Duration::ZERO,
                queue_capacity: 16,
                supervised: false,
            },
            &hub,
        );
        let client = store.client();
        let start = Instant::now();
        let mut submitted = 0u64;
        while start.elapsed() < Duration::from_millis(300) {
            if client
                .try_submit(Transaction::single(GraphEvent::AddVertex {
                    id: VertexId(submitted),
                    state: State::empty(),
                }))
                .is_ok()
            {
                submitted += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let committed_during = store.transactions_committed();
        let rate = committed_during as f64 / elapsed;
        assert!(
            rate < 750.0,
            "ceiling should hold near 500 tx/s, measured {rate}"
        );
        // And backpressure must have rejected most of the offered load.
        let stats = store.shutdown();
        assert!(stats.transactions >= committed_during);
    }

    #[test]
    fn batching_raises_event_ceiling() {
        // Same timestamper cost; 10 events per tx must commit far more
        // events in the same wall time than 1 event per tx.
        let run = |batch: usize| -> u64 {
            let hub = MetricsHub::new();
            let store = TideStore::start(
                StoreConfig {
                    shards: 2,
                    timestamper_cost_per_tx: Duration::from_micros(1_000),
                    shard_cost_per_event: Duration::ZERO,
                    queue_capacity: 16,
                    supervised: false,
                },
                &hub,
            );
            let client = store.client();
            let start = Instant::now();
            let mut next_id = 0u64;
            while start.elapsed() < Duration::from_millis(250) {
                let events: Vec<GraphEvent> = (0..batch)
                    .map(|_| {
                        let id = next_id;
                        next_id += 1;
                        GraphEvent::AddVertex {
                            id: VertexId(id),
                            state: State::empty(),
                        }
                    })
                    .collect();
                let _ = client.try_submit(Transaction::from_events(events));
            }
            let committed = store.events_committed();
            store.shutdown();
            committed
        };
        let single = run(1);
        let batched = run(10);
        assert!(
            batched as f64 > single as f64 * 4.0,
            "batched {batched} vs single {single}"
        );
    }

    #[test]
    fn busy_accounting_shows_timestamper_dominating() {
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::from_micros(500),
                shard_cost_per_event: Duration::from_micros(10),
                queue_capacity: 16,
                supervised: false,
            },
            &hub,
        );
        let client = store.client();
        for event in vertex_events(200) {
            client.submit(Transaction::single(event)).unwrap();
        }
        store.shutdown();
        let ts_busy = hub.counter("timestamper.busy_micros").get();
        let shard_busy =
            hub.counter("shard-0.busy_micros").get() + hub.counter("shard-1.busy_micros").get();
        assert!(
            ts_busy > shard_busy * 5,
            "timestamper {ts_busy}µs vs shards {shard_busy}µs"
        );
    }

    #[test]
    fn reads_are_ordered_behind_writes() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        client
            .submit(Transaction::single(GraphEvent::AddVertex {
                id: VertexId(7),
                state: State::new("v1"),
            }))
            .unwrap();
        // Read-your-writes: the read is sequenced behind the write above.
        assert_eq!(
            client.read_vertex(VertexId(7)).unwrap(),
            Some(State::new("v1"))
        );
        assert_eq!(client.read_vertex(VertexId(8)).unwrap(), None);

        client
            .submit(Transaction::single(GraphEvent::UpdateVertex {
                id: VertexId(7),
                state: State::new("v2"),
            }))
            .unwrap();
        assert_eq!(
            client.read_vertex(VertexId(7)).unwrap(),
            Some(State::new("v2"))
        );
        store.shutdown();
    }

    #[test]
    fn edge_reads() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(2) {
            client.submit(Transaction::single(event)).unwrap();
        }
        let edge = EdgeId::from((0, 1));
        client
            .submit(Transaction::single(GraphEvent::AddEdge {
                id: edge,
                state: State::weight(2.5),
            }))
            .unwrap();
        assert_eq!(client.read_edge(edge).unwrap(), Some(State::weight(2.5)));
        client
            .submit(Transaction::single(GraphEvent::RemoveEdge { id: edge }))
            .unwrap();
        assert_eq!(client.read_edge(edge).unwrap(), None);
        store.shutdown();
    }

    #[test]
    fn reads_after_shutdown_error() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        store.shutdown();
        assert!(client.read_vertex(VertexId(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        TideStore::start(
            StoreConfig {
                shards: 0,
                ..fast_config()
            },
            &MetricsHub::new(),
        );
    }

    /// Which shard owns a vertex id — helper for crash tests that need to
    /// know where events land.
    fn shard_of(id: u64, shards: u64) -> u64 {
        shard_for_key(id, shards)
    }

    /// Waits for an injected crash to land (the kill travels through the
    /// shard's queue behind its backlog).
    fn wait_dead(supervisor: &Arc<dyn WorkerSupervisor>, shard: usize) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while supervisor.inject_crash(shard) {
            assert!(Instant::now() < deadline, "shard {shard} never died");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn shard_crash_is_contained_without_supervision() {
        let hub = MetricsHub::new();
        let store = TideStore::start(fast_config(), &hub);
        let client = store.client();
        for event in vertex_events(50) {
            client.submit(Transaction::single(event)).unwrap();
        }
        let supervisor = store.supervisor();
        assert_eq!(supervisor.worker_count(), 2);
        assert!(supervisor.inject_crash(0));
        assert!(!supervisor.restart_worker(0), "unsupervised restart");
        wait_dead(&supervisor, 0);

        // The timestamper keeps sequencing: events to the dead shard are
        // lost, events to the survivor commit, and reads to the dead
        // shard fail instead of hanging.
        for event in vertex_events(50).into_iter().map(|e| match e {
            GraphEvent::AddVertex { id, state } => GraphEvent::AddVertex {
                id: VertexId(id.0 + 100),
                state,
            },
            other => other,
        }) {
            client.submit(Transaction::single(event)).unwrap();
        }
        let dead_vertex = (0..50u64).find(|&i| shard_of(i, 2) == 0).unwrap();
        assert_eq!(client.read_vertex(VertexId(dead_vertex)), Err(StoreClosed));

        let stats = store.shutdown();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 0);
        assert!(stats.events_lost > 0, "no events routed to the dead shard");
        // The survivor's share of the second wave made it in.
        let survivor_second_wave = (100..150u64).filter(|&i| shard_of(i, 2) == 1).count();
        assert!(stats.graph.vertex_count() >= survivor_second_wave);
        // And the dead shard's state is gone from the reconstruction.
        assert!(stats.graph.vertex_count() < 100);
    }

    #[test]
    fn supervised_restart_rebuilds_shard_by_replay() {
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                supervised: true,
                ..fast_config()
            },
            &hub,
        );
        let client = store.client();
        for event in vertex_events(60) {
            client.submit(Transaction::single(event)).unwrap();
        }
        let supervisor = store.supervisor();
        assert!(supervisor.inject_crash(1));
        assert!(supervisor.restart_worker(1));

        // Post-restart traffic lands normally again, including reads
        // served from the replayed state.
        for i in 60..80u64 {
            client
                .submit(Transaction::single(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        let replayed_vertex = (0..60u64).find(|&i| shard_of(i, 2) == 1).unwrap();
        assert_eq!(
            client.read_vertex(VertexId(replayed_vertex)).unwrap(),
            Some(State::empty())
        );

        let stats = store.shutdown();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert!(stats.events_replayed > 0);
        // Replay rebuilt the crashed shard's log: the reconstruction is
        // complete.
        assert_eq!(stats.graph.vertex_count(), 80);
    }

    #[test]
    fn restart_out_of_range_or_alive_refuses() {
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                supervised: true,
                ..fast_config()
            },
            &hub,
        );
        let supervisor = store.supervisor();
        assert!(!supervisor.inject_crash(9));
        assert!(!supervisor.restart_worker(9));
        store.shutdown();
    }
}

#![warn(missing_docs)]

//! # tide-store
//!
//! A transactional evolving-graph store, built as the stand-in for
//! **Weaver** — the paper's first system under test (§5.3.1). Weaver is "a
//! high-performance, transactional graph database based on refinable
//! timestamps"; its deployment runs a *timestamper* process that orders
//! transactions and *shard* processes that hold graph partitions. The
//! paper's Level-0 evaluation found (Figures 3b/3c):
//!
//! 1. write throughput hits a hard ceiling independent of the offered
//!    stream rate (faster streams get backthrottled), and
//! 2. the timestamper burns far more CPU than the shards — the ordering
//!    component is the bottleneck.
//!
//! This crate reproduces that architecture faithfully enough for both
//! effects to emerge rather than being scripted: a single timestamper
//! thread assigns global transaction timestamps at a configurable
//! per-transaction cost, shard threads apply events at a (much smaller)
//! per-event cost, and bounded queues provide backpressure end to end.
//! Batching multiple events per transaction amortizes the timestamper
//! cost, raising the ceiling — exactly the 1-event-vs-10-events contrast
//! of Figure 3b. Components account their busy time into a
//! [`gt_metrics::MetricsHub`] so a Level-0 logger can chart per-component
//! CPU utilization (Figure 3c).

pub mod connector;
pub mod partition;
pub mod sharded;
pub mod store;
pub mod sut;

pub use connector::{BatchingConnector, StoreFrontend};
pub use partition::PartitionState;
pub use sharded::{ShardedClient, ShardedStats, ShardedStore, ShardedSupervisor};
pub use store::{
    shard_for, shard_for_key, StoreClient, StoreClosed, StoreConfig, StoreStats, StoreSupervisor,
    TideStore, Transaction,
};
pub use sut::TideStoreSut;

//! The [`SystemUnderTest`] adapter for the store — everything the harness
//! needs to spawn, feed, observe, and stop a `tide-store` by name.
//!
//! Two registry entries share this adapter:
//!
//! * **`tide-store`** — the serial runtime ([`TideStore`]): one global
//!   timestamper, the paper's Weaver-style bottleneck.
//! * **`tide-store-sharded`** — the sharded runtime
//!   ([`ShardedStore`]): an entity-affine router feeding N batched
//!   per-shard sequencers, the scaling counter-move. Same options, same
//!   report shape, same digest semantics — so the harness can A/B the two
//!   by name alone (the serial-vs-sharded differential).

use std::any::Any;
use std::io;
use std::time::Duration;

use gt_graph::{ApplyPolicy, EvolvingGraph};
use gt_metrics::MetricsHub;
use gt_replayer::EventSink;
use gt_sut::{
    Adjacency, EvaluationLevel, StateDigest, SutOptions, SutRegistry, SutReport, SystemUnderTest,
    WindowDigest,
};
use gt_trace::{Stage, Tracer};

use crate::connector::BatchingConnector;
use crate::sharded::ShardedStore;
use crate::store::{StoreConfig, StoreStats, TideStore};

/// The registry name of the serial runtime.
pub const SUT_NAME: &str = "tide-store";

/// The registry name of the sharded runtime.
pub const SHARDED_SUT_NAME: &str = "tide-store-sharded";

/// The running store behind the adapter: serial timestamper or sharded
/// router, chosen at registry-start time.
enum StoreRuntime {
    Serial(TideStore),
    Sharded(ShardedStore),
}

/// A running store behind the [`SystemUnderTest`] boundary.
///
/// Recognized [`SutOptions`] (both runtimes):
///
/// | option | meaning | default |
/// |---|---|---|
/// | `shards` | shard worker threads (typed: 1..=[`gt_sut::MAX_SHARDS`]) | 2 serial / 4 sharded |
/// | `timestamper_cost_us` | ordering cost per transaction (serial) or per shard batch (sharded), µs | 800 |
/// | `shard_cost_us` | write cost per event, µs | 20 |
/// | `queue_capacity` | bounded queue capacity | 256 |
/// | `batch_size` | events per transaction in the connector | 10 |
/// | `supervised` | retain commits so crashed shards can be restarted (`1` = on) | 0 |
/// | `digest` | capture a [`StateDigest`] at shutdown (`1` = on) | 0 |
pub struct TideStoreSut {
    runtime: Option<StoreRuntime>,
    hub: MetricsHub,
    batch_size: usize,
    digest: bool,
    tracer: Option<Tracer>,
}

/// Options shared by the serial and sharded start paths.
struct ParsedOptions {
    config: StoreConfig,
    batch_size: usize,
    digest: bool,
}

fn parse_options(options: &SutOptions, default_shards: usize) -> io::Result<ParsedOptions> {
    let defaults = StoreConfig::default();
    let config = StoreConfig {
        // The typed getter: rejects 0, non-numeric, and absurd counts
        // with a structured ShardsError instead of a stringly parse.
        shards: options.get_shards()?.unwrap_or(default_shards),
        timestamper_cost_per_tx: options
            .get_duration_micros("timestamper_cost_us")?
            .unwrap_or(defaults.timestamper_cost_per_tx),
        shard_cost_per_event: options
            .get_duration_micros("shard_cost_us")?
            .unwrap_or(defaults.shard_cost_per_event),
        queue_capacity: options
            .get_usize("queue_capacity")?
            .unwrap_or(defaults.queue_capacity),
        supervised: options.get_u64("supervised")?.unwrap_or(0) != 0,
    };
    let batch_size = options.get_usize("batch_size")?.unwrap_or(10);
    if batch_size == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "option `batch_size` must be positive",
        ));
    }
    let digest = options.get_u64("digest")?.unwrap_or(0) != 0;
    Ok(ParsedOptions {
        config,
        batch_size,
        digest,
    })
}

impl TideStoreSut {
    /// Spawns a **serial** store from the option bag (unset options keep
    /// the [`StoreConfig`] defaults).
    pub fn start(options: &SutOptions) -> io::Result<Self> {
        let parsed = parse_options(options, StoreConfig::default().shards)?;
        let hub = MetricsHub::new();
        let store = TideStore::start(parsed.config, &hub);
        Ok(TideStoreSut {
            runtime: Some(StoreRuntime::Serial(store)),
            hub,
            batch_size: parsed.batch_size,
            digest: parsed.digest,
            tracer: None,
        })
    }

    /// Spawns a **sharded** store: router + per-shard sequencers, shard
    /// count from the `shards` option (default 4).
    pub fn start_sharded(options: &SutOptions) -> io::Result<Self> {
        let parsed = parse_options(options, 4)?;
        let hub = MetricsHub::new();
        let store = ShardedStore::start(parsed.config, &hub);
        Ok(TideStoreSut {
            runtime: Some(StoreRuntime::Sharded(store)),
            hub,
            batch_size: parsed.batch_size,
            digest: parsed.digest,
            tracer: None,
        })
    }

    fn runtime(&self) -> &StoreRuntime {
        self.runtime.as_ref().expect("store is running")
    }

    /// The running serial store (live counters, extra client handles).
    ///
    /// # Panics
    /// If this adapter runs the sharded runtime.
    pub fn store(&self) -> &TideStore {
        match self.runtime() {
            StoreRuntime::Serial(store) => store,
            StoreRuntime::Sharded(_) => panic!("store(): sharded runtime"),
        }
    }

    /// The running sharded store, when this adapter runs one.
    pub fn sharded_store(&self) -> Option<&ShardedStore> {
        match self.runtime() {
            StoreRuntime::Serial(_) => None,
            StoreRuntime::Sharded(store) => Some(store),
        }
    }
}

/// The out-adjacency of a reconstructed graph, weights captured as
/// `f64::to_bits` so the digest comparison is bit-exact. Unweighted edges
/// digest as weight 1.0.
fn adjacency_of(graph: &EvolvingGraph) -> Adjacency {
    graph
        .vertices()
        .map(|v| {
            let out = graph
                .out_edges(v)
                .map(|(dst, state)| (dst.0, state.as_weight().unwrap_or(1.0).to_bits()))
                .collect();
            (v.0, out)
        })
        .collect()
}

/// Builds the digest from the merged commit log: one adjacency snapshot
/// per marker cut (replaying the log prefix below the cut) plus the final
/// graph. Marker cuts are nondecreasing (they were recorded in sequencing
/// order), so the prefixes are built incrementally in one pass.
fn digest_from_stats(stats: &StoreStats, extra_degradation: &[(&str, u64)]) -> StateDigest {
    let mut windows = Vec::new();
    let mut prefix = EvolvingGraph::new();
    let mut applied = 0usize;
    for (name, cut) in &stats.markers {
        while applied < stats.log.len() && stats.log[applied].0 < *cut {
            let _ = prefix.apply_with(stats.log[applied].1.event(), ApplyPolicy::Lenient);
            applied += 1;
        }
        windows.push(WindowDigest {
            marker: name.clone(),
            adjacency: adjacency_of(&prefix),
        });
    }
    let mut degradation: Vec<(String, u64)> = vec![
        ("crashes".into(), stats.crashes),
        ("restarts".into(), stats.restarts),
        ("events_lost".into(), stats.events_lost),
        ("events_replayed".into(), stats.events_replayed),
    ];
    for (name, value) in extra_degradation {
        degradation.push(((*name).to_owned(), *value));
    }
    let mut digest = StateDigest {
        final_adjacency: adjacency_of(&stats.graph),
        windows,
        degradation,
    };
    digest.canonicalize();
    digest
}

fn report_from_stats(name: &str, stats: &StoreStats) -> SutReport {
    SutReport::new(name)
        .with("events", stats.events as f64)
        .with("transactions", stats.transactions as f64)
        .with("vertices", stats.graph.vertex_count() as f64)
        .with("edges", stats.graph.edge_count() as f64)
        .with("crashes", stats.crashes as f64)
        .with("restarts", stats.restarts as f64)
        .with("events_lost", stats.events_lost as f64)
        .with("events_replayed", stats.events_replayed as f64)
}

impl TideStoreSut {
    /// Shuts the runtime down and returns the report plus (in digest
    /// mode) the state digest — shared by both shutdown entry points.
    fn shutdown_inner(&mut self) -> (SutReport, Option<StateDigest>) {
        let digest_on = self.digest;
        match self.runtime.take().expect("store is running") {
            StoreRuntime::Serial(store) => {
                let stats = store.shutdown();
                let digest = digest_on.then(|| digest_from_stats(&stats, &[]));
                (report_from_stats(SUT_NAME, &stats), digest)
            }
            StoreRuntime::Sharded(store) => {
                let stats = store.shutdown();
                let digest = digest_on.then(|| {
                    digest_from_stats(&stats.store, &[("marker_skips", stats.marker_skips)])
                });
                let report = report_from_stats(SHARDED_SUT_NAME, &stats.store)
                    .with("shards", stats.per_shard_seqs.len() as f64)
                    .with("marker_skips", stats.marker_skips as f64);
                (report, digest)
            }
        }
    }
}

impl SystemUnderTest for TideStoreSut {
    fn name(&self) -> &str {
        match self.runtime() {
            StoreRuntime::Serial(_) => SUT_NAME,
            StoreRuntime::Sharded(_) => SHARDED_SUT_NAME,
        }
    }

    fn level(&self) -> EvaluationLevel {
        // Instrumented source: per-component busy counters in the hub.
        EvaluationLevel::Level2
    }

    fn connector(&mut self) -> io::Result<Box<dyn EventSink + Send>> {
        let probe = self
            .tracer
            .as_ref()
            .map(|tracer| tracer.probe(Stage::ConnectorRecv));
        match self.runtime() {
            StoreRuntime::Serial(store) => {
                let mut connector = BatchingConnector::new(store.client(), self.batch_size);
                if let Some(probe) = probe {
                    connector = connector.with_trace_probe(probe);
                }
                Ok(Box::new(connector))
            }
            StoreRuntime::Sharded(store) => {
                let mut connector = BatchingConnector::new(store.client(), self.batch_size);
                if let Some(probe) = probe {
                    connector = connector.with_trace_probe(probe);
                }
                Ok(Box::new(connector))
            }
        }
    }

    fn hub(&self) -> Option<&MetricsHub> {
        Some(&self.hub)
    }

    fn install_tracer(&mut self, tracer: &Tracer) {
        match self.runtime() {
            StoreRuntime::Serial(store) => store.tracer_cell().install(tracer),
            StoreRuntime::Sharded(store) => store.tracer_cell().install(tracer),
        }
        self.tracer = Some(tracer.clone());
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    fn supervisor(&self) -> Option<std::sync::Arc<dyn gt_sut::WorkerSupervisor>> {
        // Shares the store's internals, not the store handle, so
        // shutdown's ownership-taking path keeps working.
        Some(match self.runtime() {
            StoreRuntime::Serial(store) => store.supervisor(),
            StoreRuntime::Sharded(store) => store.supervisor(),
        })
    }

    fn quiesce(&mut self, timeout: Duration) -> bool {
        match self.runtime() {
            // Serial shutdown drains every queue before joining; no
            // separate drain phase needed.
            StoreRuntime::Serial(_) => true,
            StoreRuntime::Sharded(store) => store.quiesce(timeout),
        }
    }

    fn shutdown(mut self: Box<Self>) -> SutReport {
        self.shutdown_inner().0
    }

    fn shutdown_digest(mut self: Box<Self>) -> (SutReport, Option<StateDigest>) {
        self.shutdown_inner()
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Registers the serial runtime under [`SUT_NAME`] and the sharded
/// runtime under [`SHARDED_SUT_NAME`].
pub fn register(registry: &mut SutRegistry) {
    registry.register(SUT_NAME, |options| {
        Ok(Box::new(TideStoreSut::start(options)?) as Box<dyn SystemUnderTest>)
    });
    registry.register(SHARDED_SUT_NAME, |options| {
        Ok(Box::new(TideStoreSut::start_sharded(options)?) as Box<dyn SystemUnderTest>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;

    #[test]
    fn registry_run_commits_events() {
        let mut registry = SutRegistry::new();
        register(&mut registry);
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 5);
        let mut sut = registry.start(SUT_NAME, &options).unwrap();
        assert_eq!(sut.name(), SUT_NAME);
        assert!(sut.level().includes(EvaluationLevel::Level1));
        let mut connector = sut.connector().unwrap();
        for i in 0..42u64 {
            connector
                .send(&StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        connector.close().unwrap();
        drop(connector);
        let report = sut.shutdown();
        assert_eq!(report.get("events"), Some(42.0));
        assert_eq!(report.get("vertices"), Some(42.0));
    }

    #[test]
    fn sharded_registry_run_commits_events() {
        let mut registry = SutRegistry::new();
        register(&mut registry);
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("shards", 4)
            .set("batch_size", 5);
        let mut sut = registry.start(SHARDED_SUT_NAME, &options).unwrap();
        assert_eq!(sut.name(), SHARDED_SUT_NAME);
        let mut connector = sut.connector().unwrap();
        for i in 0..42u64 {
            connector
                .send(&StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        connector.close().unwrap();
        drop(connector);
        assert!(sut.quiesce(Duration::from_secs(5)));
        let report = sut.shutdown();
        assert_eq!(report.get("events"), Some(42.0));
        assert_eq!(report.get("vertices"), Some(42.0));
        assert_eq!(report.get("shards"), Some(4.0));
    }

    #[test]
    fn installed_tracer_matches_connector_to_apply_pairs() {
        use gt_trace::TraceConfig;
        use std::sync::Arc;

        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 5);
        let sut = TideStoreSut::start(&options).unwrap();
        let clock: Arc<dyn gt_metrics::Clock> = Arc::new(gt_metrics::WallClock::start());
        let trace_hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &trace_hub);
        let mut boxed: Box<dyn SystemUnderTest> = Box::new(sut);
        boxed.install_tracer(&tracer);
        assert!(boxed.tracer().is_some());
        let mut connector = boxed.connector().unwrap();
        for i in 0..40u64 {
            connector
                .send(&StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        connector.close().unwrap();
        drop(connector);
        let report = boxed.shutdown();
        assert_eq!(report.get("events"), Some(40.0));
        // All apply stamps are in the rings once shutdown drained the
        // shards; stop() does a final drain before matching.
        let trace = tracer.stop();
        let pairs = trace
            .records
            .iter()
            .filter(|r| r.metric == "connector_to_apply_micros")
            .count();
        assert_eq!(pairs, 40, "matched {} of 40 events", pairs);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn sharded_tracer_stamps_every_apply() {
        use gt_trace::TraceConfig;
        use std::sync::Arc;

        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("shards", 3)
            .set("batch_size", 5);
        let sut = TideStoreSut::start_sharded(&options).unwrap();
        let clock: Arc<dyn gt_metrics::Clock> = Arc::new(gt_metrics::WallClock::start());
        let trace_hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &trace_hub);
        let mut boxed: Box<dyn SystemUnderTest> = Box::new(sut);
        boxed.install_tracer(&tracer);
        let mut connector = boxed.connector().unwrap();
        for i in 0..40u64 {
            connector
                .send(&StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        connector.close().unwrap();
        drop(connector);
        boxed.quiesce(Duration::from_secs(5));
        let report = boxed.shutdown();
        assert_eq!(report.get("events"), Some(40.0));
        let trace = tracer.stop();
        let pairs = trace
            .records
            .iter()
            .filter(|r| r.metric == "connector_to_apply_micros")
            .count();
        assert_eq!(pairs, 40, "matched {} of 40 events", pairs);
    }

    #[test]
    fn digest_mode_snapshots_marker_windows() {
        let run = |name: &str| -> StateDigest {
            let mut registry = SutRegistry::new();
            register(&mut registry);
            let options = SutOptions::new()
                .set("timestamper_cost_us", 0)
                .set("shard_cost_us", 0)
                .set("shards", if name == SHARDED_SUT_NAME { 4 } else { 2 })
                .set("batch_size", 3)
                .set("digest", 1);
            let mut sut = registry.start(name, &options).unwrap();
            let mut connector = sut.connector().unwrap();
            for i in 0..20u64 {
                connector
                    .send(&StreamEntry::graph(GraphEvent::AddVertex {
                        id: VertexId(i),
                        state: State::empty(),
                    }))
                    .unwrap();
                if i == 9 {
                    connector.send(&StreamEntry::marker("mid")).unwrap();
                }
            }
            for i in 1..20u64 {
                connector
                    .send(&StreamEntry::graph(GraphEvent::AddEdge {
                        id: EdgeId::from((i - 1, i)),
                        state: State::weight(i as f64),
                    }))
                    .unwrap();
            }
            connector.send(&StreamEntry::marker("end")).unwrap();
            connector.close().unwrap();
            drop(connector);
            sut.quiesce(Duration::from_secs(5));
            let (_, digest) = sut.shutdown_digest();
            digest.expect("digest mode")
        };
        let serial = run(SUT_NAME);
        let sharded = run(SHARDED_SUT_NAME);
        assert_eq!(serial.windows.len(), 2);
        assert_eq!(serial.windows[0].marker, "mid");
        assert_eq!(serial.windows[0].adjacency.len(), 10);
        assert_eq!(serial.windows[1].adjacency.len(), 20);
        assert_eq!(serial.final_adjacency.len(), 20);
        // The headline property: the sharded run's digest is bit-identical
        // to the serial run's — same windows, same final adjacency.
        assert_eq!(serial.diff(&sharded), None);
    }

    #[test]
    fn malformed_batch_size_rejected() {
        let options = SutOptions::new().set("batch_size", 0);
        assert!(TideStoreSut::start(&options).is_err());
    }

    #[test]
    fn malformed_shards_rejected_by_typed_getter() {
        for bad in ["0", "oops", "2000"] {
            let options = SutOptions::new().set("shards", bad);
            assert!(
                TideStoreSut::start(&options).is_err(),
                "shards={bad} accepted"
            );
            assert!(
                TideStoreSut::start_sharded(&options).is_err(),
                "sharded shards={bad} accepted"
            );
        }
    }
}

//! The [`SystemUnderTest`] adapter for the store — everything the harness
//! needs to spawn, feed, observe, and stop a `tide-store` by name.

use std::any::Any;
use std::io;

use gt_metrics::MetricsHub;
use gt_replayer::EventSink;
use gt_sut::{EvaluationLevel, SutOptions, SutRegistry, SutReport, SystemUnderTest};
use gt_trace::{Stage, Tracer};

use crate::connector::BatchingConnector;
use crate::store::{StoreConfig, TideStore};

/// The registry name of this platform.
pub const SUT_NAME: &str = "tide-store";

/// A running store behind the [`SystemUnderTest`] boundary.
///
/// Recognized [`SutOptions`]:
///
/// | option | meaning | default |
/// |---|---|---|
/// | `shards` | shard worker threads | 2 |
/// | `timestamper_cost_us` | ordering cost per transaction, µs | 800 |
/// | `shard_cost_us` | write cost per event, µs | 20 |
/// | `queue_capacity` | bounded queue capacity | 256 |
/// | `batch_size` | events per transaction in the connector | 10 |
/// | `supervised` | retain commits so crashed shards can be restarted (`1` = on) | 0 |
pub struct TideStoreSut {
    store: Option<TideStore>,
    hub: MetricsHub,
    batch_size: usize,
    tracer: Option<Tracer>,
}

impl TideStoreSut {
    /// Spawns a store from the option bag (unset options keep the
    /// [`StoreConfig`] defaults).
    pub fn start(options: &SutOptions) -> io::Result<Self> {
        let defaults = StoreConfig::default();
        let config = StoreConfig {
            shards: options.get_usize("shards")?.unwrap_or(defaults.shards),
            timestamper_cost_per_tx: options
                .get_duration_micros("timestamper_cost_us")?
                .unwrap_or(defaults.timestamper_cost_per_tx),
            shard_cost_per_event: options
                .get_duration_micros("shard_cost_us")?
                .unwrap_or(defaults.shard_cost_per_event),
            queue_capacity: options
                .get_usize("queue_capacity")?
                .unwrap_or(defaults.queue_capacity),
            supervised: options.get_u64("supervised")?.unwrap_or(0) != 0,
        };
        let batch_size = options.get_usize("batch_size")?.unwrap_or(10);
        if batch_size == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "option `batch_size` must be positive",
            ));
        }
        let hub = MetricsHub::new();
        let store = TideStore::start(config, &hub);
        Ok(TideStoreSut {
            store: Some(store),
            hub,
            batch_size,
            tracer: None,
        })
    }

    /// The running store (live counters, extra client handles).
    pub fn store(&self) -> &TideStore {
        self.store.as_ref().expect("store is running")
    }
}

impl SystemUnderTest for TideStoreSut {
    fn name(&self) -> &str {
        SUT_NAME
    }

    fn level(&self) -> EvaluationLevel {
        // Instrumented source: per-component busy counters in the hub.
        EvaluationLevel::Level2
    }

    fn connector(&mut self) -> io::Result<Box<dyn EventSink + Send>> {
        let mut connector = BatchingConnector::new(self.store().client(), self.batch_size);
        if let Some(tracer) = &self.tracer {
            connector = connector.with_trace_probe(tracer.probe(Stage::ConnectorRecv));
        }
        Ok(Box::new(connector))
    }

    fn hub(&self) -> Option<&MetricsHub> {
        Some(&self.hub)
    }

    fn install_tracer(&mut self, tracer: &Tracer) {
        self.store().tracer_cell().install(tracer);
        self.tracer = Some(tracer.clone());
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    fn supervisor(&self) -> Option<std::sync::Arc<dyn gt_sut::WorkerSupervisor>> {
        // Shares the store's internals, not the store handle, so
        // shutdown's ownership-taking path keeps working.
        Some(self.store().supervisor())
    }

    // Default quiesce: `TideStore::shutdown` drains every queue before
    // joining its threads, so there is no separate drain phase.

    fn shutdown(mut self: Box<Self>) -> SutReport {
        let stats = self.store.take().expect("store is running").shutdown();
        SutReport::new(SUT_NAME)
            .with("events", stats.events as f64)
            .with("transactions", stats.transactions as f64)
            .with("vertices", stats.graph.vertex_count() as f64)
            .with("edges", stats.graph.edge_count() as f64)
            .with("crashes", stats.crashes as f64)
            .with("restarts", stats.restarts as f64)
            .with("events_lost", stats.events_lost as f64)
            .with("events_replayed", stats.events_replayed as f64)
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Registers this platform under [`SUT_NAME`].
pub fn register(registry: &mut SutRegistry) {
    registry.register(SUT_NAME, |options| {
        Ok(Box::new(TideStoreSut::start(options)?) as Box<dyn SystemUnderTest>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;

    #[test]
    fn registry_run_commits_events() {
        let mut registry = SutRegistry::new();
        register(&mut registry);
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 5);
        let mut sut = registry.start(SUT_NAME, &options).unwrap();
        assert_eq!(sut.name(), SUT_NAME);
        assert!(sut.level().includes(EvaluationLevel::Level1));
        let mut connector = sut.connector().unwrap();
        for i in 0..42u64 {
            connector
                .send(&StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        connector.close().unwrap();
        drop(connector);
        let report = sut.shutdown();
        assert_eq!(report.get("events"), Some(42.0));
        assert_eq!(report.get("vertices"), Some(42.0));
    }

    #[test]
    fn installed_tracer_matches_connector_to_apply_pairs() {
        use gt_trace::TraceConfig;
        use std::sync::Arc;

        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 5);
        let sut = TideStoreSut::start(&options).unwrap();
        let clock: Arc<dyn gt_metrics::Clock> = Arc::new(gt_metrics::WallClock::start());
        let trace_hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &trace_hub);
        let mut boxed: Box<dyn SystemUnderTest> = Box::new(sut);
        boxed.install_tracer(&tracer);
        assert!(boxed.tracer().is_some());
        let mut connector = boxed.connector().unwrap();
        for i in 0..40u64 {
            connector
                .send(&StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
                .unwrap();
        }
        connector.close().unwrap();
        drop(connector);
        let report = boxed.shutdown();
        assert_eq!(report.get("events"), Some(40.0));
        // All apply stamps are in the rings once shutdown drained the
        // shards; stop() does a final drain before matching.
        let trace = tracer.stop();
        let pairs = trace
            .records
            .iter()
            .filter(|r| r.metric == "connector_to_apply_micros")
            .count();
        assert_eq!(pairs, 40, "matched {} of 40 events", pairs);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn malformed_batch_size_rejected() {
        let options = SutOptions::new().set("batch_size", 0);
        assert!(TideStoreSut::start(&options).is_err());
    }
}

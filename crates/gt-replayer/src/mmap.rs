//! Memory-mapped stream file source.
//!
//! For multi-GB replays the buffered reader's copy-into-a-line-buffer step
//! is measurable. This module maps the stream file read-only into the
//! address space instead: lines are parsed as borrowed `&str` slices of
//! the mapping via [`gt_core::format::parse_line_ref`], and the only
//! per-event heap traffic left is the owned conversion at the channel
//! boundary ([`SharedEntry`]) — the same boundary the buffered path uses,
//! so downstream consumers cannot tell the sources apart.
//!
//! The mapping is done with a direct `mmap(2)` FFI call (std already links
//! libc on unix; no new dependency). On non-unix targets, or if the map
//! fails (e.g. an empty file or an exotic filesystem), [`MmapFile::open`]
//! transparently falls back to reading the file into memory — callers get
//! the same `&[u8]` view either way.

use std::io;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use gt_core::format::parse_line_ref;
use gt_core::prelude::*;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Backing {
    /// A live `mmap(2)` mapping, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Map {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    /// Fallback: the whole file read into memory.
    Buf(Vec<u8>),
}

// The mapping is read-only for its whole lifetime, so sharing the raw
// pointer across threads is safe.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// A read-only view of a whole stream file, memory-mapped where possible.
pub struct MmapFile {
    backing: Backing,
}

impl MmapFile {
    /// Opens `path` and maps it read-only. Falls back to a buffered read
    /// of the whole file when mapping is unavailable (non-unix targets,
    /// empty files, filesystems that refuse `mmap`).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len > 0 {
                // SAFETY: a fresh private read-only mapping of `len` bytes
                // over a file descriptor we own; no aliasing writes exist
                // and the pointer is checked against MAP_FAILED below.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != usize::MAX as *mut std::ffi::c_void {
                    return Ok(MmapFile {
                        backing: Backing::Map { ptr, len },
                    });
                }
                // Map refused — fall through to the buffered read.
            }
        }
        Ok(MmapFile {
            backing: Backing::Buf(std::fs::read(path)?),
        })
    }

    /// The file contents.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map { ptr, len } => {
                // SAFETY: the mapping stays valid and read-only until drop.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Backing::Buf(buf) => buf,
        }
    }

    /// Whether the contents are served by a live memory mapping (false on
    /// the buffered fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map { .. } => true,
            Backing::Buf(_) => false,
        }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Map { ptr, len } = self.backing {
            // SAFETY: unmapping the exact region mapped in `open`.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

/// Spawns a reader thread over a memory-mapped stream file: the mmap'd
/// twin of [`crate::reader::spawn_file_reader`], with identical channel
/// semantics (entries as [`SharedEntry`] handles, thread ends at EOF, on
/// the first parse error, or when the receiver hangs up).
pub fn spawn_mmap_reader(
    path: impl Into<PathBuf>,
    buffer: usize,
) -> (Receiver<SharedEntry>, JoinHandle<Result<u64, CoreError>>) {
    let path = path.into();
    let (tx, rx) = bounded(buffer.max(1));
    let handle = std::thread::Builder::new()
        .name("gt-mmap-reader".into())
        .spawn(move || -> Result<u64, CoreError> {
            let map = MmapFile::open(&path)?;
            let text = std::str::from_utf8(map.as_bytes()).map_err(|e| {
                CoreError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("stream file is not valid UTF-8: {e}"),
                ))
            })?;
            let mut count = 0u64;
            for (i, line) in text.lines().enumerate() {
                // Borrowed parse over the mapping; the owned conversion at
                // `to_entry` is the single allocation per event.
                let Some(entry) = parse_line_ref(line).map_err(|e| e.at_line(i + 1))? else {
                    continue;
                };
                count += 1;
                if tx.send(SharedEntry::new(entry.to_entry())).is_err() {
                    break; // emitter hung up (e.g. replay aborted)
                }
            }
            Ok(count)
        })
        .expect("spawning mmap reader thread");
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_stream_file(content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gt-replayer-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stream-{:x}.csv", {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            content.hash(&mut h);
            h.finish()
        }));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn maps_and_reads_all_entries() {
        let path = temp_stream_file("ADD_VERTEX,1,\n# note\nADD_EDGE,1-2,w\nMARKER,end,\n");
        let (rx, handle) = spawn_mmap_reader(&path, 16);
        let entries: Vec<SharedEntry> = rx.iter().collect();
        assert_eq!(entries.len(), 3);
        assert!(entries[2].is_marker());
        assert_eq!(handle.join().unwrap().unwrap(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_yields_no_entries() {
        let path = temp_stream_file("");
        let (rx, handle) = spawn_mmap_reader(&path, 4);
        assert!(rx.iter().next().is_none());
        assert_eq!(handle.join().unwrap().unwrap(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let path = temp_stream_file("ADD_VERTEX,1,\nGARBAGE\n");
        let (rx, handle) = spawn_mmap_reader(&path, 4);
        let entries: Vec<SharedEntry> = rx.iter().collect();
        assert_eq!(entries.len(), 1);
        let err = handle.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 2"), "got: {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let (rx, handle) = spawn_mmap_reader("/nonexistent/gt-stream.csv", 4);
        assert!(rx.iter().next().is_none());
        assert!(handle.join().unwrap().is_err());
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn nonempty_files_actually_map() {
        let path = temp_stream_file("ADD_VERTEX,1,\n");
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_mapped());
        assert_eq!(map.as_bytes(), b"ADD_VERTEX,1,\n");
        std::fs::remove_file(path).ok();
    }

    /// The two sources must be indistinguishable downstream: byte-for-byte
    /// identical entry sequences over the same file.
    #[test]
    fn mmap_and_buffered_sources_agree() {
        let content: String = (0..500)
            .map(|i| {
                if i % 100 == 99 {
                    format!("MARKER,w-{i},\n")
                } else {
                    format!("ADD_VERTEX,{i},state={i}\n")
                }
            })
            .collect();
        let path = temp_stream_file(&content);
        let (mmap_rx, mmap_handle) = spawn_mmap_reader(&path, 64);
        let (file_rx, file_handle) = crate::reader::spawn_file_reader(&path, 64);
        let via_mmap: Vec<SharedEntry> = mmap_rx.iter().collect();
        let via_file: Vec<SharedEntry> = file_rx.iter().collect();
        assert_eq!(via_mmap.len(), via_file.len());
        for (a, b) in via_mmap.iter().zip(&via_file) {
            assert_eq!(**a, **b);
        }
        assert_eq!(
            mmap_handle.join().unwrap().unwrap(),
            file_handle.join().unwrap().unwrap()
        );
        std::fs::remove_file(path).ok();
    }
}

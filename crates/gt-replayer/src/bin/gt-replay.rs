//! `gt-replay` — the stream replayer as a standalone tool.
//!
//! Reads a graph stream file and replays it at a target rate into stdout
//! (pipe mode) or a TCP endpoint, mirroring the paper's replayer
//! deployment (§5.1, Table 2). The streaming report goes to stderr so
//! pipe mode stays clean.
//!
//! ```text
//! gt-replay <stream.csv> [--rate EVENTS_PER_S] [--tcp HOST:PORT] [--no-pauses]
//! ```

use std::io::Write;
use std::process::ExitCode;

use gt_replayer::{
    spawn_file_reader, EventSink, Replayer, ReplayerConfig, TcpSink, WriterSink,
};

struct Args {
    stream_file: String,
    rate: f64,
    tcp: Option<String>,
    honor_pauses: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut stream_file = None;
    let mut rate = 1_000.0;
    let mut tcp = None;
    let mut honor_pauses = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rate" => {
                rate = args
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad rate: {e}"))?;
                if !(rate > 0.0) {
                    return Err("rate must be positive".into());
                }
            }
            "--tcp" => tcp = Some(args.next().ok_or("--tcp needs HOST:PORT")?),
            "--no-pauses" => honor_pauses = false,
            "--help" | "-h" => {
                return Err(
                    "usage: gt-replay <stream.csv> [--rate EVENTS_PER_S] [--tcp HOST:PORT] [--no-pauses]"
                        .into(),
                )
            }
            other if stream_file.is_none() && !other.starts_with('-') => {
                stream_file = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        stream_file: stream_file.ok_or("missing stream file argument")?,
        rate,
        tcp,
        honor_pauses,
    })
}

fn run(args: Args) -> Result<(), String> {
    let (rx, reader) = spawn_file_reader(&args.stream_file, 64 * 1024);
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: args.rate,
        honor_pauses: args.honor_pauses,
        ..Default::default()
    });

    let report = match &args.tcp {
        Some(addr) => {
            let mut sink =
                TcpSink::connect(addr.as_str()).map_err(|e| format!("tcp connect: {e}"))?;
            let report = replayer
                .replay(rx.iter(), &mut sink)
                .map_err(|e| format!("replay: {e}"))?;
            sink.flush().map_err(|e| format!("flush: {e}"))?;
            report
        }
        None => {
            let stdout = std::io::stdout();
            let mut sink = WriterSink::new(std::io::BufWriter::new(stdout.lock()));
            let report = replayer
                .replay(rx.iter(), &mut sink)
                .map_err(|e| format!("replay: {e}"))?;
            sink.flush().map_err(|e| format!("flush: {e}"))?;
            report
        }
    };

    let read = reader
        .join()
        .map_err(|_| "reader thread panicked".to_owned())?
        .map_err(|e| format!("stream file: {e}"))?;

    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "entries read:     {read}");
    let _ = writeln!(err, "graph events:     {}", report.graph_events);
    let _ = writeln!(
        err,
        "duration:         {:.3}s",
        report.duration_micros as f64 / 1e6
    );
    let _ = writeln!(err, "achieved rate:    {:.0} events/s", report.achieved_rate);
    for (name, t) in &report.markers {
        let _ = writeln!(err, "marker {name}: t = {:.6}s", *t as f64 / 1e6);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gt-replay: {msg}");
            ExitCode::FAILURE
        }
    }
}

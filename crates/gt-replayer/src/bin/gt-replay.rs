//! `gt-replay` — the stream replayer as a standalone tool.
//!
//! Streams a graph stream file through the decoupled reader→pacer
//! pipeline ([`ReplaySession`]) at a target rate into stdout (pipe mode)
//! or a TCP endpoint, mirroring the paper's replayer deployment (§5.1,
//! Table 2). TCP targets are driven through the fault-tolerant connector:
//! a dropped connection is re-dialed with capped exponential backoff and
//! the stream resumes. The streaming report — including per-stage
//! pipeline metrics — goes to stderr so pipe mode stays clean.
//!
//! ```text
//! gt-replay <stream.csv> [--rate EVENTS_PER_S] [--tcp HOST:PORT]
//!           [--no-pauses] [--buffer ENTRIES] [--max-reconnects N]
//! ```

use std::io::Write;
use std::process::ExitCode;

use gt_replayer::{
    EventSink, ReconnectPolicy, ReconnectingTcpSink, ReplaySession, ReplaySessionConfig,
    ReplayerConfig, SessionReport, WriterSink,
};

struct Args {
    stream_file: String,
    rate: f64,
    tcp: Option<String>,
    honor_pauses: bool,
    buffer: usize,
    max_reconnects: u32,
    mmap: bool,
}

const USAGE: &str = "usage: gt-replay <stream.csv> [--rate EVENTS_PER_S] [--tcp HOST:PORT] \
                     [--no-pauses] [--buffer ENTRIES] [--max-reconnects N] [--mmap]";

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut stream_file = None;
    let mut rate: f64 = 1_000.0;
    let mut tcp = None;
    let mut honor_pauses = true;
    let mut buffer = 64 * 1024;
    let mut max_reconnects = 8u32;
    let mut mmap = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rate" => {
                rate = args
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad rate: {e}"))?;
                if rate.is_nan() || rate <= 0.0 {
                    return Err("rate must be positive".into());
                }
            }
            "--tcp" => tcp = Some(args.next().ok_or("--tcp needs HOST:PORT")?),
            "--no-pauses" => honor_pauses = false,
            "--mmap" => mmap = true,
            "--buffer" => {
                buffer = args
                    .next()
                    .ok_or("--buffer needs a value")?
                    .parse()
                    .map_err(|e| format!("bad buffer: {e}"))?;
            }
            "--max-reconnects" => {
                max_reconnects = args
                    .next()
                    .ok_or("--max-reconnects needs a value")?
                    .parse()
                    .map_err(|e| format!("bad max-reconnects: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other if stream_file.is_none() && !other.starts_with('-') => {
                stream_file = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        stream_file: stream_file.ok_or("missing stream file argument")?,
        rate,
        tcp,
        honor_pauses,
        buffer,
        max_reconnects,
        mmap,
    })
}

fn report_to_stderr(report: &SessionReport) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "entries read:     {}", report.entries_read);
    let _ = writeln!(err, "graph events:     {}", report.replay.graph_events);
    let _ = writeln!(
        err,
        "duration:         {:.3}s ({:.3}s paused)",
        report.replay.duration_micros as f64 / 1e6,
        report.replay.paused_micros as f64 / 1e6
    );
    let _ = writeln!(
        err,
        "achieved rate:    {:.0} events/s (active time)",
        report.replay.achieved_rate
    );
    let _ = writeln!(
        err,
        "reader stall:     {:.3}s",
        report.reader_stall_micros as f64 / 1e6
    );
    let _ = writeln!(
        err,
        "sink stall:       {:.3}s",
        report.sink_stall_micros as f64 / 1e6
    );
    let _ = writeln!(err, "max queue depth:  {}", report.max_queue_depth);
    let _ = writeln!(
        err,
        "emit lateness:    mean {:.0}us, p99 <= {}us, max {}us",
        report.emit_latency.mean(),
        report.emit_latency.quantile_upper_bound(0.99),
        report.emit_latency.max
    );
    for event in &report.sink_events {
        let _ = writeln!(
            err,
            "sink event at {:.6}s: {:?} ({})",
            event.t_micros as f64 / 1e6,
            event.kind,
            event.detail
        );
    }
    for (name, t) in &report.replay.markers {
        let _ = writeln!(err, "marker {name}: t = {:.6}s", *t as f64 / 1e6);
    }
}

fn run(args: Args) -> Result<(), String> {
    let session = ReplaySession::new(ReplaySessionConfig {
        replayer: ReplayerConfig {
            target_rate: args.rate,
            honor_pauses: args.honor_pauses,
            ..Default::default()
        },
        buffer: args.buffer,
        mmap: args.mmap,
    });

    let report = match &args.tcp {
        Some(addr) => {
            let mut sink = ReconnectingTcpSink::connect(addr.as_str())
                .map_err(|e| format!("tcp connect: {e}"))?
                .with_policy(ReconnectPolicy {
                    max_attempts: args.max_reconnects,
                    ..Default::default()
                });
            let report = session
                .run(&args.stream_file, &mut sink)
                .map_err(|e| format!("replay: {e}"))?;
            sink.flush().map_err(|e| format!("flush: {e}"))?;
            report
        }
        None => {
            let stdout = std::io::stdout();
            let mut sink = WriterSink::new(std::io::BufWriter::new(stdout.lock()));
            let report = session
                .run(&args.stream_file, &mut sink)
                .map_err(|e| format!("replay: {e}"))?;
            sink.flush().map_err(|e| format!("flush: {e}"))?;
            report
        }
    };

    report_to_stderr(&report);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gt-replay: {msg}");
            ExitCode::FAILURE
        }
    }
}

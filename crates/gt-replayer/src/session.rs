//! The end-to-end replay pipeline: file → parse → pace → sink.
//!
//! [`ReplaySession`] composes the decoupled reader thread
//! ([`crate::reader::spawn_file_reader`]), the bounded hand-off channel,
//! and the pacing [`crate::Replayer`] into the multi-threaded design of
//! §5.1 — the stream is parsed on one thread and emitted on another, so
//! a stream of any length replays in bounded memory (the channel holds at
//! most `buffer` entries; the file is never materialized).
//!
//! Every stage is instrumented through a [`MetricsHub`]:
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `ingress_events` | counter | graph events emitted |
//! | `queue_depth` | gauge | reader→emitter channel occupancy |
//! | `reader_stall_micros` | counter | emitter time blocked on an empty channel (reader too slow) |
//! | `sink_stall_micros` | counter | emitter time blocked in `send`/`flush` (consumer too slow) |
//! | `emit_latency_micros` | histogram | per-event deadline miss |
//!
//! Passing a shared hub (and clock) lets harness logger threads sample
//! the pipeline live; the final values are also folded into the returned
//! [`SessionReport`].

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Receiver;
use gt_core::prelude::*;
use gt_metrics::hub::{Counter, Gauge};
use gt_metrics::{Clock, HistogramSnapshot, MetricsHub, WallClock};
use gt_trace::{Probe, Stage, Tracer};

use crate::errors::ReplayError;
use crate::reader::{spawn_file_reader, DEFAULT_BUFFER};
use crate::replayer::{ReplayReport, Replayer, ReplayerConfig};
use crate::sink::{EventSink, SinkEvent};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct ReplaySessionConfig {
    /// Pacing and reporting configuration for the emitter stage.
    pub replayer: ReplayerConfig,
    /// Capacity of the reader→emitter channel, in entries. This is the
    /// pipeline's only buffering — it bounds both memory use and how far
    /// the reader can run ahead.
    pub buffer: usize,
    /// Read the stream file through a memory mapping
    /// ([`crate::mmap::spawn_mmap_reader`]) instead of the buffered
    /// reader: borrowed parsing straight out of the page cache, the
    /// choice for multi-GB replays. Off by default.
    pub mmap: bool,
}

impl Default for ReplaySessionConfig {
    fn default() -> Self {
        ReplaySessionConfig {
            replayer: ReplayerConfig::default(),
            buffer: DEFAULT_BUFFER,
            mmap: false,
        }
    }
}

/// What a pipeline run measured: the emitter's streaming metrics plus
/// per-stage health.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The emitter's streaming metrics (rates, markers, pauses).
    pub replay: ReplayReport,
    /// Entries the reader parsed from the file.
    pub entries_read: u64,
    /// Cumulative time the emitter spent waiting on an empty channel.
    pub reader_stall_micros: u64,
    /// Cumulative time the emitter spent inside sink `send`/`flush`.
    pub sink_stall_micros: u64,
    /// Highest observed reader→emitter channel occupancy.
    pub max_queue_depth: i64,
    /// Distribution of per-event deadline misses, microseconds.
    pub emit_latency: HistogramSnapshot,
    /// Notable sink events (disconnects, reconnects), drained after the
    /// replay.
    pub sink_events: Vec<SinkEvent>,
}

/// The file-backed, fault-tolerant replay pipeline driver.
pub struct ReplaySession {
    config: ReplaySessionConfig,
    clock: Arc<dyn Clock>,
    hub: MetricsHub,
    tracer: Option<Tracer>,
    abort: Option<Arc<AtomicBool>>,
}

impl ReplaySession {
    /// A session with its own clock and a private metrics hub.
    pub fn new(config: ReplaySessionConfig) -> Self {
        ReplaySession {
            config,
            clock: Arc::new(WallClock::start()),
            hub: MetricsHub::new(),
            tracer: None,
            abort: None,
        }
    }

    /// Uses a shared run clock (marker and sink-event timestamps align
    /// with harness logger timestamps).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Uses a shared metrics hub so logger threads can sample the
    /// pipeline while it runs.
    #[must_use]
    pub fn with_hub(mut self, hub: MetricsHub) -> Self {
        self.hub = hub;
        self
    }

    /// The hub carrying the pipeline's live metrics.
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Attaches a Level-2 [`Tracer`]: the pipeline stamps sampled graph
    /// events at [`Stage::ReaderDequeue`], [`Stage::PacedEmit`], and
    /// [`Stage::SinkWrite`] so the tracer's collector can break the
    /// replayer-side latency down by stage.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Attaches a shared abort flag, forwarded to the emitter stage: when
    /// set (normally by an experiment watchdog), the replay stops early
    /// and the report's `replay.aborted` is true. The reader thread winds
    /// down on its own once the emitter drops the channel.
    #[must_use]
    pub fn with_abort_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.abort = Some(flag);
        self
    }

    /// Streams `path` through the pipeline into `sink`. The file is read
    /// and parsed on a dedicated thread; this thread paces and emits.
    pub fn run<S: EventSink + ?Sized>(
        &self,
        path: impl AsRef<Path>,
        sink: &mut S,
    ) -> Result<SessionReport, ReplayError> {
        let (rx, reader_handle) = if self.config.mmap {
            crate::mmap::spawn_mmap_reader(path.as_ref(), self.config.buffer)
        } else {
            spawn_file_reader(path.as_ref(), self.config.buffer)
        };

        let max_queue_depth = Arc::new(AtomicI64::new(0));
        let entries = InstrumentedRx {
            rx,
            queue_depth: self.hub.gauge("queue_depth"),
            reader_stall: self.hub.counter("reader_stall_micros"),
            max_depth: Arc::clone(&max_queue_depth),
            trace_probe: self.tracer.as_ref().map(|t| t.probe(Stage::ReaderDequeue)),
        };
        let mut instrumented_sink = InstrumentedSink {
            inner: sink,
            sink_stall: self.hub.counter("sink_stall_micros"),
            trace_probe: self.tracer.as_ref().map(|t| t.probe(Stage::SinkWrite)),
        };

        let emit_latency = self.hub.histogram("emit_latency_micros");
        let mut replayer = Replayer::new(self.config.replayer.clone())
            .with_clock(Arc::clone(&self.clock))
            .with_ingress_counter(self.hub.counter("ingress_events"))
            .with_emit_latency(emit_latency.clone());
        if let Some(tracer) = &self.tracer {
            replayer = replayer.with_trace_probe(tracer.probe(Stage::PacedEmit));
        }
        if let Some(flag) = &self.abort {
            replayer = replayer.with_abort_flag(Arc::clone(flag));
        }

        // `replay` consumes the entry iterator, so by the time it returns
        // the receiver is dropped and the reader thread is unblocked and
        // winding down — joining it cannot deadlock, on either path.
        let replay_result = replayer.replay(entries, &mut instrumented_sink);
        let reader_result = reader_handle.join();

        let replay = replay_result.map_err(ReplayError::from_sink_error)?;
        let entries_read = match reader_result {
            Ok(Ok(n)) => n,
            Ok(Err(e)) => return Err(ReplayError::Source(e)),
            Err(_) => return Err(ReplayError::ReaderPanicked),
        };

        Ok(SessionReport {
            replay,
            entries_read,
            reader_stall_micros: self.hub.counter("reader_stall_micros").get(),
            sink_stall_micros: self.hub.counter("sink_stall_micros").get(),
            max_queue_depth: max_queue_depth.load(Ordering::Relaxed),
            emit_latency: emit_latency.snapshot(),
            sink_events: sink.drain_events(),
        })
    }
}

/// The reader→emitter channel, instrumented: time blocked on `recv` is
/// reader stall; occupancy after each take feeds the queue-depth gauge.
struct InstrumentedRx {
    rx: Receiver<SharedEntry>,
    queue_depth: Gauge,
    reader_stall: Counter,
    max_depth: Arc<AtomicI64>,
    trace_probe: Option<Probe>,
}

impl Iterator for InstrumentedRx {
    type Item = SharedEntry;

    fn next(&mut self) -> Option<SharedEntry> {
        // Sample occupancy before taking as well as after: a batching
        // emitter drains a full channel so fast that the post-pop length
        // alone never observes the capacity-pinned state.
        self.max_depth
            .fetch_max(self.rx.len() as i64, Ordering::Relaxed);
        let start = Instant::now();
        let item = self.rx.recv().ok();
        self.reader_stall.add(start.elapsed().as_micros() as u64);
        let depth = self.rx.len() as i64;
        self.queue_depth.set(depth);
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        // Only graph events advance the trace sequence — every stage must
        // count the same stream positions for seq-based matching to hold.
        if let (Some(probe), Some(entry)) = (&self.trace_probe, &item) {
            if entry.as_ref().is_graph() {
                probe.stamp();
            }
        }
        item
    }
}

/// Times every `send`/`flush`, accumulating sink stall.
struct InstrumentedSink<'a, S: ?Sized> {
    inner: &'a mut S,
    sink_stall: Counter,
    trace_probe: Option<Probe>,
}

impl<S: EventSink + ?Sized> EventSink for InstrumentedSink<'_, S> {
    fn open(&mut self) -> std::io::Result<()> {
        self.inner.open()
    }

    fn send(&mut self, entry: &StreamEntry) -> std::io::Result<()> {
        // Stamp on entry (before the write) so the sink-write stamp never
        // precedes the paced-emit stamp of the same event. Markers and
        // control events do not advance the trace sequence.
        if let Some(probe) = &self.trace_probe {
            if entry.is_graph() {
                probe.stamp();
            }
        }
        let start = Instant::now();
        let result = self.inner.send(entry);
        self.sink_stall.add(start.elapsed().as_micros() as u64);
        result
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> std::io::Result<()> {
        // Replayer batches carry only graph events, so the whole batch
        // advances the trace sequence.
        if let Some(probe) = &self.trace_probe {
            probe.stamp_n(batch.len() as u64);
        }
        let start = Instant::now();
        let result = self.inner.send_batch(batch);
        self.sink_stall.add(start.elapsed().as_micros() as u64);
        result
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let start = Instant::now();
        let result = self.inner.flush();
        self.sink_stall.add(start.elapsed().as_micros() as u64);
        result
    }

    fn close(&mut self) -> std::io::Result<()> {
        let start = Instant::now();
        let result = self.inner.close();
        self.sink_stall.add(start.elapsed().as_micros() as u64);
        result
    }

    fn drain_events(&mut self) -> Vec<SinkEvent> {
        self.inner.drain_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use std::path::PathBuf;

    fn temp_stream_file(name: &str, lines: usize) -> PathBuf {
        let dir = std::env::temp_dir().join("gt-replayer-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.csv"));
        let mut content = String::new();
        for i in 0..lines {
            content.push_str(&format!("ADD_VERTEX,{i},\n"));
        }
        content.push_str("MARKER,end,\n");
        std::fs::write(&path, content).unwrap();
        path
    }

    fn fast_config(buffer: usize) -> ReplaySessionConfig {
        ReplaySessionConfig {
            replayer: ReplayerConfig {
                target_rate: 1e7,
                ..Default::default()
            },
            buffer,
            mmap: false,
        }
    }

    #[test]
    fn streams_file_end_to_end() {
        let path = temp_stream_file("end-to-end", 5_000);
        let session = ReplaySession::new(fast_config(64));
        let mut sink = CollectSink::new();
        let report = session.run(&path, &mut sink).unwrap();
        assert_eq!(report.replay.graph_events, 5_000);
        assert_eq!(report.entries_read, 5_001);
        assert_eq!(sink.entries.len(), 5_001);
        assert_eq!(report.replay.markers.len(), 1);
        // The channel is bounded: depth can never exceed capacity.
        assert!(report.max_queue_depth <= 64, "{}", report.max_queue_depth);
        // Every graph event recorded a deadline-miss sample.
        assert_eq!(report.emit_latency.count, 5_000);
        assert!(report.sink_events.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_error_surfaces_as_source_error() {
        let dir = std::env::temp_dir().join("gt-replayer-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "ADD_VERTEX,1,\nNOT A LINE\n").unwrap();
        let session = ReplaySession::new(fast_config(16));
        let mut sink = CollectSink::new();
        match session.run(&path, &mut sink) {
            Err(ReplayError::Source(_)) => {}
            other => panic!("expected Source error, got {other:?}"),
        }
        // The valid prefix still flowed through before the error.
        assert_eq!(sink.entries.len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_surfaces_as_source_error() {
        let session = ReplaySession::new(fast_config(16));
        let mut sink = CollectSink::new();
        match session.run("/nonexistent/stream.csv", &mut sink) {
            Err(ReplayError::Source(CoreError::Io(_))) => {}
            other => panic!("expected Source(Io) error, got {other:?}"),
        }
    }

    #[test]
    fn tracer_breaks_replayer_latency_down_by_stage() {
        use gt_trace::{TraceConfig, Tracer};

        let path = temp_stream_file("traced", 2_000);
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let trace_hub = MetricsHub::new();
        let tracer = Tracer::new(
            TraceConfig::default().sampling(16),
            Arc::clone(&clock),
            &trace_hub,
        );
        let session = ReplaySession::new(fast_config(64))
            .with_clock(clock)
            .with_tracer(&tracer);
        let mut sink = CollectSink::new();
        let report = session.run(&path, &mut sink).unwrap();
        assert_eq!(report.replay.graph_events, 2_000);
        let trace = tracer.stop();
        // 2000 events at 1-in-16 → 125 sampled seqs; each can complete
        // reader→emit and emit→sink. Ring drops are possible in theory
        // (they shed load rather than block), so assert on what arrived.
        assert!(trace.matched > 0, "no stage pairs matched");
        for metric in ["reader_to_emit_micros", "emit_to_sink_micros"] {
            assert!(
                trace.records.iter().any(|r| r.metric == metric),
                "no {metric} records"
            );
            assert!(trace_hub.histogram(metric).count() > 0, "{metric} empty");
        }
        // No SUT side in this pipeline: connector/apply pairs must be
        // absent, not fabricated.
        assert!(trace
            .records
            .iter()
            .all(|r| r.metric != "emit_to_connector_micros"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shared_hub_exposes_live_metrics() {
        let path = temp_stream_file("shared-hub", 1_000);
        let hub = MetricsHub::new();
        let session = ReplaySession::new(fast_config(32)).with_hub(hub.clone());
        let mut sink = CollectSink::new();
        session.run(&path, &mut sink).unwrap();
        assert_eq!(hub.counter("ingress_events").get(), 1_000);
        let histograms = hub.histogram_values();
        assert!(histograms
            .iter()
            .any(|(name, snap)| name == "emit_latency_micros" && snap.count == 1_000));
        std::fs::remove_file(path).ok();
    }
}

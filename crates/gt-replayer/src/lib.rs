#![warn(missing_docs)]

//! # gt-replayer
//!
//! The graph stream replayer (paper §4.1, §5.1): emits a stream of events
//! "with a uniform, yet tunable event rate", decoupling reading from
//! emitting with a multi-threaded design, using high-precision timestamps
//! and busy-waiting for timeliness.
//!
//! * [`sink`] — where events go: an in-process channel, any
//!   [`std::io::Write`] (pipes, files, stdout), or a TCP connection; all
//!   platform-specific connectors implement one trait, keeping the harness
//!   platform-agnostic (§3.3).
//! * [`pacing`] — the deadline-based rate controller with hybrid
//!   sleep/busy-wait.
//! * [`replayer`] — the driver: honours in-stream `SPEED` and `PAUSE`
//!   control events, timestamps `MARKER` events against the run clock, and
//!   reports achieved ingress rates (§4.3 "Streaming Metrics").
//! * [`reader`] — the decoupled file-reader thread feeding the replayer
//!   through a bounded channel.

pub mod pacing;
pub mod reader;
pub mod replayer;
pub mod sink;
pub mod source;

pub use pacing::Pacer;
pub use reader::spawn_file_reader;
pub use replayer::{ReplayReport, Replayer, ReplayerConfig};
pub use sink::{ChannelSink, CollectSink, EventSink, TcpSink, WriterSink};
pub use source::spawn_tcp_source;

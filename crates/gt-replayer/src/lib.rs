#![warn(missing_docs)]

//! # gt-replayer
//!
//! The graph stream replayer (paper §4.1, §5.1): emits a stream of events
//! "with a uniform, yet tunable event rate", decoupling reading from
//! emitting with a multi-threaded design, using high-precision timestamps
//! and busy-waiting for timeliness.
//!
//! * [`sink`] — where events go: an in-process channel, any
//!   [`std::io::Write`] (pipes, files, stdout), or a TCP connection; all
//!   platform-specific connectors implement one trait, keeping the harness
//!   platform-agnostic (§3.3).
//! * [`pacing`] — the deadline-based rate controller with hybrid
//!   sleep/busy-wait.
//! * [`replayer`] — the driver: honours in-stream `SPEED` and `PAUSE`
//!   control events, timestamps `MARKER` events against the run clock, and
//!   reports achieved ingress rates (§4.3 "Streaming Metrics").
//! * [`reader`] — the decoupled file-reader thread feeding the replayer
//!   through a bounded channel.
//! * [`mmap`] — the memory-mapped twin of the reader thread: borrowed
//!   parsing straight out of the page cache, for multi-GB replays.
//! * [`session`] — the composed file→parse→pace→sink pipeline with
//!   per-stage instrumentation.
//! * [`reconnect`] — the fault-tolerant TCP connector (capped exponential
//!   backoff, at-least-once resume across connection loss).
//! * [`errors`] — the typed pipeline error.

pub mod errors;
pub mod mmap;
pub mod pacing;
pub mod pattern;
pub mod reader;
pub mod reconnect;
pub mod replayer;
pub mod session;
pub mod sink;
pub mod source;

pub use errors::ReplayError;
pub use mmap::{spawn_mmap_reader, MmapFile};
pub use pacing::{Pacer, PacerCore, Schedule};
pub use pattern::{CompiledPattern, RatePattern};
pub use reader::spawn_file_reader;
pub use reconnect::{ReconnectPolicy, ReconnectingTcpSink};
pub use replayer::{ReplayReport, Replayer, ReplayerConfig};
pub use session::{ReplaySession, ReplaySessionConfig, SessionReport};
pub use sink::{
    ChannelSink, CollectSink, EventSink, SinkEvent, SinkEventKind, TcpSink, WriterSink,
};
pub use source::spawn_tcp_source;

//! A fault-tolerant TCP connector: reconnect with capped exponential
//! backoff, at-least-once delivery across connection loss.
//!
//! The paper's harness drives external systems over plain sockets; a
//! system under test that restarts mid-experiment (crash-recovery runs
//! are an explicit GraphTides scenario) kills the connection. A plain
//! [`crate::TcpSink`] aborts the whole replay; [`ReconnectingTcpSink`]
//! instead re-dials with exponential backoff and replays every line not
//! yet confirmed flushed, resuming the stream where it left off.
//!
//! Delivery across a reconnect is *at-least-once*: lines buffered since
//! the last successful flush are re-sent on the new connection, so a
//! consumer that persisted some of them before the drop sees duplicates.
//! The periodic auto-flush (`flush_every`) bounds that window.

use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use gt_core::prelude::*;
use gt_metrics::{Clock, WallClock};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::errors::ReplayError;
use crate::sink::{DisconnectCause, EventSink, SinkEvent, SinkEventKind};

/// How a [`ReconnectingTcpSink`] retries a lost connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconnectPolicy {
    /// Consecutive failed dial attempts before giving up with
    /// [`ReplayError::SinkGaveUp`]. Zero means fail on the first loss.
    pub max_attempts: u32,
    /// Wait before the first retry.
    pub initial_backoff: Duration,
    /// Cap on the per-retry wait.
    pub max_backoff: Duration,
    /// Backoff growth factor per failed attempt.
    pub multiplier: f64,
    /// Fraction of each backoff that is randomized: attempt `k`'s wait is
    /// drawn uniformly from `base_k * [1 - jitter, 1 + jitter]` (then
    /// capped at `max_backoff`). Without jitter, hundreds of load clients
    /// cut off by one SUT restart re-dial in lockstep — a thundering herd
    /// that turns recovery itself into a load spike. `0.0` disables.
    pub jitter: f64,
    /// Seed for the jitter draw. The jitter is *seeded-deterministic*:
    /// the full backoff schedule is a pure function of the policy, so
    /// chaos-run signatures stay reproducible. Give each client a
    /// distinct seed (e.g. its connection index) so their retries
    /// desynchronize; the same seed replays the same schedule.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl ReconnectPolicy {
    /// A policy that never reconnects — first loss is fatal, matching
    /// plain [`crate::TcpSink`] behavior but with the typed error.
    pub fn give_up_immediately() -> Self {
        ReconnectPolicy {
            max_attempts: 0,
            ..Default::default()
        }
    }

    /// Sets the jitter seed (builder style) — one distinct seed per
    /// client is what desynchronizes a reconnect herd.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full per-attempt wait schedule for outage number `round`
    /// (0-based count of disconnects this sink has seen), jitter applied.
    ///
    /// Pure and deterministic: `(policy, round) → waits`, no clock or
    /// socket involved, so tests can assert desynchronization without
    /// sleeping. Successive rounds draw different jitter (the round is
    /// folded into the seed) but remain reproducible run-to-run.
    pub fn backoff_schedule(&self, round: u64) -> Vec<Duration> {
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter {} outside [0, 1]",
            self.jitter
        );
        // SplitMix64-style fold so round 0/1/2… give unrelated draws.
        let mut rng = StdRng::seed_from_u64(self.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let max = self.max_backoff.as_secs_f64();
        let mut base = self.initial_backoff.as_secs_f64().min(max);
        (0..self.max_attempts)
            .map(|_| {
                let factor = if self.jitter > 0.0 {
                    1.0 - self.jitter + 2.0 * self.jitter * rng.random::<f64>()
                } else {
                    1.0
                };
                let wait = (base * factor).min(max);
                base = (base * self.multiplier).min(max);
                Duration::from_secs_f64(wait.max(0.0))
            })
            .collect()
    }
}

/// A TCP sink that survives connection loss.
pub struct ReconnectingTcpSink {
    addr: String,
    writer: Option<BufWriter<TcpStream>>,
    policy: ReconnectPolicy,
    clock: Arc<dyn Clock>,
    /// Lines confirmed flushed into the socket since connect.
    emitted_lines: u64,
    /// Lines written since the last successful flush — replayed onto a
    /// fresh connection after a drop.
    pending: Vec<String>,
    /// Successful reconnects so far.
    reconnects: u64,
    /// Disconnects so far — the jitter round, so successive outages draw
    /// fresh (but still seeded-deterministic) backoff schedules.
    disconnects: u64,
    /// Flush automatically once this many lines are pending, bounding
    /// both userspace buffering and the at-least-once duplicate window.
    flush_every: usize,
    /// Write timeout applied to every dialed connection, so a blackholed
    /// peer surfaces as a timed-out write instead of blocking forever.
    write_timeout: Option<Duration>,
    /// Disconnects bucketed by [`DisconnectCause`] (see
    /// [`DisconnectCause::index`]).
    disconnects_by_cause: [u64; 4],
    /// The most recent disconnect's cause, carried into a final give-up.
    last_cause: DisconnectCause,
    events: Vec<SinkEvent>,
    buf: String,
}

const SOCKET_BUFFER: usize = 64 * 1024;

impl ReconnectingTcpSink {
    /// Connects to `addr`, failing fast if the first dial fails (a target
    /// that was never up is a configuration error, not a fault to ride
    /// out).
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> io::Result<Self> {
        let addr_string = addr.to_string();
        let stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true)?;
        Ok(ReconnectingTcpSink {
            addr: addr_string,
            writer: Some(BufWriter::with_capacity(SOCKET_BUFFER, stream)),
            policy: ReconnectPolicy::default(),
            clock: Arc::new(WallClock::start()),
            emitted_lines: 0,
            pending: Vec::new(),
            reconnects: 0,
            disconnects: 0,
            flush_every: 256,
            write_timeout: None,
            disconnects_by_cause: [0; 4],
            last_cause: DisconnectCause::Other,
            events: Vec::new(),
            buf: String::with_capacity(64),
        })
    }

    /// Sets the reconnect policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Uses a shared run clock so sink events line up with replay marker
    /// timestamps.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the auto-flush cadence in lines.
    #[must_use]
    pub fn with_flush_every(mut self, lines: usize) -> Self {
        self.flush_every = lines.max(1);
        self
    }

    /// Applies a write timeout to the current and all future connections,
    /// so a blackholed (partitioned) peer turns into a [`DisconnectCause::
    /// Stalled`] reconnect instead of an unbounded block.
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        if let Some(w) = self.writer.as_ref() {
            w.get_ref().set_write_timeout(self.write_timeout).ok();
        }
        self
    }

    /// Disconnects observed for one specific cause.
    pub fn disconnects_of(&self, cause: DisconnectCause) -> u64 {
        self.disconnects_by_cause[cause.index()]
    }

    /// Per-cause disconnect counters, as `(label, count)` pairs in
    /// [`DisconnectCause::ALL`] order.
    pub fn disconnect_counts(&self) -> Vec<(&'static str, u64)> {
        DisconnectCause::ALL
            .iter()
            .map(|c| (c.label(), self.disconnects_by_cause[c.index()]))
            .collect()
    }

    /// Lines confirmed flushed to the socket.
    pub fn emitted_lines(&self) -> u64 {
        self.emitted_lines
    }

    /// Successful reconnects so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn push_event(&mut self, kind: SinkEventKind, detail: String) {
        self.events.push(SinkEvent {
            t_micros: self.clock.now_micros(),
            kind,
            detail,
        });
    }

    /// One dial attempt: connect and replay all pending lines.
    fn try_dial(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(self.write_timeout)?;
        let mut writer = BufWriter::with_capacity(SOCKET_BUFFER, stream);
        for line in &self.pending {
            writer.write_all(line.as_bytes())?;
        }
        self.writer = Some(writer);
        Ok(())
    }

    /// Refines the error-kind classification of `trigger` with a
    /// nonblocking probe read of the dying socket: a queued FIN shows up as
    /// EOF (the peer closed gracefully even though our write error said
    /// only "timed out"), a queued RST as `ConnectionReset`, and silence
    /// confirms a stall.
    fn probe_cause(trigger: &io::Error, writer: Option<&BufWriter<TcpStream>>) -> DisconnectCause {
        let classified = DisconnectCause::classify(trigger);
        if classified == DisconnectCause::Reset {
            // A reset write error is definitive; the probe would see EOF
            // because the kernel already consumed the pending socket error.
            return classified;
        }
        let Some(writer) = writer else {
            return classified;
        };
        let stream = writer.get_ref();
        if stream.set_nonblocking(true).is_err() {
            return classified;
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => DisconnectCause::ClosedByPeer,
            Ok(_) => classified,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => classified,
            Err(e) => DisconnectCause::classify(&e),
        }
    }

    /// Whether the peer has half-closed (sent FIN) on a connection whose
    /// writes still succeed. Checked after each successful flush: a
    /// gracefully shut-down server otherwise goes unnoticed until buffers
    /// fill, silently absorbing the stream into a dead socket. The probe
    /// is one nonblocking `peek`; blocking mode is restored afterwards.
    fn peer_sent_fin(writer: &BufWriter<TcpStream>) -> bool {
        let stream = writer.get_ref();
        if stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let fin = matches!(stream.peek(&mut probe), Ok(0));
        stream.set_nonblocking(false).ok();
        fin
    }

    /// Reconnect loop with capped exponential backoff and seeded jitter.
    /// On success the new connection already carries the replayed pending
    /// lines.
    fn reconnect(&mut self, trigger: &io::Error) -> io::Result<()> {
        let cause = Self::probe_cause(trigger, self.writer.as_ref());
        self.writer = None;
        self.disconnects_by_cause[cause.index()] += 1;
        self.last_cause = cause;
        self.push_event(
            SinkEventKind::Disconnected { cause },
            format!("{}: {trigger}", cause.label()),
        );
        let schedule = self.policy.backoff_schedule(self.disconnects);
        self.disconnects += 1;
        let mut last = io::Error::new(io::ErrorKind::NotConnected, trigger.to_string());
        for (i, backoff) in schedule.iter().enumerate() {
            std::thread::sleep(*backoff);
            match self.try_dial() {
                Ok(()) => {
                    self.reconnects += 1;
                    self.push_event(
                        SinkEventKind::Reconnected {
                            attempt: i as u32 + 1,
                        },
                        format!("replayed {} pending lines", self.pending.len()),
                    );
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(ReplayError::SinkGaveUp {
            attempts: self.policy.max_attempts,
            last,
            cause,
        }
        .into_io())
    }

    fn flush_inner(&mut self) -> io::Result<()> {
        // Bounded recovery: each round either flushes, or reconnects (which
        // itself is bounded by the policy) and tries again. A peer that
        // accepts and immediately drops forever is cut off here rather
        // than looping endlessly.
        for _ in 0..=self.policy.max_attempts {
            let writer = match self.writer.as_mut() {
                Some(w) => w,
                None => {
                    let e = io::Error::new(io::ErrorKind::NotConnected, "no connection");
                    self.reconnect(&e)?;
                    continue;
                }
            };
            match writer.flush() {
                Ok(()) => {
                    self.emitted_lines += self.pending.len() as u64;
                    self.pending.clear();
                    if self.writer.as_ref().is_some_and(Self::peer_sent_fin) {
                        let e = io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer half-closed (FIN) after flush",
                        );
                        self.reconnect(&e)?;
                    }
                    return Ok(());
                }
                Err(e) => self.reconnect(&e)?,
            }
        }
        Err(ReplayError::SinkGaveUp {
            attempts: self.policy.max_attempts,
            last: io::Error::new(
                io::ErrorKind::ConnectionReset,
                "peer kept dropping the connection during flush recovery",
            ),
            cause: self.last_cause,
        }
        .into_io())
    }
}

impl EventSink for ReconnectingTcpSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.buf.clear();
        gt_core::format::write_line(entry, &mut self.buf);
        self.buf.push('\n');
        let line = std::mem::take(&mut self.buf);
        // The line joins the replay window first so a failed write (or a
        // reconnect triggered by it) re-sends it too.
        self.pending.push(line);
        let result = match self.writer.as_mut() {
            Some(w) => w.write_all(self.pending.last().expect("just pushed").as_bytes()),
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "no connection")),
        };
        if let Err(e) = result {
            // reconnect() replays all pending lines, including this one.
            self.reconnect(&e)?;
        }
        if self.pending.len() >= self.flush_every {
            self.flush_inner()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_inner()
    }

    fn drain_events(&mut self) -> Vec<SinkEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    fn vertex(i: u64) -> StreamEntry {
        StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::empty(),
        })
    }

    #[test]
    fn delivers_like_a_plain_sink() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            BufReader::new(stream)
                .lines()
                .map(|l| l.unwrap())
                .collect::<Vec<_>>()
        });
        let mut sink = ReconnectingTcpSink::connect(addr).unwrap();
        for i in 0..10 {
            sink.send(&vertex(i)).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.emitted_lines(), 10);
        assert_eq!(sink.reconnects(), 0);
        assert!(sink.drain_events().is_empty());
        drop(sink);
        assert_eq!(reader.join().unwrap().len(), 10);
    }

    #[test]
    fn reconnects_after_listener_restart() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // First accept: read two lines, then drop the connection.
        let first = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut lines = BufReader::new(stream).lines();
            let a = lines.next().unwrap().unwrap();
            let b = lines.next().unwrap().unwrap();
            // Listener and connection both drop here, freeing the port.
            (a, b)
        });

        let mut sink = ReconnectingTcpSink::connect(addr)
            .unwrap()
            .with_policy(ReconnectPolicy {
                max_attempts: 50,
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(20),
                multiplier: 2.0,
                ..Default::default()
            });
        sink.send(&vertex(0)).unwrap();
        sink.send(&vertex(1)).unwrap();
        sink.flush().unwrap();
        let (a, b) = first.join().unwrap();
        assert_eq!((a.as_str(), b.as_str()), ("ADD_VERTEX,0,", "ADD_VERTEX,1,"));

        // Restart the listener on the same port while the sink keeps
        // sending; the sink must ride the gap.
        let second = std::thread::spawn(move || {
            let listener = TcpListener::bind(addr).unwrap();
            let (stream, _) = listener.accept().unwrap();
            BufReader::new(stream)
                .lines()
                .map(|l| l.unwrap())
                .collect::<Vec<_>>()
        });

        // Send until the sink notices the dead connection and re-dials.
        // Lines flushed into the kernel buffer before the OS reports the
        // reset are lost — TCP gives no delivery confirmation — so the
        // at-least-once guarantee starts at the reconnect-triggering line.
        let mut i = 2u64;
        while sink.reconnects() == 0 {
            sink.send(&vertex(i)).unwrap();
            sink.flush().unwrap();
            i += 1;
            assert!(i < 10_000, "sink never noticed the drop");
        }
        let first_guaranteed = i;
        for j in first_guaranteed..first_guaranteed + 20 {
            sink.send(&vertex(j)).unwrap();
        }
        sink.flush().unwrap();
        let events = sink.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, SinkEventKind::Disconnected { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, SinkEventKind::Reconnected { .. })));
        drop(sink);

        let lines = second.join().unwrap();
        for j in first_guaranteed..first_guaranteed + 20 {
            let expected = format!("ADD_VERTEX,{j},");
            assert!(lines.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn gives_up_with_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediately sever
        });
        let mut sink = ReconnectingTcpSink::connect(addr)
            .unwrap()
            .with_policy(ReconnectPolicy {
                max_attempts: 2,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                multiplier: 2.0,
                ..Default::default()
            });
        accept.join().unwrap();
        // The listener is gone: sends eventually exhaust the budget.
        let mut gave_up = None;
        for i in 0..10_000 {
            if let Err(e) = sink.send(&vertex(i)).and_then(|_| sink.flush()) {
                gave_up = Some(e);
                break;
            }
        }
        let err = gave_up.expect("sink never gave up");
        match ReplayError::from_sink_error(err) {
            ReplayError::SinkGaveUp { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected SinkGaveUp, got {other:?}"),
        }
    }

    // Regression: backoff had no jitter, so N clients cut off by one SUT
    // restart re-dialed in lockstep (thundering herd). The jitter must be
    // seeded-deterministic: different seeds desynchronize, the same seed
    // reproduces the exact schedule.
    #[test]
    fn different_seeds_desynchronize_backoff() {
        let policy = |seed| ReconnectPolicy {
            max_attempts: 16,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.5,
            seed,
        };
        let a = policy(1).backoff_schedule(0);
        let b = policy(2).backoff_schedule(0);
        assert_eq!(a.len(), 16);
        let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(
            differing >= 12,
            "two seeds stayed in lockstep on {} of 16 attempts",
            16 - differing
        );
        // Same seed → bit-identical schedule (chaos signatures reproduce).
        assert_eq!(a, policy(1).backoff_schedule(0));
        // A later outage draws fresh jitter but is still deterministic.
        let round1 = policy(1).backoff_schedule(1);
        assert_ne!(a, round1);
        assert_eq!(round1, policy(1).backoff_schedule(1));
    }

    #[test]
    fn jitter_stays_within_bounds_and_zero_disables() {
        let base = ReconnectPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.0,
            seed: 99,
        };
        // jitter 0.0: exact capped exponential, regardless of seed.
        let exact = base.backoff_schedule(0);
        assert_eq!(exact[0], Duration::from_millis(100));
        assert_eq!(exact[1], Duration::from_millis(200));
        assert_eq!(exact[9], Duration::from_secs(1), "capped at max_backoff");
        assert_eq!(exact, base.clone().with_seed(7).backoff_schedule(0));
        // jitter 0.5: each wait within [0.5, 1.5]× its base, never above max.
        let jittered = ReconnectPolicy {
            jitter: 0.5,
            ..base
        }
        .backoff_schedule(0);
        for (j, e) in jittered.iter().zip(&exact) {
            let (j, e) = (j.as_secs_f64(), e.as_secs_f64());
            assert!(j >= e * 0.5 - 1e-9 && j <= (e * 1.5).min(1.0) + 1e-9);
        }
    }

    #[test]
    fn auto_flush_bounds_pending_window() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            BufReader::new(stream).lines().count()
        });
        let mut sink = ReconnectingTcpSink::connect(addr)
            .unwrap()
            .with_flush_every(8);
        for i in 0..20 {
            sink.send(&vertex(i)).unwrap();
        }
        // Two auto-flushes (at 8 and 16) already confirmed 16 lines.
        assert_eq!(sink.emitted_lines(), 16);
        sink.flush().unwrap();
        assert_eq!(sink.emitted_lines(), 20);
        drop(sink);
        assert_eq!(reader.join().unwrap(), 20);
    }

    /// A ~1KiB entry so a few thousand sends overflow kernel socket
    /// buffers quickly in the stall/FIN tests.
    fn fat_vertex(i: u64) -> StreamEntry {
        StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::new("x".repeat(1024)),
        })
    }

    /// Drives `sink` until a send/flush fails, returning the typed error.
    /// Panics if the sink never fails within the write budget.
    fn drive_until_error(sink: &mut ReconnectingTcpSink, writes: u64) -> ReplayError {
        for i in 0..writes {
            if let Err(e) = sink.send(&fat_vertex(i)).and_then(|_| sink.flush()) {
                return ReplayError::from_sink_error(e);
            }
        }
        panic!("sink never observed the injected fault");
    }

    // Abrupt kill: the peer drops the socket with client data still unread,
    // which the kernel answers with RST. The sink must classify it as
    // `Reset`, not a generic disconnect.
    #[test]
    fn rst_kill_classifies_as_reset() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Wait until the client has data in our receive queue, then
            // drop without reading: close-with-unread-data elicits RST.
            ready_rx.recv().unwrap();
            drop(stream);
        });
        let mut sink = ReconnectingTcpSink::connect(addr)
            .unwrap()
            .with_policy(ReconnectPolicy::give_up_immediately());
        for i in 0..8 {
            sink.send(&fat_vertex(i)).unwrap();
        }
        sink.flush().unwrap();
        ready_tx.send(()).unwrap();
        server.join().unwrap();

        let err = drive_until_error(&mut sink, 100_000);
        match err {
            ReplayError::SinkGaveUp { cause, .. } => {
                assert_eq!(cause, DisconnectCause::Reset, "got {cause:?}");
            }
            other => panic!("expected SinkGaveUp, got {other:?}"),
        }
        assert_eq!(sink.disconnects_of(DisconnectCause::Reset), 1);
        assert_eq!(sink.disconnects_of(DisconnectCause::Stalled), 0);
    }

    // Graceful kill: the peer sends a FIN (shutdown both directions) but
    // keeps the socket alive, so nothing RSTs. Writes eventually stall on
    // full buffers; the probe read then sees the queued EOF and refines the
    // classification to `ClosedByPeer`.
    #[test]
    fn fin_kill_classifies_as_closed_by_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            stream.shutdown(std::net::Shutdown::Both).unwrap();
            // Park the socket: keep the fd alive so no RST is generated.
            park_rx.recv().ok();
            drop(stream);
        });
        let mut sink = ReconnectingTcpSink::connect(addr)
            .unwrap()
            .with_policy(ReconnectPolicy::give_up_immediately())
            .with_write_timeout(Some(Duration::from_millis(100)));

        let err = drive_until_error(&mut sink, 100_000);
        match err {
            ReplayError::SinkGaveUp { cause, .. } => {
                assert_eq!(cause, DisconnectCause::ClosedByPeer, "got {cause:?}");
            }
            other => panic!("expected SinkGaveUp, got {other:?}"),
        }
        assert_eq!(sink.disconnects_of(DisconnectCause::ClosedByPeer), 1);
        park_tx.send(()).ok();
        server.join().unwrap();
    }

    // Blackhole: the peer accepts and then never reads — no FIN, no RST.
    // With a write timeout the stalled write surfaces as `Stalled`; without
    // one the sink would block forever (the pre-netem behavior).
    #[test]
    fn blackhole_classifies_as_stalled() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Never read; never close. TCP backpressure does the rest.
            park_rx.recv().ok();
            drop(stream);
        });
        let mut sink = ReconnectingTcpSink::connect(addr)
            .unwrap()
            .with_policy(ReconnectPolicy::give_up_immediately())
            .with_write_timeout(Some(Duration::from_millis(100)));

        let err = drive_until_error(&mut sink, 100_000);
        match err {
            ReplayError::SinkGaveUp { cause, .. } => {
                assert_eq!(cause, DisconnectCause::Stalled, "got {cause:?}");
            }
            other => panic!("expected SinkGaveUp, got {other:?}"),
        }
        assert_eq!(sink.disconnects_of(DisconnectCause::Stalled), 1);
        assert_eq!(
            sink.disconnect_counts(),
            vec![
                ("reset", 0),
                ("closed_by_peer", 0),
                ("stalled", 1),
                ("other", 0)
            ]
        );
        park_tx.send(()).ok();
        server.join().unwrap();
    }
}

//! Stream sources — the system-under-test side of network connectors.
//!
//! The framework recommends "a distributed setup that conforms with
//! typical use cases: external event sources, network-based streams"
//! (§4.1). [`spawn_tcp_source`] is the receiving half: it accepts one
//! replayer connection, parses the line format incrementally, and feeds
//! entries into a channel the platform consumes at its own pace — a
//! *pull-based* mode of operation: a bounded channel backpressures
//! through TCP flow control all the way to the replayer.

use std::net::TcpListener;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use gt_core::prelude::*;

/// Accepts a single connection on `listener` and streams parsed entries
/// into the returned channel. The thread ends at EOF, on a parse error
/// (reported through the join handle), or when the receiver hangs up.
pub fn spawn_tcp_source(
    listener: TcpListener,
    buffer: usize,
) -> (Receiver<StreamEntry>, JoinHandle<Result<u64, CoreError>>) {
    let (tx, rx) = bounded(buffer.max(1));
    let handle = std::thread::Builder::new()
        .name("gt-tcp-source".into())
        .spawn(move || -> Result<u64, CoreError> {
            let (socket, _peer) = listener.accept()?;
            let reader = StreamReader::new(std::io::BufReader::with_capacity(256 * 1024, socket));
            let mut count = 0u64;
            for entry in reader {
                let entry = entry?;
                count += 1;
                if tx.send(entry).is_err() {
                    break; // consumer hung up
                }
            }
            Ok(count)
        })
        .expect("spawning tcp source thread");
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TcpSink;
    use crate::{Replayer, ReplayerConfig};

    fn sample_stream() -> GraphStream {
        let mut s: GraphStream = (0..200u64)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::new("x"),
                })
            })
            .collect();
        s.push(StreamEntry::marker("end"));
        s
    }

    #[test]
    fn tcp_end_to_end_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (rx, source) = spawn_tcp_source(listener, 1024);

        let stream = sample_stream();
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        });
        let sender = {
            let stream = stream.clone();
            std::thread::spawn(move || {
                let mut sink = TcpSink::connect(addr).unwrap();
                replayer.replay_stream(&stream, &mut sink).unwrap()
            })
        };

        let received: Vec<StreamEntry> = rx.iter().collect();
        let report = sender.join().unwrap();
        assert_eq!(received, stream.entries());
        assert_eq!(report.graph_events, 200);
        assert_eq!(source.join().unwrap().unwrap(), stream.len() as u64);
    }

    #[test]
    fn consumer_hangup_stops_source() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (rx, source) = spawn_tcp_source(listener, 4);

        let sender = std::thread::spawn(move || {
            let mut sink = TcpSink::connect(addr).unwrap();
            let stream = sample_stream();
            // Ignore errors: the receiving side may close mid-stream.
            let replayer = Replayer::new(ReplayerConfig {
                target_rate: 1e6,
                ..Default::default()
            });
            let _ = replayer.replay_stream(&stream, &mut sink);
        });

        let first: Vec<StreamEntry> = rx.iter().take(5).collect();
        assert_eq!(first.len(), 5);
        drop(rx);
        assert!(source.join().unwrap().is_ok());
        sender.join().unwrap();
    }

    #[test]
    fn parse_errors_surface_through_handle() {
        use std::io::Write;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (rx, source) = spawn_tcp_source(listener, 4);

        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"ADD_VERTEX,1,\nTHIS IS NOT CSV\n").unwrap();
        drop(raw);

        let entries: Vec<StreamEntry> = rx.iter().collect();
        assert_eq!(entries.len(), 1);
        assert!(source.join().unwrap().is_err());
    }
}

//! The replay driver.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gt_core::prelude::*;
use gt_metrics::hub::Counter;
use gt_metrics::{Clock, Histogram, WallClock};
use gt_trace::Probe;

use crate::errors::ReplayError;
use crate::pacing::Pacer;
use crate::pattern::RatePattern;
use crate::sink::EventSink;

/// Replayer configuration.
#[derive(Debug, Clone)]
pub struct ReplayerConfig {
    /// Target emission rate in events per second (speed factor 1.0).
    pub target_rate: f64,
    /// Width of the ingress-rate buckets in the report, seconds.
    pub rate_bucket_secs: f64,
    /// Whether `PAUSE` control events actually sleep. Disable for
    /// maximum-throughput benchmarking of the replayer itself.
    pub honor_pauses: bool,
    /// Upper bound on how many behind-schedule events are coalesced into a
    /// single [`EventSink::send_batch`] call. Events that arrive on time
    /// are still delivered one per pacing slot; only events whose deadline
    /// has already passed (catch-up bursts, rates beyond the sink's
    /// ceiling) are batched.
    pub max_batch: usize,
    /// Rate-variability shape (§4.4): how the offered rate varies over
    /// the run. [`RatePattern::Uniform`] is the paper's constant pacing.
    pub pattern: RatePattern,
    /// Seed for stochastic patterns (Pareto burst trains); same seed,
    /// same traffic shape.
    pub pattern_seed: u64,
}

impl Default for ReplayerConfig {
    fn default() -> Self {
        ReplayerConfig {
            target_rate: 1_000.0,
            rate_bucket_secs: 1.0,
            honor_pauses: true,
            max_batch: 256,
            pattern: RatePattern::Uniform,
            pattern_seed: 0,
        }
    }
}

/// What a replay run measured (§4.3 "Streaming Metrics").
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Graph events emitted.
    pub graph_events: u64,
    /// Marker events emitted, with their run-clock timestamps in
    /// microseconds — the watermark correlation data of §4.5.
    pub markers: Vec<(String, u64)>,
    /// Total wall time of the replay in microseconds.
    pub duration_micros: u64,
    /// Wall time spent sleeping in honored `PAUSE` control events,
    /// microseconds. Always `<= duration_micros`.
    pub paused_micros: u64,
    /// Events per second, bucketed over the run.
    pub rate_series: Vec<(f64, f64)>,
    /// Mean achieved rate over the *active* (non-paused) part of the run
    /// (graph events only) — a paused replayer is obeying the stream, not
    /// falling behind, so pauses must not depress this number.
    pub achieved_rate: f64,
    /// Whether the replay was cut short by an abort flag (experiment
    /// watchdog) before the stream ended. Everything delivered up to the
    /// abort is still accounted in the fields above.
    pub aborted: bool,
}

/// The rate-controlled replayer.
pub struct Replayer {
    config: ReplayerConfig,
    clock: Arc<dyn Clock>,
    /// Optional shared ingress counter (events emitted), for live
    /// observation by metric loggers while the replay runs.
    ingress_counter: Option<Counter>,
    /// Optional emit-latency histogram: per graph event, how far past its
    /// pacing deadline the emission happened, in microseconds.
    emit_latency: Option<Histogram>,
    /// Optional Level-2 tracepoint at the paced-emit stage: stamps sampled
    /// graph events just before they are handed to the sink.
    trace_probe: Option<Probe>,
    /// Optional shared abort flag (set by an experiment watchdog): checked
    /// between entries and during pauses; when raised, the replay stops
    /// early, flushes what it has, and reports `aborted = true`.
    abort: Option<Arc<AtomicBool>>,
}

impl Replayer {
    /// A replayer with its own wall clock.
    pub fn new(config: ReplayerConfig) -> Self {
        Replayer {
            config,
            clock: Arc::new(WallClock::start()),
            ingress_counter: None,
            emit_latency: None,
            trace_probe: None,
            abort: None,
        }
    }

    /// Uses a shared run clock (so marker timestamps align with metric
    /// logger timestamps).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Registers a counter incremented per emitted graph event.
    pub fn with_ingress_counter(mut self, counter: Counter) -> Self {
        self.ingress_counter = Some(counter);
        self
    }

    /// Registers a histogram recording each graph event's deadline miss
    /// (microseconds late relative to the pacing schedule).
    pub fn with_emit_latency(mut self, histogram: Histogram) -> Self {
        self.emit_latency = Some(histogram);
        self
    }

    /// Registers a Level-2 tracepoint probe (normally
    /// [`gt_trace::Stage::PacedEmit`]) stamped once per graph event just
    /// before delivery to the sink. Sampling happens inside the probe.
    pub fn with_trace_probe(mut self, probe: Probe) -> Self {
        self.trace_probe = Some(probe);
        self
    }

    /// Registers a shared abort flag. When another thread (normally the
    /// experiment watchdog) sets it, the replay stops at the next entry
    /// boundary — or mid-pause — delivers the pending batch, closes the
    /// sink, and returns a report with `aborted = true` instead of
    /// running the stream to its end.
    pub fn with_abort_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.abort = Some(flag);
        self
    }

    fn abort_requested(&self) -> bool {
        self.abort
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Delivers the pending batch and attributes its events to the metrics
    /// (ingress counter, rate buckets) with a single clock read.
    fn flush_batch<S: EventSink + ?Sized>(
        &self,
        batch: &mut Vec<SharedEntry>,
        sink: &mut S,
        started: u64,
        bucket_micros: u64,
        graph_events: &mut u64,
        buckets: &mut Vec<u64>,
    ) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Stamp before dispatch so downstream stages always observe a
        // later time than the emit stamp. The batch holds only graph
        // events (markers and control never enter it), so every slot
        // advances the trace sequence.
        if let Some(probe) = &self.trace_probe {
            probe.stamp_n(batch.len() as u64);
        }
        sink.send_batch(batch)?;
        let n = batch.len() as u64;
        batch.clear();
        *graph_events += n;
        if let Some(c) = &self.ingress_counter {
            c.add(n);
        }
        let elapsed = self.clock.now_micros().saturating_sub(started);
        let bucket = (elapsed / bucket_micros.max(1)) as usize;
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += n;
        Ok(())
    }

    /// Replays entries into the sink at the configured rate, honouring
    /// control events. Returns the streaming metrics report.
    ///
    /// Accepts owned [`StreamEntry`] items or pre-shared [`SharedEntry`]
    /// handles (the file pipeline allocates once on the reader thread).
    /// Events that are on schedule are delivered one per pacing slot; once
    /// the replayer falls behind, due events are coalesced into
    /// [`EventSink::send_batch`] bursts of at most
    /// [`ReplayerConfig::max_batch`] entries. The pending batch is always
    /// flushed before a marker or pause, so a marker is only delivered
    /// after every graph event streamed before it.
    pub fn replay<I, S>(&self, entries: I, sink: &mut S) -> io::Result<ReplayReport>
    where
        I: IntoIterator,
        I::Item: Into<SharedEntry>,
        S: EventSink + ?Sized,
    {
        let mut pacer = Pacer::with_pattern(
            self.config.target_rate,
            self.config.pattern.compile(self.config.pattern_seed),
        );
        pacer.reset();
        sink.open()?;
        let started = self.clock.now_micros();
        let mut graph_events = 0u64;
        let mut paused_micros = 0u64;
        let mut markers = Vec::new();
        let bucket_micros = (self.config.rate_bucket_secs * 1e6) as u64;
        let mut buckets: Vec<u64> = Vec::new();
        let max_batch = self.config.max_batch.max(1);
        let mut batch: Vec<SharedEntry> = Vec::with_capacity(max_batch);

        macro_rules! flush_pending {
            () => {
                self.flush_batch(
                    &mut batch,
                    sink,
                    started,
                    bucket_micros,
                    &mut graph_events,
                    &mut buckets,
                )?
            };
        }

        let mut aborted = false;
        for entry in entries {
            if self.abort_requested() {
                aborted = true;
                break;
            }
            let entry: SharedEntry = entry.into();
            match entry.as_ref() {
                StreamEntry::Graph(_) => {
                    let (schedule, now) = pacer.poll();
                    if let Some(h) = &self.emit_latency {
                        h.record(schedule.lateness_nanos / 1_000);
                    }
                    if schedule.wait_nanos > 0 {
                        // On schedule: deliver whatever coalesced while
                        // catching up, sleep out the slot, then deliver
                        // this event in it.
                        flush_pending!();
                        pacer.block_until(now + schedule.wait_nanos);
                        batch.push(entry);
                        flush_pending!();
                    } else {
                        // Behind schedule: coalesce with everything else
                        // that is already due — one batched dispatch per
                        // burst instead of one sink call per event.
                        batch.push(entry);
                        if batch.len() >= max_batch {
                            flush_pending!();
                        }
                    }
                }
                StreamEntry::Marker(name) => {
                    // Markers flow through to the system under test *and*
                    // are timestamped locally for later correlation. All
                    // graph events streamed before the marker are
                    // delivered (and flushed) first.
                    flush_pending!();
                    sink.send(&entry)?;
                    sink.flush()?;
                    markers.push((name.clone(), self.clock.now_micros()));
                }
                StreamEntry::Control(ControlEvent::SetSpeed(factor)) => {
                    // The file parser rejects bad SPEED payloads at parse
                    // time; programmatic in-memory streams can still carry
                    // one. Fail fast with a typed error — the pacer would
                    // ignore the factor, silently replaying at the wrong
                    // rate.
                    if !(factor.is_finite() && *factor > 0.0) {
                        return Err(ReplayError::InvalidControl {
                            control: format!("SPEED({factor})"),
                            reason: "speed factor must be positive and finite".to_owned(),
                        }
                        .into_io());
                    }
                    pacer.set_speed(*factor);
                }
                StreamEntry::Control(ControlEvent::Pause(duration)) => {
                    flush_pending!();
                    sink.flush()?;
                    if self.config.honor_pauses {
                        let pause_start = self.clock.now_micros();
                        // Sleep in slices so a watchdog abort does not
                        // have to wait out a long scripted pause.
                        let mut remaining = *duration;
                        let slice = std::time::Duration::from_millis(20);
                        while !remaining.is_zero() {
                            if self.abort_requested() {
                                aborted = true;
                                break;
                            }
                            let step = remaining.min(slice);
                            std::thread::sleep(step);
                            remaining -= step;
                        }
                        paused_micros += self.clock.now_micros().saturating_sub(pause_start);
                        if aborted {
                            break;
                        }
                    }
                    pacer.reset();
                }
            }
        }
        flush_pending!();
        sink.close()?;

        let duration_micros = self.clock.now_micros().saturating_sub(started).max(1);
        let last = buckets.len().saturating_sub(1);
        let rate_series: Vec<(f64, f64)> = buckets
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let start_secs = i as f64 * self.config.rate_bucket_secs;
                // The run usually ends partway through the final bucket;
                // dividing by the full bucket width would understate the
                // closing rate, so scale by the actual elapsed width.
                let width = if i == last {
                    (duration_micros as f64 / 1e6 - start_secs)
                        .clamp(1e-6, self.config.rate_bucket_secs)
                } else {
                    self.config.rate_bucket_secs
                };
                (start_secs, count as f64 / width)
            })
            .collect();
        let active_micros = duration_micros.saturating_sub(paused_micros).max(1);
        Ok(ReplayReport {
            graph_events,
            markers,
            duration_micros,
            paused_micros,
            rate_series,
            achieved_rate: graph_events as f64 / (active_micros as f64 / 1e6),
            aborted,
        })
    }

    /// Replays a whole in-memory stream.
    pub fn replay_stream<S: EventSink + ?Sized>(
        &self,
        stream: &GraphStream,
        sink: &mut S,
    ) -> io::Result<ReplayReport> {
        self.replay(stream.entries().iter().cloned(), sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use std::time::Duration;

    fn vertices(n: u64) -> GraphStream {
        (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect()
    }

    #[test]
    fn replays_everything_in_order() {
        let mut stream = vertices(50);
        stream.push(StreamEntry::marker("end"));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert_eq!(report.graph_events, 50);
        assert_eq!(sink.entries.len(), 51);
        assert_eq!(report.markers.len(), 1);
        assert_eq!(report.markers[0].0, "end");
    }

    #[test]
    fn achieves_target_rate_approximately() {
        let stream = vertices(500);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 5_000.0,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(
            (3_500.0..6_500.0).contains(&report.achieved_rate),
            "achieved {}",
            report.achieved_rate
        );
    }

    #[test]
    fn speed_control_takes_effect() {
        // 200 events at base rate, then 200 at 4x: the second half must be
        // substantially faster.
        let mut stream = vertices(200);
        stream.push(StreamEntry::speed(4.0));
        stream.extend(vertices(200));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 4_000.0,
            ..Default::default()
        });
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(report.graph_events, 400);
        // Naive all-base-rate duration would be 0.1s; with the second half
        // at 4x it should be ~0.0625s. Assert it clearly beats base-rate.
        assert!(elapsed < 0.095, "elapsed {elapsed}");
    }

    #[test]
    fn invalid_speed_payload_fails_fast_with_typed_error() {
        // Regression: a zero/negative/NaN SPEED payload in a programmatic
        // stream used to reach the pacer, where the saturating interval
        // cast turned it into a u64::MAX-nanosecond stall (or, later, a
        // panic on the replay thread). It must instead surface as a typed
        // ReplayError::InvalidControl before any pacing state changes.
        for bad in [0.0, -1.0, f64::NAN] {
            let mut stream = vertices(3);
            stream.push(StreamEntry::speed(bad));
            stream.extend(vertices(3));
            let replayer = Replayer::new(ReplayerConfig {
                target_rate: 1e6,
                ..Default::default()
            });
            let mut sink = CollectSink::new();
            let started = std::time::Instant::now();
            let err = replayer
                .replay_stream(&stream, &mut sink)
                .expect_err("bad factor must fail the replay");
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "replay with factor {bad} stalled instead of failing"
            );
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "factor {bad}");
            match ReplayError::from_sink_error(err) {
                ReplayError::InvalidControl { control, reason } => {
                    assert!(control.contains("SPEED"), "control {control}");
                    assert!(reason.contains("positive"), "reason {reason}");
                }
                other => panic!("wrong variant for factor {bad}: {other:?}"),
            }
            // No event after the bad control was delivered (those before
            // it may still sit in the unflushed pending batch).
            assert!(sink.entries.len() <= 3, "delivered {}", sink.entries.len());
        }
    }

    #[test]
    fn pause_control_delays_emission() {
        let mut stream = vertices(5);
        stream.push(StreamEntry::pause(Duration::from_millis(80)));
        stream.extend(vertices(5));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e5,
            ..Default::default()
        });
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(started.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn pauses_can_be_disabled() {
        let mut stream = vertices(2);
        stream.push(StreamEntry::pause(Duration::from_secs(5)));
        stream.extend(vertices(2));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            honor_pauses: false,
            ..Default::default()
        });
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn ingress_counter_tracks_events() {
        let hub = gt_metrics::MetricsHub::new();
        let counter = hub.counter("ingress");
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        })
        .with_ingress_counter(counter.clone());
        let mut sink = CollectSink::new();
        replayer.replay_stream(&vertices(30), &mut sink).unwrap();
        assert_eq!(counter.get(), 30);
    }

    #[test]
    fn rate_series_covers_run() {
        let stream = vertices(2_000);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 20_000.0,
            rate_bucket_secs: 0.05,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        // Integrate rate over actual bucket widths: full buckets except
        // the final one, which ends at the run's end.
        let end_secs = report.duration_micros as f64 / 1e6;
        let last = report.rate_series.len() - 1;
        let total: f64 = report
            .rate_series
            .iter()
            .enumerate()
            .map(|(i, &(start, rate))| {
                let width = if i == last { end_secs - start } else { 0.05 };
                rate * width
            })
            .sum();
        assert!((total - 2_000.0).abs() < 1.0, "series total {total}");
    }

    #[test]
    fn tail_bucket_rate_not_deflated() {
        // 1s buckets with a run lasting well under a second: the old
        // full-width division reported ~1/20th of the true rate.
        let stream = vertices(500);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 10_000.0,
            rate_bucket_secs: 1.0,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert_eq!(report.rate_series.len(), 1);
        let (_, rate) = report.rate_series[0];
        assert!(
            (6_000.0..14_000.0).contains(&rate),
            "tail bucket rate {rate} not near target"
        );
    }

    #[test]
    fn achieved_rate_excludes_honored_pauses() {
        // 200 events at 10k/s (~20ms active) around a 100ms pause. Over
        // wall time the rate would be under 2k/s; over active time it must
        // stay near the target.
        let mut stream = vertices(100);
        stream.push(StreamEntry::pause(Duration::from_millis(100)));
        stream.extend(vertices(100));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 10_000.0,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(
            report.paused_micros >= 100_000,
            "paused {} < pause duration",
            report.paused_micros
        );
        assert!(report.paused_micros < report.duration_micros);
        assert!(
            (6_000.0..14_000.0).contains(&report.achieved_rate),
            "active-time rate {} should be near target",
            report.achieved_rate
        );
    }

    /// Records the delivery pattern: which entries arrived singly vs.
    /// batched, and the lifecycle calls.
    #[derive(Default)]
    struct PatternSink {
        deliveries: Vec<Vec<StreamEntry>>,
        opened: u32,
        closed: u32,
    }

    impl EventSink for PatternSink {
        fn open(&mut self) -> io::Result<()> {
            self.opened += 1;
            Ok(())
        }

        fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
            self.deliveries.push(vec![entry.clone()]);
            Ok(())
        }

        fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
            self.deliveries
                .push(batch.iter().map(|e| e.as_ref().clone()).collect());
            Ok(())
        }

        fn close(&mut self) -> io::Result<()> {
            self.closed += 1;
            Ok(())
        }
    }

    #[test]
    fn behind_schedule_events_coalesce_into_batches() {
        // Pacing effectively disabled: every event is due immediately, so
        // the emitter should deliver large bursts, not per-event calls.
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e9,
            ..Default::default()
        });
        let mut sink = PatternSink::default();
        let report = replayer.replay_stream(&vertices(1_000), &mut sink).unwrap();
        assert_eq!(report.graph_events, 1_000);
        let total: usize = sink.deliveries.iter().map(Vec::len).sum();
        assert_eq!(total, 1_000);
        assert!(
            sink.deliveries.len() < 100,
            "expected coalesced bursts, got {} deliveries",
            sink.deliveries.len()
        );
        let largest = sink.deliveries.iter().map(Vec::len).max().unwrap();
        assert!(largest > 1, "no batching happened");
        assert!(largest <= 256, "batch exceeded max_batch: {largest}");
        assert_eq!(sink.opened, 1);
        assert_eq!(sink.closed, 1);
    }

    #[test]
    fn marker_flushes_pending_batch_first() {
        let mut stream = vertices(100);
        stream.push(StreamEntry::marker("mid"));
        stream.extend(vertices(100));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e9,
            ..Default::default()
        });
        let mut sink = PatternSink::default();
        replayer.replay_stream(&stream, &mut sink).unwrap();
        let flat: Vec<StreamEntry> = sink.deliveries.into_iter().flatten().collect();
        assert_eq!(flat.len(), 201);
        // Every graph event streamed before the marker is delivered before
        // it, in stream order.
        let marker_pos = flat.iter().position(|e| e.is_marker()).unwrap();
        assert_eq!(marker_pos, 100);
        assert_eq!(flat, stream.entries());
    }

    #[test]
    fn batch_cap_is_respected() {
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e9,
            max_batch: 16,
            ..Default::default()
        });
        let mut sink = PatternSink::default();
        replayer.replay_stream(&vertices(200), &mut sink).unwrap();
        assert!(sink.deliveries.iter().all(|d| d.len() <= 16));
    }

    #[test]
    fn abort_flag_stops_replay_and_marks_report() {
        // The flag is pre-set: the replay must stop at the first entry
        // boundary, deliver nothing further, and still close the sink.
        let flag = Arc::new(AtomicBool::new(true));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        })
        .with_abort_flag(Arc::clone(&flag));
        let mut sink = PatternSink::default();
        let report = replayer.replay_stream(&vertices(100), &mut sink).unwrap();
        assert!(report.aborted);
        assert_eq!(report.graph_events, 0);
        assert_eq!(sink.closed, 1, "abort must still close the sink");

        // And an unset flag changes nothing.
        flag.store(false, Ordering::Relaxed);
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&vertices(100), &mut sink).unwrap();
        assert!(!report.aborted);
        assert_eq!(report.graph_events, 100);
    }

    #[test]
    fn abort_cuts_scripted_pause_short() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut stream = vertices(2);
        stream.push(StreamEntry::pause(Duration::from_secs(30)));
        stream.extend(vertices(2));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        })
        .with_abort_flag(Arc::clone(&flag));
        let setter = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                flag.store(true, Ordering::Relaxed);
            })
        };
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        setter.join().unwrap();
        assert!(report.aborted);
        assert_eq!(report.graph_events, 2, "pre-pause events delivered");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "abort had to wait out the pause"
        );
    }

    #[test]
    fn ignored_pauses_do_not_count_as_paused_time() {
        let mut stream = vertices(2);
        stream.push(StreamEntry::pause(Duration::from_secs(5)));
        stream.extend(vertices(2));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            honor_pauses: false,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert_eq!(report.paused_micros, 0);
    }
}

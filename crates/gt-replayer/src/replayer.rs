//! The replay driver.

use std::io;
use std::sync::Arc;

use gt_core::prelude::*;
use gt_metrics::hub::Counter;
use gt_metrics::{Clock, WallClock};

use crate::pacing::Pacer;
use crate::sink::EventSink;

/// Replayer configuration.
#[derive(Debug, Clone)]
pub struct ReplayerConfig {
    /// Target emission rate in events per second (speed factor 1.0).
    pub target_rate: f64,
    /// Width of the ingress-rate buckets in the report, seconds.
    pub rate_bucket_secs: f64,
    /// Whether `PAUSE` control events actually sleep. Disable for
    /// maximum-throughput benchmarking of the replayer itself.
    pub honor_pauses: bool,
}

impl Default for ReplayerConfig {
    fn default() -> Self {
        ReplayerConfig {
            target_rate: 1_000.0,
            rate_bucket_secs: 1.0,
            honor_pauses: true,
        }
    }
}

/// What a replay run measured (§4.3 "Streaming Metrics").
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Graph events emitted.
    pub graph_events: u64,
    /// Marker events emitted, with their run-clock timestamps in
    /// microseconds — the watermark correlation data of §4.5.
    pub markers: Vec<(String, u64)>,
    /// Total wall time of the replay in microseconds.
    pub duration_micros: u64,
    /// Events per second, bucketed over the run.
    pub rate_series: Vec<(f64, f64)>,
    /// Mean achieved rate over the whole run (graph events only).
    pub achieved_rate: f64,
}

/// The rate-controlled replayer.
pub struct Replayer {
    config: ReplayerConfig,
    clock: Arc<dyn Clock>,
    /// Optional shared ingress counter (events emitted), for live
    /// observation by metric loggers while the replay runs.
    ingress_counter: Option<Counter>,
}

impl Replayer {
    /// A replayer with its own wall clock.
    pub fn new(config: ReplayerConfig) -> Self {
        Replayer {
            config,
            clock: Arc::new(WallClock::start()),
            ingress_counter: None,
        }
    }

    /// Uses a shared run clock (so marker timestamps align with metric
    /// logger timestamps).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Registers a counter incremented per emitted graph event.
    pub fn with_ingress_counter(mut self, counter: Counter) -> Self {
        self.ingress_counter = Some(counter);
        self
    }

    /// Replays entries into the sink at the configured rate, honouring
    /// control events. Returns the streaming metrics report.
    pub fn replay<I, S>(&self, entries: I, sink: &mut S) -> io::Result<ReplayReport>
    where
        I: IntoIterator<Item = StreamEntry>,
        S: EventSink,
    {
        let mut pacer = Pacer::new(self.config.target_rate);
        pacer.reset();
        let started = self.clock.now_micros();
        let mut graph_events = 0u64;
        let mut markers = Vec::new();
        let bucket_micros = (self.config.rate_bucket_secs * 1e6) as u64;
        let mut buckets: Vec<u64> = Vec::new();

        for entry in entries {
            match &entry {
                StreamEntry::Graph(_) => {
                    pacer.wait();
                    sink.send(&entry)?;
                    graph_events += 1;
                    if let Some(c) = &self.ingress_counter {
                        c.inc();
                    }
                    let elapsed = self.clock.now_micros().saturating_sub(started);
                    let bucket = (elapsed / bucket_micros.max(1)) as usize;
                    if buckets.len() <= bucket {
                        buckets.resize(bucket + 1, 0);
                    }
                    buckets[bucket] += 1;
                }
                StreamEntry::Marker(name) => {
                    // Markers flow through to the system under test *and*
                    // are timestamped locally for later correlation.
                    sink.send(&entry)?;
                    sink.flush()?;
                    markers.push((name.clone(), self.clock.now_micros()));
                }
                StreamEntry::Control(ControlEvent::SetSpeed(factor)) => {
                    pacer.set_speed(*factor);
                }
                StreamEntry::Control(ControlEvent::Pause(duration)) => {
                    sink.flush()?;
                    if self.config.honor_pauses {
                        std::thread::sleep(*duration);
                    }
                    pacer.reset();
                }
            }
        }
        sink.flush()?;

        let duration_micros = self.clock.now_micros().saturating_sub(started).max(1);
        let rate_series: Vec<(f64, f64)> = buckets
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                (
                    i as f64 * self.config.rate_bucket_secs,
                    count as f64 / self.config.rate_bucket_secs,
                )
            })
            .collect();
        Ok(ReplayReport {
            graph_events,
            markers,
            duration_micros,
            rate_series,
            achieved_rate: graph_events as f64 / (duration_micros as f64 / 1e6),
        })
    }

    /// Replays a whole in-memory stream.
    pub fn replay_stream<S: EventSink>(
        &self,
        stream: &GraphStream,
        sink: &mut S,
    ) -> io::Result<ReplayReport> {
        self.replay(stream.entries().iter().cloned(), sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use std::time::Duration;

    fn vertices(n: u64) -> GraphStream {
        (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect()
    }

    #[test]
    fn replays_everything_in_order() {
        let mut stream = vertices(50);
        stream.push(StreamEntry::marker("end"));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert_eq!(report.graph_events, 50);
        assert_eq!(sink.entries.len(), 51);
        assert_eq!(report.markers.len(), 1);
        assert_eq!(report.markers[0].0, "end");
    }

    #[test]
    fn achieves_target_rate_approximately() {
        let stream = vertices(500);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 5_000.0,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(
            (3_500.0..6_500.0).contains(&report.achieved_rate),
            "achieved {}",
            report.achieved_rate
        );
    }

    #[test]
    fn speed_control_takes_effect() {
        // 200 events at base rate, then 200 at 4x: the second half must be
        // substantially faster.
        let mut stream = vertices(200);
        stream.push(StreamEntry::speed(4.0));
        stream.extend(vertices(200));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 4_000.0,
            ..Default::default()
        });
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(report.graph_events, 400);
        // Naive all-base-rate duration would be 0.1s; with the second half
        // at 4x it should be ~0.0625s. Assert it clearly beats base-rate.
        assert!(elapsed < 0.095, "elapsed {elapsed}");
    }

    #[test]
    fn pause_control_delays_emission() {
        let mut stream = vertices(5);
        stream.push(StreamEntry::pause(Duration::from_millis(80)));
        stream.extend(vertices(5));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e5,
            ..Default::default()
        });
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(started.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn pauses_can_be_disabled() {
        let mut stream = vertices(2);
        stream.push(StreamEntry::pause(Duration::from_secs(5)));
        stream.extend(vertices(2));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            honor_pauses: false,
            ..Default::default()
        });
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        replayer.replay_stream(&stream, &mut sink).unwrap();
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn ingress_counter_tracks_events() {
        let hub = gt_metrics::MetricsHub::new();
        let counter = hub.counter("ingress");
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        })
        .with_ingress_counter(counter.clone());
        let mut sink = CollectSink::new();
        replayer.replay_stream(&vertices(30), &mut sink).unwrap();
        assert_eq!(counter.get(), 30);
    }

    #[test]
    fn rate_series_covers_run() {
        let stream = vertices(2_000);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 20_000.0,
            rate_bucket_secs: 0.05,
            ..Default::default()
        });
        let mut sink = CollectSink::new();
        let report = replayer.replay_stream(&stream, &mut sink).unwrap();
        let total: f64 = report
            .rate_series
            .iter()
            .map(|(_, rate)| rate * 0.05)
            .sum();
        assert!((total - 2_000.0).abs() < 1.0, "series total {total}");
    }
}

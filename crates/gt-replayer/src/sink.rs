//! Event sinks — the replayer side of platform connectors.
//!
//! The paper requires "a generic streaming interface supporting different
//! modes of operation … adapted by platform-specific connectors" (§3.3).
//! [`EventSink`] is that interface. Built-in connectors cover the paper's
//! evaluation setups: process pipes / stdout ([`WriterSink`]), local or
//! remote TCP sockets ([`TcpSink`]), and in-process channels
//! ([`ChannelSink`]) for systems embedded in the harness.

use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crossbeam::channel::Sender;
use gt_core::format::entry_to_line;
use gt_core::prelude::*;

/// Something notable a sink did while delivering (connection loss,
/// reconnection). Fault-tolerant sinks record these so the harness can
/// merge them into the result log next to the stream metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkEvent {
    /// When it happened, microseconds on the sink's clock.
    pub t_micros: u64,
    /// What happened.
    pub kind: SinkEventKind,
    /// Human-readable detail (the triggering error, the attempt count).
    pub detail: String,
}

/// The kind of a [`SinkEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkEventKind {
    /// The connection to the system under test was lost.
    Disconnected {
        /// How the connection died, as far as the sink could tell.
        cause: DisconnectCause,
    },
    /// The connection was re-established after `attempt` tries.
    Reconnected {
        /// Which reconnect attempt succeeded (1-based).
        attempt: u32,
    },
}

/// How a TCP connection died, classified from the failing I/O error plus a
/// nonblocking probe read of the old socket. Distinguishing these matters
/// under network faults: an abrupt RST, a graceful FIN, and a blackholed
/// (stalled) peer call for the same reconnect loop but very different
/// operator diagnoses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisconnectCause {
    /// Abrupt reset (RST): `ConnectionReset` / `ConnectionAborted`.
    Reset,
    /// Graceful close (FIN): the peer shut down the connection and our
    /// writes hit `BrokenPipe`, or a probe read returned EOF.
    ClosedByPeer,
    /// Blackhole: writes timed out with the connection nominally alive
    /// (`WouldBlock` / `TimedOut` with nothing readable).
    Stalled,
    /// Anything else (DNS failure, refused reconnect, local error).
    Other,
}

impl DisconnectCause {
    /// Classifies an I/O error kind into a cause. A probe read can refine
    /// this further (see `ReconnectingTcpSink`).
    pub fn classify(err: &io::Error) -> Self {
        match err.kind() {
            io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted => {
                DisconnectCause::Reset
            }
            io::ErrorKind::BrokenPipe | io::ErrorKind::UnexpectedEof | io::ErrorKind::WriteZero => {
                DisconnectCause::ClosedByPeer
            }
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => DisconnectCause::Stalled,
            _ => DisconnectCause::Other,
        }
    }

    /// Stable lowercase label used in metric records and counters.
    pub fn label(&self) -> &'static str {
        match self {
            DisconnectCause::Reset => "reset",
            DisconnectCause::ClosedByPeer => "closed_by_peer",
            DisconnectCause::Stalled => "stalled",
            DisconnectCause::Other => "other",
        }
    }

    /// All causes, in counter order.
    pub const ALL: [DisconnectCause; 4] = [
        DisconnectCause::Reset,
        DisconnectCause::ClosedByPeer,
        DisconnectCause::Stalled,
        DisconnectCause::Other,
    ];

    /// This cause's index into per-cause counter arrays.
    pub fn index(&self) -> usize {
        match self {
            DisconnectCause::Reset => 0,
            DisconnectCause::ClosedByPeer => 1,
            DisconnectCause::Stalled => 2,
            DisconnectCause::Other => 3,
        }
    }
}

/// A destination for replayed stream entries.
///
/// # Lifecycle and batch contract
///
/// The replayer drives a sink through a fixed lifecycle:
///
/// 1. [`open`](EventSink::open) once, before the first entry;
/// 2. any mix of [`send`](EventSink::send) (single entries) and
///    [`send_batch`](EventSink::send_batch) (entries that became due
///    together), interleaved with [`flush`](EventSink::flush) at markers and
///    pauses;
/// 3. [`close`](EventSink::close) once, after the last entry.
///
/// Ordering guarantees: entries arrive in stream order, whether delivered
/// singly or batched, and a marker is only delivered after every graph event
/// streamed before it has been handed to the sink and flushed. Batches carry
/// [`SharedEntry`] handles so connectors can forward events downstream by
/// cloning the `Arc` instead of the payload.
///
/// Every method except [`send`](EventSink::send) has a default: sinks that
/// predate the batch contract keep working unchanged, with
/// [`send_batch`](EventSink::send_batch) falling back to per-entry delivery.
pub trait EventSink {
    /// Prepares the sink for a replay run. Default: no-op.
    fn open(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Delivers one entry.
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()>;

    /// Delivers a batch of entries that became due together (the replayer
    /// coalesces events sharing a pacing deadline). Default: per-entry
    /// [`send`](EventSink::send) fallback.
    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        for entry in batch {
            self.send(entry)?;
        }
        Ok(())
    }

    /// Flushes buffered entries (called at markers, around pauses, and at
    /// replay end).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Finishes a replay run. Default: [`flush`](EventSink::flush).
    fn close(&mut self) -> io::Result<()> {
        self.flush()
    }

    /// Takes the notable events accumulated since the last drain. Plain
    /// sinks have none.
    fn drain_events(&mut self) -> Vec<SinkEvent> {
        Vec::new()
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn open(&mut self) -> io::Result<()> {
        (**self).open()
    }

    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        (**self).send(entry)
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        (**self).send_batch(batch)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }

    fn close(&mut self) -> io::Result<()> {
        (**self).close()
    }

    fn drain_events(&mut self) -> Vec<SinkEvent> {
        (**self).drain_events()
    }
}

impl<S: EventSink + ?Sized> EventSink for Box<S> {
    fn open(&mut self) -> io::Result<()> {
        (**self).open()
    }

    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        (**self).send(entry)
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        (**self).send_batch(batch)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }

    fn close(&mut self) -> io::Result<()> {
        (**self).close()
    }

    fn drain_events(&mut self) -> Vec<SinkEvent> {
        (**self).drain_events()
    }
}

/// Writes entries in the stream line format to any [`Write`] — pipes,
/// stdout, files.
pub struct WriterSink<W: Write> {
    inner: W,
    buf: String,
}

impl<W: Write> WriterSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        WriterSink {
            inner,
            buf: String::with_capacity(64),
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> EventSink for WriterSink<W> {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.buf.clear();
        gt_core::format::write_line(entry, &mut self.buf);
        self.buf.push('\n');
        self.inner.write_all(self.buf.as_bytes())
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        // Serialize the whole batch into the reused buffer and hand it to
        // the writer as one `write_all` — one syscall per burst instead of
        // one per event on unbuffered writers.
        self.buf.clear();
        for entry in batch {
            gt_core::format::write_line(entry, &mut self.buf);
            self.buf.push('\n');
        }
        self.inner.write_all(self.buf.as_bytes())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streams entries over a buffered TCP connection.
pub struct TcpSink {
    inner: WriterSink<BufWriter<TcpStream>>,
}

impl TcpSink {
    /// Connects to the given address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, None)
    }

    /// Connects with an optional write timeout, so a blackholed peer (e.g. a
    /// netem partition) surfaces as a `WouldBlock`/`TimedOut` write error
    /// instead of blocking the client forever.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        write_timeout: Option<std::time::Duration>,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(write_timeout)?;
        Ok(TcpSink {
            inner: WriterSink::new(BufWriter::with_capacity(64 * 1024, stream)),
        })
    }
}

impl EventSink for TcpSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.inner.send(entry)
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        self.inner.send_batch(batch)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Sends entries into a crossbeam channel — the in-process connector used
/// by the embedded systems under test.
///
/// The channel carries [`SharedEntry`] handles: batched delivery clones the
/// `Arc` per entry, never the payload.
pub struct ChannelSink {
    tx: Sender<SharedEntry>,
}

impl ChannelSink {
    /// Wraps a sender.
    pub fn new(tx: Sender<SharedEntry>) -> Self {
        ChannelSink { tx }
    }
}

fn channel_gone() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "receiver disconnected")
}

impl EventSink for ChannelSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.tx
            .send(SharedEntry::new(entry.clone()))
            .map_err(|_| channel_gone())
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        for entry in batch {
            self.tx
                .send(SharedEntry::clone(entry))
                .map_err(|_| channel_gone())?;
        }
        Ok(())
    }
}

/// Collects entries in memory — test and measurement helper.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Everything received, in order.
    pub entries: Vec<StreamEntry>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialized view of what was received (for format assertions).
    pub fn lines(&self) -> Vec<String> {
        self.entries.iter().map(entry_to_line).collect()
    }
}

impl EventSink for CollectSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.entries.push(entry.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    fn sample_entries() -> Vec<StreamEntry> {
        vec![
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(1),
                state: State::new("a"),
            }),
            StreamEntry::marker("m"),
            StreamEntry::speed(2.0),
        ]
    }

    #[test]
    fn writer_sink_emits_lines() {
        let mut sink = WriterSink::new(Vec::new());
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, "ADD_VERTEX,1,a\nMARKER,m,\nSPEED,,2\n");
    }

    #[test]
    fn channel_sink_delivers() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut sink = ChannelSink::new(tx);
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        drop(sink);
        let received: Vec<StreamEntry> = rx.iter().map(|e| e.as_ref().clone()).collect();
        assert_eq!(received, sample_entries());
    }

    #[test]
    fn channel_sink_batch_shares_entries() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut sink = ChannelSink::new(tx);
        let batch: Vec<SharedEntry> = sample_entries().into_iter().map(SharedEntry::new).collect();
        sink.send_batch(&batch).unwrap();
        drop(sink);
        let received: Vec<SharedEntry> = rx.iter().collect();
        assert_eq!(received.len(), batch.len());
        // Batched delivery clones the Arc, not the payload.
        for (sent, got) in batch.iter().zip(&received) {
            assert!(SharedEntry::ptr_eq(sent, got));
        }
    }

    #[test]
    fn channel_sink_errors_when_receiver_gone() {
        let (tx, rx) = crossbeam::channel::unbounded::<SharedEntry>();
        drop(rx);
        let mut sink = ChannelSink::new(tx);
        assert!(sink.send(&StreamEntry::marker("x")).is_err());
        assert!(sink
            .send_batch(&[SharedEntry::new(StreamEntry::marker("y"))])
            .is_err());
    }

    #[test]
    fn writer_sink_batch_matches_per_event_bytes() {
        let batch: Vec<SharedEntry> = sample_entries().into_iter().map(SharedEntry::new).collect();
        let mut batched = WriterSink::new(Vec::new());
        batched.send_batch(&batch).unwrap();
        let mut single = WriterSink::new(Vec::new());
        for e in &batch {
            single.send(e).unwrap();
        }
        assert_eq!(batched.into_inner(), single.into_inner());
    }

    #[test]
    fn default_batch_falls_back_to_per_event_send() {
        let mut sink = CollectSink::new();
        let batch: Vec<SharedEntry> = sample_entries().into_iter().map(SharedEntry::new).collect();
        sink.open().unwrap();
        sink.send_batch(&batch).unwrap();
        sink.close().unwrap();
        assert_eq!(sink.entries, sample_entries());
    }

    #[test]
    fn blanket_impls_forward_through_references_and_boxes() {
        let mut sink = CollectSink::new();
        {
            let by_ref: &mut CollectSink = &mut sink;
            by_ref.send(&StreamEntry::marker("ref")).unwrap();
        }
        let mut boxed: Box<dyn EventSink + Send> = Box::new(sink);
        boxed.send(&StreamEntry::marker("boxed")).unwrap();
        boxed
            .send_batch(&[SharedEntry::new(StreamEntry::marker("batched"))])
            .unwrap();
        boxed.close().unwrap();
    }

    #[test]
    fn tcp_sink_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream);
            reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });

        let mut sink = TcpSink::connect(addr).unwrap();
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        sink.flush().unwrap();
        drop(sink);
        let lines = reader.join().unwrap();
        assert_eq!(lines, ["ADD_VERTEX,1,a", "MARKER,m,", "SPEED,,2"]);
    }

    #[test]
    fn collect_sink_records_everything() {
        let mut sink = CollectSink::new();
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        assert_eq!(sink.entries.len(), 3);
        assert_eq!(sink.lines()[0], "ADD_VERTEX,1,a");
    }
}

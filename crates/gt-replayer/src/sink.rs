//! Event sinks — the replayer side of platform connectors.
//!
//! The paper requires "a generic streaming interface supporting different
//! modes of operation … adapted by platform-specific connectors" (§3.3).
//! [`EventSink`] is that interface. Built-in connectors cover the paper's
//! evaluation setups: process pipes / stdout ([`WriterSink`]), local or
//! remote TCP sockets ([`TcpSink`]), and in-process channels
//! ([`ChannelSink`]) for systems embedded in the harness.

use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crossbeam::channel::Sender;
use gt_core::format::entry_to_line;
use gt_core::prelude::*;

/// Something notable a sink did while delivering (connection loss,
/// reconnection). Fault-tolerant sinks record these so the harness can
/// merge them into the result log next to the stream metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkEvent {
    /// When it happened, microseconds on the sink's clock.
    pub t_micros: u64,
    /// What happened.
    pub kind: SinkEventKind,
    /// Human-readable detail (the triggering error, the attempt count).
    pub detail: String,
}

/// The kind of a [`SinkEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkEventKind {
    /// The connection to the system under test was lost.
    Disconnected,
    /// The connection was re-established after `attempt` tries.
    Reconnected {
        /// Which reconnect attempt succeeded (1-based).
        attempt: u32,
    },
}

/// A destination for replayed stream entries.
pub trait EventSink {
    /// Delivers one entry.
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()>;

    /// Flushes buffered entries (called at replay end and around pauses).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Takes the notable events accumulated since the last drain. Plain
    /// sinks have none.
    fn drain_events(&mut self) -> Vec<SinkEvent> {
        Vec::new()
    }
}

/// Writes entries in the stream line format to any [`Write`] — pipes,
/// stdout, files.
pub struct WriterSink<W: Write> {
    inner: W,
    buf: String,
}

impl<W: Write> WriterSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        WriterSink {
            inner,
            buf: String::with_capacity(64),
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> EventSink for WriterSink<W> {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.buf.clear();
        gt_core::format::write_line(entry, &mut self.buf);
        self.buf.push('\n');
        self.inner.write_all(self.buf.as_bytes())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streams entries over a buffered TCP connection.
pub struct TcpSink {
    inner: WriterSink<BufWriter<TcpStream>>,
}

impl TcpSink {
    /// Connects to the given address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpSink {
            inner: WriterSink::new(BufWriter::with_capacity(64 * 1024, stream)),
        })
    }
}

impl EventSink for TcpSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.inner.send(entry)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Sends entries into a crossbeam channel — the in-process connector used
/// by the embedded systems under test.
pub struct ChannelSink {
    tx: Sender<StreamEntry>,
}

impl ChannelSink {
    /// Wraps a sender.
    pub fn new(tx: Sender<StreamEntry>) -> Self {
        ChannelSink { tx }
    }
}

impl EventSink for ChannelSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.tx
            .send(entry.clone())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "receiver disconnected"))
    }
}

/// Collects entries in memory — test and measurement helper.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Everything received, in order.
    pub entries: Vec<StreamEntry>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialized view of what was received (for format assertions).
    pub fn lines(&self) -> Vec<String> {
        self.entries.iter().map(entry_to_line).collect()
    }
}

impl EventSink for CollectSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.entries.push(entry.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    fn sample_entries() -> Vec<StreamEntry> {
        vec![
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(1),
                state: State::new("a"),
            }),
            StreamEntry::marker("m"),
            StreamEntry::speed(2.0),
        ]
    }

    #[test]
    fn writer_sink_emits_lines() {
        let mut sink = WriterSink::new(Vec::new());
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, "ADD_VERTEX,1,a\nMARKER,m,\nSPEED,,2\n");
    }

    #[test]
    fn channel_sink_delivers() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut sink = ChannelSink::new(tx);
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        drop(sink);
        let received: Vec<StreamEntry> = rx.iter().collect();
        assert_eq!(received, sample_entries());
    }

    #[test]
    fn channel_sink_errors_when_receiver_gone() {
        let (tx, rx) = crossbeam::channel::unbounded::<StreamEntry>();
        drop(rx);
        let mut sink = ChannelSink::new(tx);
        assert!(sink.send(&StreamEntry::marker("x")).is_err());
    }

    #[test]
    fn tcp_sink_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream);
            reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });

        let mut sink = TcpSink::connect(addr).unwrap();
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        sink.flush().unwrap();
        drop(sink);
        let lines = reader.join().unwrap();
        assert_eq!(lines, ["ADD_VERTEX,1,a", "MARKER,m,", "SPEED,,2"]);
    }

    #[test]
    fn collect_sink_records_everything() {
        let mut sink = CollectSink::new();
        for e in sample_entries() {
            sink.send(&e).unwrap();
        }
        assert_eq!(sink.entries.len(), 3);
        assert_eq!(sink.lines()[0], "ADD_VERTEX,1,a");
    }
}

//! Production-shaped rate patterns (§4.4 rate variability).
//!
//! The paper's replayer paces a *constant* target rate; production
//! traffic does not. A [`RatePattern`] is a declarative, seeded
//! description of how the offered rate varies over the run — a diurnal
//! sine wave, heavy-tailed (Pareto) burst trains, a flash-crowd step —
//! that compiles to a pure piecewise-constant multiplier over time
//! ([`CompiledPattern`]). Two consumers share it:
//!
//! * [`PacerCore`](crate::pacing::PacerCore) scales its inter-event
//!   interval by the multiplier at each deadline, so the single-sink
//!   replayer emits the shaped rate;
//! * [`ArrivalSchedule`](../gt_load) draws inhomogeneous-Poisson arrival
//!   times against the shaped intensity for open-loop load clients.
//!
//! Compilation is deterministic per `(pattern, seed)`: the same matrix
//! cell always replays the same traffic shape, which is what makes
//! cross-SUT comparisons and journal resume bit-reproducible.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How many piecewise-constant steps one diurnal period compiles to.
const DIURNAL_STEPS: usize = 64;

/// How many gap+burst pairs a Pareto burst train compiles to before the
/// pattern cycles.
const PARETO_BURSTS: usize = 32;

/// Heavy-tail clamp: a single Pareto gap never exceeds this multiple of
/// the scale parameter (alpha <= 1 has infinite mean — the draw must not
/// produce an hour-long quiet segment in a 30-second cell).
const PARETO_GAP_CAP: f64 = 100.0;

/// A declarative, seeded rate-variability pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum RatePattern {
    /// Constant rate — the paper's §4.4 uniform pacing.
    #[default]
    Uniform,
    /// Diurnal sine wave: multiplier `1 + amplitude * sin(2πt/period)`.
    /// One period is a full day compressed to `period_secs`.
    Diurnal {
        /// Seconds per full sine period.
        period_secs: f64,
        /// Peak deviation from the base rate, in `(0, 1)` so the
        /// multiplier stays strictly positive.
        amplitude: f64,
    },
    /// Heavy-tailed burst train: quiet stretches at the base rate,
    /// interrupted by `burst_secs`-long bursts at `peak` times the base
    /// rate. Gap lengths are Pareto(alpha)-distributed with scale
    /// `burst_secs`, so long quiet periods are common and extreme ones
    /// possible — the classic self-similar-traffic shape.
    ParetoBursts {
        /// Pareto tail index; smaller = heavier tail. Must be positive.
        alpha: f64,
        /// Burst duration in seconds (also the Pareto scale of the gaps).
        burst_secs: f64,
        /// Rate multiplier during a burst (> 1).
        peak: f64,
    },
    /// Flash crowd: base rate until `at_secs`, a step to `factor` times
    /// the base rate held for `hold_secs`, then back to base.
    FlashCrowd {
        /// Seconds into the run the crowd arrives.
        at_secs: f64,
        /// Rate multiplier while the crowd is present (> 1).
        factor: f64,
        /// Seconds the surge lasts.
        hold_secs: f64,
    },
}

impl RatePattern {
    /// Compiles the pattern into its piecewise-constant multiplier.
    /// Deterministic per `(self, seed)`; the seed only matters for
    /// [`RatePattern::ParetoBursts`], whose gap lengths are drawn from a
    /// seeded RNG.
    pub fn compile(&self, seed: u64) -> CompiledPattern {
        match self {
            RatePattern::Uniform => CompiledPattern {
                segments: vec![(0, 1.0)],
                cycle_micros: None,
            },
            RatePattern::Diurnal {
                period_secs,
                amplitude,
            } => {
                let period_micros = (period_secs * 1e6) as u64;
                let step = (period_micros / DIURNAL_STEPS as u64).max(1);
                let segments = (0..DIURNAL_STEPS)
                    .map(|i| {
                        let start = i as u64 * step;
                        // Sample the sine at the step's midpoint.
                        let mid = (i as f64 + 0.5) / DIURNAL_STEPS as f64;
                        let multiplier = 1.0 + amplitude * (2.0 * std::f64::consts::PI * mid).sin();
                        (start, multiplier)
                    })
                    .collect();
                CompiledPattern {
                    segments,
                    cycle_micros: Some(step * DIURNAL_STEPS as u64),
                }
            }
            RatePattern::ParetoBursts {
                alpha,
                burst_secs,
                peak,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let burst_micros = ((burst_secs * 1e6) as u64).max(1);
                let mut segments = Vec::with_capacity(2 * PARETO_BURSTS);
                let mut t = 0u64;
                for _ in 0..PARETO_BURSTS {
                    // Inverse-CDF Pareto draw: gap = scale / u^(1/alpha),
                    // clamped so a heavy tail stays replayable.
                    let u: f64 = rng.random();
                    let gap =
                        (burst_secs / (1.0 - u).powf(1.0 / alpha)).min(burst_secs * PARETO_GAP_CAP);
                    segments.push((t, 1.0));
                    t += ((gap * 1e6) as u64).max(1);
                    segments.push((t, *peak));
                    t += burst_micros;
                }
                CompiledPattern {
                    segments,
                    cycle_micros: Some(t),
                }
            }
            RatePattern::FlashCrowd {
                at_secs,
                factor,
                hold_secs,
            } => {
                let at = (at_secs * 1e6) as u64;
                let end = at + ((hold_secs * 1e6) as u64).max(1);
                CompiledPattern {
                    segments: vec![(0, 1.0), (at, *factor), (end, 1.0)],
                    cycle_micros: None,
                }
            }
        }
    }

    /// Validates the pattern's parameters, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |v: f64, what: &str| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite, got {v}"))
            }
        };
        match self {
            RatePattern::Uniform => Ok(()),
            RatePattern::Diurnal {
                period_secs,
                amplitude,
            } => {
                positive(*period_secs, "diurnal period")?;
                if !(amplitude.is_finite() && *amplitude > 0.0 && *amplitude < 1.0) {
                    return Err(format!(
                        "diurnal amplitude must be in (0, 1), got {amplitude}"
                    ));
                }
                Ok(())
            }
            RatePattern::ParetoBursts {
                alpha,
                burst_secs,
                peak,
            } => {
                positive(*alpha, "pareto alpha")?;
                positive(*burst_secs, "pareto burst duration")?;
                if !(peak.is_finite() && *peak > 1.0) {
                    return Err(format!("pareto peak multiplier must exceed 1, got {peak}"));
                }
                Ok(())
            }
            RatePattern::FlashCrowd {
                at_secs,
                factor,
                hold_secs,
            } => {
                if !(at_secs.is_finite() && *at_secs >= 0.0) {
                    return Err(format!("flash-crowd onset must be >= 0, got {at_secs}"));
                }
                positive(*hold_secs, "flash-crowd hold")?;
                if !(factor.is_finite() && *factor > 1.0) {
                    return Err(format!("flash-crowd factor must exceed 1, got {factor}"));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for RatePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatePattern::Uniform => write!(f, "uniform"),
            RatePattern::Diurnal {
                period_secs,
                amplitude,
            } => write!(f, "diurnal:{period_secs}:{amplitude}"),
            RatePattern::ParetoBursts {
                alpha,
                burst_secs,
                peak,
            } => write!(f, "pareto:{alpha}:{burst_secs}:{peak}"),
            RatePattern::FlashCrowd {
                at_secs,
                factor,
                hold_secs,
            } => write!(f, "flash:{at_secs}:{factor}:{hold_secs}"),
        }
    }
}

impl FromStr for RatePattern {
    type Err = String;

    /// Parses the compact spec syntax used by matrix cells and the CLI:
    /// `uniform`, `diurnal:PERIOD_S:AMPLITUDE`, `pareto:ALPHA:BURST_S:PEAK`,
    /// `flash:AT_S:FACTOR:HOLD_S`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or_default().trim();
        let mut nums = parts.map(|p| {
            p.trim()
                .parse::<f64>()
                .map_err(|e| format!("bad number `{p}` in rate pattern `{s}`: {e}"))
        });
        let mut next = |what: &str| {
            nums.next()
                .ok_or_else(|| format!("rate pattern `{s}` is missing {what}"))?
        };
        let pattern = match kind {
            "uniform" => RatePattern::Uniform,
            "diurnal" => RatePattern::Diurnal {
                period_secs: next("PERIOD_S")?,
                amplitude: next("AMPLITUDE")?,
            },
            "pareto" => RatePattern::ParetoBursts {
                alpha: next("ALPHA")?,
                burst_secs: next("BURST_S")?,
                peak: next("PEAK")?,
            },
            "flash" => RatePattern::FlashCrowd {
                at_secs: next("AT_S")?,
                factor: next("FACTOR")?,
                hold_secs: next("HOLD_S")?,
            },
            other => {
                return Err(format!(
                    "unknown rate pattern `{other}` (expected uniform, diurnal, pareto, flash)"
                ))
            }
        };
        if nums.next().is_some() {
            return Err(format!("rate pattern `{s}` has trailing parameters"));
        }
        pattern.validate()?;
        Ok(pattern)
    }
}

/// A compiled pattern: a piecewise-constant rate multiplier over
/// run-relative time, optionally cycling.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPattern {
    /// `(start_micros, multiplier)` segments; the first starts at 0 and
    /// starts are strictly increasing.
    segments: Vec<(u64, f64)>,
    /// Period after which the segments repeat; `None` holds the last
    /// segment's multiplier forever.
    cycle_micros: Option<u64>,
}

impl CompiledPattern {
    /// The multiplier in force at run-relative time `t_micros`.
    pub fn multiplier_at_micros(&self, t_micros: u64) -> f64 {
        let t = match self.cycle_micros {
            Some(cycle) if cycle > 0 => t_micros % cycle,
            _ => t_micros,
        };
        match self.segments.binary_search_by_key(&t, |&(start, _)| start) {
            Ok(i) => self.segments[i].1,
            Err(0) => self.segments.first().map_or(1.0, |&(_, m)| m),
            Err(i) => self.segments[i - 1].1,
        }
    }

    /// The largest multiplier anywhere in the pattern (the thinning bound
    /// an inhomogeneous-Poisson sampler needs).
    pub fn max_multiplier(&self) -> f64 {
        self.segments
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::MIN, f64::max)
            .max(0.0)
    }

    /// Whether the pattern is the constant multiplier 1.0.
    pub fn is_uniform(&self) -> bool {
        self.segments.iter().all(|&(_, m)| m == 1.0)
    }

    /// The boundary of the segment containing cycle-relative time
    /// `t_micros` (i.e. where the current multiplier stops applying), or
    /// `None` when the multiplier holds forever from there.
    fn segment_end_micros(&self, t_micros: u64) -> Option<u64> {
        let (cycle_t, base) = match self.cycle_micros {
            Some(cycle) if cycle > 0 => (t_micros % cycle, t_micros - t_micros % cycle),
            _ => (t_micros, 0),
        };
        let next = self
            .segments
            .iter()
            .map(|&(start, _)| start)
            .find(|&start| start > cycle_t);
        match (next, self.cycle_micros) {
            (Some(start), _) => Some(base + start),
            (None, Some(cycle)) if cycle > 0 => Some(base + cycle),
            _ => None,
        }
    }

    /// Walks forward from `t_micros` until `target_area` of
    /// multiplier·time has been consumed, returning the reached time.
    /// This is the exact inverse-integral step an inhomogeneous Poisson
    /// sampler needs: with `target_area = Exp(1)/rate`, the returned time
    /// is the next arrival.
    pub fn advance_by_area(&self, t_micros: f64, target_area_micros: f64) -> f64 {
        let mut t = t_micros;
        let mut remaining = target_area_micros;
        // Bounded walk: patterns have finitely many segments per cycle
        // and every multiplier is strictly positive (validated), so the
        // loop terminates; the cap is defense in depth against a
        // zero-multiplier pattern constructed without validation.
        for _ in 0..1_000_000 {
            let m = self.multiplier_at_micros(t as u64);
            let step = if m > 0.0 {
                remaining / m
            } else {
                f64::INFINITY
            };
            match self.segment_end_micros(t as u64) {
                Some(end) if (t + step) > end as f64 => {
                    remaining -= (end as f64 - t) * m;
                    t = end as f64;
                }
                _ => return t + step,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_flat() {
        let p = RatePattern::Uniform.compile(1);
        assert!(p.is_uniform());
        for t in [0u64, 1, 1_000_000, u64::MAX / 2] {
            assert_eq!(p.multiplier_at_micros(t), 1.0);
        }
        assert_eq!(p.max_multiplier(), 1.0);
    }

    #[test]
    fn diurnal_oscillates_and_cycles() {
        let pattern = RatePattern::Diurnal {
            period_secs: 64.0,
            amplitude: 0.5,
        };
        let p = pattern.compile(0);
        // Quarter period: near the peak. Three quarters: near the trough.
        let peak = p.multiplier_at_micros(16_000_000);
        let trough = p.multiplier_at_micros(48_000_000);
        assert!(peak > 1.4, "peak {peak}");
        assert!(trough < 0.6, "trough {trough}");
        assert!(trough > 0.0, "multiplier must stay positive");
        // Cycles: one full period later the multiplier repeats exactly.
        for t in (0..64_000_000u64).step_by(1_000_000) {
            assert_eq!(
                p.multiplier_at_micros(t),
                p.multiplier_at_micros(t + 64_000_000)
            );
        }
    }

    #[test]
    fn pareto_bursts_are_seeded_and_heavy_tailed() {
        let pattern = RatePattern::ParetoBursts {
            alpha: 1.5,
            burst_secs: 0.2,
            peak: 4.0,
        };
        let a = pattern.compile(7);
        let b = pattern.compile(7);
        let c = pattern.compile(8);
        assert_eq!(a, b, "same seed, same train");
        assert_ne!(a, c, "different seed, different gaps");
        assert_eq!(a.max_multiplier(), 4.0);
        // The train alternates quiet (1.0) and burst (4.0) segments.
        let mut saw_quiet = false;
        let mut saw_burst = false;
        for t in (0..60_000_000u64).step_by(10_000) {
            let m = a.multiplier_at_micros(t);
            if m == 1.0 {
                saw_quiet = true;
            } else if m == 4.0 {
                saw_burst = true;
            } else {
                panic!("unexpected multiplier {m}");
            }
        }
        assert!(saw_quiet && saw_burst);
    }

    #[test]
    fn flash_crowd_steps_up_and_back() {
        let p = RatePattern::FlashCrowd {
            at_secs: 5.0,
            factor: 4.0,
            hold_secs: 2.0,
        }
        .compile(0);
        assert_eq!(p.multiplier_at_micros(0), 1.0);
        assert_eq!(p.multiplier_at_micros(4_999_999), 1.0);
        assert_eq!(p.multiplier_at_micros(5_000_000), 4.0);
        assert_eq!(p.multiplier_at_micros(6_999_999), 4.0);
        assert_eq!(p.multiplier_at_micros(7_000_000), 1.0);
        // No cycle: the post-surge base rate holds forever.
        assert_eq!(p.multiplier_at_micros(1_000_000_000), 1.0);
    }

    #[test]
    fn spec_round_trip() {
        for spec in [
            "uniform",
            "diurnal:60:0.5",
            "pareto:1.5:0.2:4",
            "flash:5:4:2",
        ] {
            let pattern: RatePattern = spec.parse().unwrap();
            assert_eq!(pattern.to_string(), spec);
            let reparsed: RatePattern = pattern.to_string().parse().unwrap();
            assert_eq!(pattern, reparsed);
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for spec in [
            "sawtooth",
            "diurnal:60",
            "diurnal:60:1.5",
            "diurnal:0:0.5",
            "pareto:1.5:0.2:0.5",
            "pareto:0:1:2",
            "flash:5:0.5:2",
            "flash:-1:4:2",
            "diurnal:60:0.5:9",
            "pareto:1.5:abc:4",
        ] {
            assert!(spec.parse::<RatePattern>().is_err(), "accepted `{spec}`");
        }
    }

    #[test]
    fn advance_by_area_inverts_the_integral() {
        // Flash crowd at 4x between 1s and 3s. Walking 1.5s-equivalent of
        // area from t=0.5s: 0.5s at 1x consumes 0.5, then the rest at 4x
        // consumes 1.0 in 0.25s → arrival at 1.25s.
        let p = RatePattern::FlashCrowd {
            at_secs: 1.0,
            factor: 4.0,
            hold_secs: 2.0,
        }
        .compile(0);
        let reached = p.advance_by_area(500_000.0, 1_500_000.0);
        assert!((reached - 1_250_000.0).abs() < 1.0, "reached {reached}");
        // Uniform: the area IS the time.
        let u = RatePattern::Uniform.compile(0);
        assert_eq!(u.advance_by_area(0.0, 123_456.0), 123_456.0);
    }

    #[test]
    fn advance_by_area_crosses_cycles() {
        // Diurnal with a 1s period: averaging over whole periods the
        // multiplier integrates to ~1, so 10 periods of area take ~10s.
        let p = RatePattern::Diurnal {
            period_secs: 1.0,
            amplitude: 0.5,
        }
        .compile(0);
        let reached = p.advance_by_area(0.0, 10_000_000.0);
        assert!(
            (reached - 10_000_000.0).abs() < 100_000.0,
            "reached {reached}"
        );
    }
}

//! Deadline-based rate control with hybrid sleep / busy-wait.
//!
//! "Emitting stream events is handled by a dedicated thread that uses high
//! precision timestamps and busy-waiting for timeliness" (§5.1). A plain
//! `sleep` per event caps out far below the paper's 320k events/s targets
//! (timer granularity) and drifts; [`Pacer`] instead tracks an absolute
//! next-emission deadline, sleeps only while the remaining wait is
//! comfortably above timer granularity, and spins for the final stretch.

use std::time::{Duration, Instant};

/// The remaining-wait threshold below which the pacer spins instead of
/// sleeping. Chosen well above typical Linux timer slack.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// A deadline-based event pacer.
#[derive(Debug, Clone)]
pub struct Pacer {
    /// Nanoseconds between events at speed factor 1.
    base_interval_nanos: f64,
    /// Current speed multiplier (from `SPEED` control events).
    speed: f64,
    next_deadline: Instant,
}

impl Pacer {
    /// A pacer targeting `rate` events per second.
    ///
    /// # Panics
    /// If `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Pacer {
            base_interval_nanos: 1e9 / rate,
            speed: 1.0,
            next_deadline: Instant::now(),
        }
    }

    /// Applies a `SPEED` control factor (1.0 restores the base rate).
    ///
    /// # Panics
    /// If `factor` is not positive and finite.
    pub fn set_speed(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "speed must be positive");
        self.speed = factor;
    }

    /// Current speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The effective target rate in events/s.
    pub fn effective_rate(&self) -> f64 {
        1e9 / self.base_interval_nanos * self.speed
    }

    /// Blocks until the next emission deadline, then advances it. When the
    /// pacer has fallen behind (deadline in the past), it returns
    /// immediately, letting the replayer catch up in a bounded burst.
    ///
    /// Returns how late the emission is relative to its deadline — zero
    /// when the pacer woke on time, positive when the previous emission
    /// (slow sink, pause, starved reader) pushed this one past its slot.
    pub fn wait(&mut self) -> Duration {
        let now = Instant::now();
        let lateness = if self.next_deadline > now {
            Self::wait_until(self.next_deadline);
            Duration::ZERO
        } else {
            let behind = now.duration_since(self.next_deadline);
            if behind > Duration::from_millis(100) {
                // Too far behind (e.g. after a pause or a slow sink):
                // re-anchor instead of bursting unboundedly.
                self.next_deadline = now;
            }
            behind
        };
        let interval = self.base_interval_nanos / self.speed;
        self.next_deadline += Duration::from_nanos(interval as u64);
        lateness
    }

    /// Re-anchors the deadline to now + one interval (used after `PAUSE`).
    pub fn reset(&mut self) {
        let interval = self.base_interval_nanos / self.speed;
        self.next_deadline = Instant::now() + Duration::from_nanos(interval as u64);
    }

    /// Hybrid sleep/spin until the target instant.
    fn wait_until(deadline: Instant) {
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return;
            };
            if remaining > SPIN_THRESHOLD {
                std::thread::sleep(remaining - SPIN_THRESHOLD);
            } else {
                while Instant::now() < deadline {
                    std::hint::spin_loop();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_to_target_rate() {
        let mut pacer = Pacer::new(2_000.0);
        pacer.reset();
        let start = Instant::now();
        for _ in 0..200 {
            pacer.wait();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let rate = 200.0 / elapsed;
        // Within 25% of the 2k target on a loaded CI machine.
        assert!(
            (1_500.0..2_600.0).contains(&rate),
            "achieved rate {rate} events/s"
        );
    }

    #[test]
    fn speed_factor_scales_rate() {
        let mut pacer = Pacer::new(1_000.0);
        assert_eq!(pacer.effective_rate(), 1_000.0);
        pacer.set_speed(2.0);
        assert_eq!(pacer.effective_rate(), 2_000.0);
        pacer.set_speed(0.5);
        assert_eq!(pacer.effective_rate(), 500.0);
        assert_eq!(pacer.speed(), 0.5);
    }

    #[test]
    fn doubled_speed_halves_duration() {
        let mut slow = Pacer::new(4_000.0);
        slow.reset();
        let start = Instant::now();
        for _ in 0..100 {
            slow.wait();
        }
        let slow_elapsed = start.elapsed();

        let mut fast = Pacer::new(4_000.0);
        fast.set_speed(2.0);
        fast.reset();
        let start = Instant::now();
        for _ in 0..100 {
            fast.wait();
        }
        let fast_elapsed = start.elapsed();
        assert!(
            fast_elapsed.as_secs_f64() < slow_elapsed.as_secs_f64() * 0.8,
            "fast {fast_elapsed:?} vs slow {slow_elapsed:?}"
        );
    }

    #[test]
    fn recovers_after_stall_without_unbounded_burst() {
        let mut pacer = Pacer::new(1_000_000.0);
        pacer.reset();
        std::thread::sleep(Duration::from_millis(150));
        // The pacer re-anchors rather than firing hundreds of thousands of
        // catch-up events instantly; the next waits still pace.
        let start = Instant::now();
        for _ in 0..1_000 {
            pacer.wait();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(500), "elapsed {elapsed:?}");
    }

    #[test]
    fn reports_lateness_when_behind() {
        let mut pacer = Pacer::new(1_000.0);
        pacer.reset();
        // First wait lands on (or after) its deadline normally.
        let on_time = pacer.wait();
        assert!(on_time < Duration::from_millis(5), "late {on_time:?}");
        // Simulate a stalled sink: the next deadline is long past.
        std::thread::sleep(Duration::from_millis(20));
        let late = pacer.wait();
        assert!(late >= Duration::from_millis(15), "lateness {late:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        Pacer::new(0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_zero_speed() {
        Pacer::new(1.0).set_speed(0.0);
    }
}

//! Deadline-based rate control with hybrid sleep / busy-wait.
//!
//! "Emitting stream events is handled by a dedicated thread that uses high
//! precision timestamps and busy-waiting for timeliness" (§5.1). A plain
//! `sleep` per event caps out far below the paper's 320k events/s targets
//! (timer granularity) and drifts; [`Pacer`] instead tracks an absolute
//! next-emission deadline, sleeps only while the remaining wait is
//! comfortably above timer granularity, and spins for the final stretch.
//!
//! The deadline arithmetic lives in [`PacerCore`], which is pure over
//! run-relative nanoseconds — no clock reads, no sleeping — so SPEED /
//! PAUSE / stall scenarios are testable deterministically. [`Pacer`] is
//! the thin wall-clock shell that feeds it `Instant`s and actually blocks.

use std::time::{Duration, Instant};

use crate::pattern::CompiledPattern;

/// The remaining-wait threshold below which the pacer spins instead of
/// sleeping. Chosen well above typical Linux timer slack.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// How far behind schedule the pacer may fall before it re-anchors the
/// deadline to "now" instead of bursting to catch up.
const RE_ANCHOR_NANOS: u64 = 100_000_000; // 100 ms

/// One scheduling decision from [`PacerCore::schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// How long to wait before emitting (0 when already at/past the
    /// deadline).
    pub wait_nanos: u64,
    /// How far past its deadline this emission is (0 when on time).
    pub lateness_nanos: u64,
}

/// Pure deadline arithmetic over run-relative nanoseconds.
///
/// Holds the base interval, the current `SPEED` factor, and the absolute
/// next-emission deadline; [`Self::schedule`] takes "now" as a plain
/// number and never blocks, so every pacing policy — mid-stream speed
/// changes, bounded catch-up after a stall, `PAUSE` re-anchoring — is a
/// deterministic function of its inputs.
#[derive(Debug, Clone)]
pub struct PacerCore {
    /// Nanoseconds between events at speed factor 1.
    base_interval_nanos: f64,
    /// Current speed multiplier (from `SPEED` control events).
    speed: f64,
    next_deadline_nanos: u64,
    /// Optional rate-variability shape (§4.4): a time-varying multiplier
    /// on top of base rate × SPEED. `None` is the paper's uniform pacing.
    pattern: Option<CompiledPattern>,
}

impl PacerCore {
    /// A core targeting `rate` events per second, first deadline at 0.
    ///
    /// # Panics
    /// If `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        PacerCore {
            base_interval_nanos: 1e9 / rate,
            speed: 1.0,
            next_deadline_nanos: 0,
            pattern: None,
        }
    }

    /// Attaches a compiled rate pattern: every scheduled interval is
    /// divided by the pattern's multiplier at the slot's deadline, so the
    /// emitted rate follows the shape (diurnal wave, burst train, flash
    /// crowd) while SPEED control events still scale on top.
    pub fn with_pattern(mut self, pattern: CompiledPattern) -> Self {
        self.pattern = if pattern.is_uniform() {
            None
        } else {
            Some(pattern)
        };
        self
    }

    /// Applies a `SPEED` control factor (1.0 restores the base rate).
    ///
    /// Invalid factors — zero, negative, NaN, infinite — are ignored and
    /// the previous speed is kept. The pacer is the last line of defense
    /// behind parse-time and replay-time validation, and a bad factor
    /// must degrade to "unchanged", never to the `u64::MAX`-nanosecond
    /// interval the old saturating cast produced (a permanent stall).
    pub fn set_speed(&mut self, factor: f64) {
        if factor.is_finite() && factor > 0.0 {
            self.speed = factor;
        }
    }

    /// Current speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The effective target rate in events/s.
    pub fn effective_rate(&self) -> f64 {
        1e9 / self.base_interval_nanos * self.speed
    }

    /// The current inter-event interval in nanoseconds, clamped to a
    /// finite, representable value. `set_speed` already rejects invalid
    /// factors, so the clamp only matters as defense in depth — a
    /// non-finite quotient must not saturate the `as u64` cast into a
    /// ~585-year interval.
    fn interval_nanos(&self) -> u64 {
        self.interval_nanos_at(self.next_deadline_nanos)
    }

    /// The inter-event interval in force at run-relative time `t_nanos`:
    /// base interval ÷ (speed × pattern multiplier), clamped to a finite,
    /// representable value.
    fn interval_nanos_at(&self, t_nanos: u64) -> u64 {
        let multiplier = self
            .pattern
            .as_ref()
            .map_or(1.0, |p| p.multiplier_at_micros(t_nanos / 1_000));
        let interval = self.base_interval_nanos / (self.speed * multiplier);
        if interval.is_finite() && interval >= 0.0 {
            interval as u64
        } else {
            1
        }
    }

    /// Decides the wait for the next emission given the current
    /// run-relative time, and advances the deadline by one interval.
    ///
    /// Behind schedule (deadline in the past) the wait is zero and the
    /// lateness positive, letting the caller catch up in a burst; more
    /// than `RE_ANCHOR_NANOS` (100 ms) behind, the deadline snaps to `now` so
    /// the burst stays bounded (a 20 s `PAUSE` must not be followed by
    /// 20 s × rate instantaneous events).
    pub fn schedule(&mut self, now_nanos: u64) -> Schedule {
        let decision = if self.next_deadline_nanos > now_nanos {
            Schedule {
                wait_nanos: self.next_deadline_nanos - now_nanos,
                lateness_nanos: 0,
            }
        } else {
            let behind = now_nanos - self.next_deadline_nanos;
            if behind > RE_ANCHOR_NANOS {
                self.next_deadline_nanos = now_nanos;
            }
            Schedule {
                wait_nanos: 0,
                lateness_nanos: behind,
            }
        };
        self.next_deadline_nanos += self.interval_nanos();
        decision
    }

    /// Re-anchors the deadline to `now` + one interval (used after
    /// `PAUSE`).
    pub fn reset(&mut self, now_nanos: u64) {
        self.next_deadline_nanos = now_nanos + self.interval_nanos_at(now_nanos);
    }
}

/// A deadline-based event pacer: [`PacerCore`] driven by the wall clock.
#[derive(Debug, Clone)]
pub struct Pacer {
    core: PacerCore,
    origin: Instant,
}

impl Pacer {
    /// A pacer targeting `rate` events per second.
    ///
    /// # Panics
    /// If `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        Pacer {
            core: PacerCore::new(rate),
            origin: Instant::now(),
        }
    }

    /// A pacer targeting `rate` events per second, shaped by a compiled
    /// rate pattern (see [`crate::pattern::RatePattern`]).
    ///
    /// # Panics
    /// If `rate` is not positive and finite.
    pub fn with_pattern(rate: f64, pattern: CompiledPattern) -> Self {
        Pacer {
            core: PacerCore::new(rate).with_pattern(pattern),
            origin: Instant::now(),
        }
    }

    /// Applies a `SPEED` control factor (1.0 restores the base rate).
    /// Invalid factors (zero, negative, NaN, infinite) are ignored — see
    /// [`PacerCore::set_speed`].
    pub fn set_speed(&mut self, factor: f64) {
        self.core.set_speed(factor);
    }

    /// Current speed factor.
    pub fn speed(&self) -> f64 {
        self.core.speed()
    }

    /// The effective target rate in events/s.
    pub fn effective_rate(&self) -> f64 {
        self.core.effective_rate()
    }

    /// Nanoseconds since this pacer's origin.
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Non-blocking scheduling decision: advances the deadline and returns
    /// the [`Schedule`] together with the run-relative "now" (nanoseconds
    /// since the pacer's origin) it was taken at.
    ///
    /// `wait_nanos > 0` means the emission is early — block until
    /// `now + wait_nanos` (see [`Self::block_until`]) to stay on schedule.
    /// `wait_nanos == 0` means the emission is already due; the replayer
    /// uses this to coalesce behind-schedule events into one batch instead
    /// of blocking per event.
    pub fn poll(&mut self) -> (Schedule, u64) {
        let now = self.now_nanos();
        (self.core.schedule(now), now)
    }

    /// Hybrid sleep/spin until the given run-relative nanosecond instant.
    pub fn block_until(&self, target_nanos: u64) {
        Self::wait_until(self.origin + Duration::from_nanos(target_nanos));
    }

    /// Blocks until the next emission deadline, then advances it. When the
    /// pacer has fallen behind (deadline in the past), it returns
    /// immediately, letting the replayer catch up in a bounded burst.
    ///
    /// Returns how late the emission is relative to its deadline — zero
    /// when the pacer woke on time, positive when the previous emission
    /// (slow sink, pause, starved reader) pushed this one past its slot.
    pub fn wait(&mut self) -> Duration {
        let (schedule, now) = self.poll();
        if schedule.wait_nanos > 0 {
            self.block_until(now + schedule.wait_nanos);
        }
        Duration::from_nanos(schedule.lateness_nanos)
    }

    /// Re-anchors the deadline to now + one interval (used after `PAUSE`).
    pub fn reset(&mut self) {
        let now = self.now_nanos();
        self.core.reset(now);
    }

    /// Hybrid sleep/spin until the target instant.
    fn wait_until(deadline: Instant) {
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return;
            };
            if remaining > SPIN_THRESHOLD {
                std::thread::sleep(remaining - SPIN_THRESHOLD);
            } else {
                while Instant::now() < deadline {
                    std::hint::spin_loop();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- Deterministic core tests: no clocks, no sleeping. ----

    /// Helper: one event per `schedule` call at the given synthetic time.
    fn sched(core: &mut PacerCore, now_nanos: u64) -> Schedule {
        core.schedule(now_nanos)
    }

    #[test]
    fn deadlines_advance_by_exact_intervals() {
        // 1 kHz → 1 ms interval. An ideal emitter that always arrives
        // exactly on its deadline sees a full-interval wait for event 1
        // onward and zero lateness throughout.
        let mut core = PacerCore::new(1_000.0);
        core.reset(0);
        let mut t = 0u64;
        for i in 1..=5u64 {
            let s = sched(&mut core, t);
            assert_eq!(s.lateness_nanos, 0, "event {i}");
            assert_eq!(s.wait_nanos, i * 1_000_000 - t, "event {i}");
            t += s.wait_nanos; // arrive exactly on the deadline
        }
        assert_eq!(t, 5_000_000, "5 events at 1 kHz take exactly 5 ms");
    }

    #[test]
    fn mid_stream_speed_change_rescales_later_deadlines() {
        // SPEED control event arriving mid-stream: deadlines already
        // issued keep their spacing; subsequent ones use the new interval.
        let mut core = PacerCore::new(1_000.0); // 1 ms
        core.reset(0);
        let s1 = sched(&mut core, 0);
        assert_eq!(s1.wait_nanos, 1_000_000);

        core.set_speed(2.0); // SPEED,,2 → 0.5 ms interval
        assert_eq!(core.effective_rate(), 2_000.0);
        // The slot at 2 ms was issued before the speed change and keeps
        // its old spacing; the one scheduled now uses the new interval.
        let s2 = sched(&mut core, 1_000_000);
        assert_eq!(s2.wait_nanos, 1_000_000, "pre-change slot unchanged");
        let s3 = sched(&mut core, 2_000_000);
        assert_eq!(s3.wait_nanos, 500_000, "first doubled-rate gap");
        let s4 = sched(&mut core, 2_500_000);
        assert_eq!(s4.wait_nanos, 500_000, "steady doubled-rate gap");

        core.set_speed(1.0); // SPEED,,1 → back to 1 ms
        let s5 = sched(&mut core, 3_000_000);
        assert_eq!(s5.wait_nanos, 500_000, "pre-change slot unchanged");
        let s6 = sched(&mut core, 3_500_000);
        assert_eq!(s6.wait_nanos, 1_000_000, "base-rate gap restored");
    }

    #[test]
    fn pause_resets_instead_of_bursting() {
        // PAUSE,,20000 semantics: the replayer sleeps, then calls reset.
        // The next deadline is one interval after the pause end — no
        // catch-up burst for the paused span.
        let mut core = PacerCore::new(1_000.0);
        core.reset(0);
        sched(&mut core, 0);
        // 20 ms pause ends at t = 21 ms (one emission happened at 1 ms).
        core.reset(21_000_000);
        let s = sched(&mut core, 21_000_000);
        assert_eq!(s.wait_nanos, 1_000_000);
        assert_eq!(s.lateness_nanos, 0);
    }

    #[test]
    fn short_stall_catches_up_with_full_burst() {
        // A sink stall shorter than the re-anchor threshold: every missed
        // slot is emitted immediately (wait 0) with growing-then-shrinking
        // lateness until the schedule is caught up.
        let mut core = PacerCore::new(1_000.0);
        core.reset(0);
        sched(&mut core, 0); // deadline 1 ms scheduled
                             // The emitter stalls 50 ms: next call happens at t = 51 ms, with
                             // deadlines 2, 3, 4, … ms long past.
        let s = sched(&mut core, 51_000_000);
        assert_eq!(s.wait_nanos, 0);
        assert_eq!(s.lateness_nanos, 49_000_000, "49 ms late vs 2 ms slot");
        // Burst: catch-up events fire back-to-back, each one interval
        // less late, until the deadline passes "now".
        let mut t = 51_000_000u64;
        let mut last_lateness = s.lateness_nanos;
        let mut burst = 0;
        loop {
            let s = sched(&mut core, t);
            if s.wait_nanos > 0 {
                break;
            }
            assert!(s.lateness_nanos < last_lateness, "lateness must shrink");
            last_lateness = s.lateness_nanos;
            t += 1_000; // 1 µs per emission while bursting
            burst += 1;
        }
        // ~49 missed slots replayed in the burst.
        assert!((45..=55).contains(&burst), "burst of {burst} events");
    }

    #[test]
    fn long_stall_re_anchors_and_bounds_the_burst() {
        // Behind by more than RE_ANCHOR_NANOS: the core snaps the
        // schedule to "now" — a 1 MHz pacer stalled for 1 s must NOT burst
        // a million events.
        let mut core = PacerCore::new(1_000_000.0);
        core.reset(0);
        sched(&mut core, 0);
        let s = sched(&mut core, 1_000_000_000); // 1 s stall
        assert_eq!(s.wait_nanos, 0);
        assert!(s.lateness_nanos > 999_000_000, "reported the full stall");
        // Immediately after: the deadline is now + 1 µs, so the next event
        // waits — no second free slot.
        let s = sched(&mut core, 1_000_000_001);
        assert_eq!(s.wait_nanos, 999);
        assert_eq!(s.lateness_nanos, 0);
    }

    #[test]
    fn speed_change_during_catch_up_applies_to_new_slots() {
        // Mid-burst SPEED change: already-missed slots still fire
        // immediately, and the schedule continues at the new interval.
        let mut core = PacerCore::new(1_000.0);
        core.reset(0);
        sched(&mut core, 0);
        let s = sched(&mut core, 6_000_000); // 4 ms behind, below threshold
        assert_eq!(s.wait_nanos, 0);
        assert_eq!(s.lateness_nanos, 4_000_000);
        core.set_speed(4.0); // 0.25 ms interval from here on
        let mut t = 6_000_000u64;
        let mut free = 0;
        loop {
            let s = sched(&mut core, t);
            if s.wait_nanos > 0 {
                // Caught up: gaps now follow the 4x interval.
                assert!(s.wait_nanos <= 250_000, "wait {}", s.wait_nanos);
                break;
            }
            t += 1_000;
            free += 1;
        }
        // The 3 ms deficit (deadline was at 3 ms when the speed changed)
        // at 0.25 ms/slot yields ~13 catch-up slots — more than the ~3
        // the base interval would have produced.
        assert!((11..=15).contains(&free), "caught up in {free} slots");
    }

    #[test]
    fn speed_factor_scales_rate() {
        let mut pacer = Pacer::new(1_000.0);
        assert_eq!(pacer.effective_rate(), 1_000.0);
        pacer.set_speed(2.0);
        assert_eq!(pacer.effective_rate(), 2_000.0);
        pacer.set_speed(0.5);
        assert_eq!(pacer.effective_rate(), 500.0);
        assert_eq!(pacer.speed(), 0.5);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        Pacer::new(0.0);
    }

    #[test]
    fn invalid_speed_factors_are_ignored() {
        // Regression: `set_speed` used to panic on these, and before that
        // a zero/negative/NaN factor flowed into `interval_nanos` where
        // the saturating `as u64` cast produced a u64::MAX-nanosecond
        // interval — a replay stalled for ~585 years.
        let mut core = PacerCore::new(1_000.0);
        core.set_speed(2.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            core.set_speed(bad);
            assert_eq!(core.speed(), 2.0, "factor {bad} must be ignored");
        }
        // The schedule keeps advancing at the last valid speed: the next
        // slot is half a base interval away, not u64::MAX nanoseconds.
        core.reset(0);
        let s = core.schedule(0);
        assert_eq!(s.wait_nanos, 500_000);
    }

    #[test]
    fn flash_crowd_pattern_compresses_intervals_during_the_surge() {
        // 1 kHz base rate with a 4x flash crowd from t=10ms for 10ms
        // (scaled-down pattern): slots before the surge are 1 ms apart,
        // slots inside it 0.25 ms apart, slots after it 1 ms again.
        use crate::pattern::RatePattern;
        let pattern = RatePattern::FlashCrowd {
            at_secs: 0.010,
            factor: 4.0,
            hold_secs: 0.010,
        }
        .compile(0);
        let mut core = PacerCore::new(1_000.0).with_pattern(pattern);
        core.reset(0);
        let mut t = 0u64;
        let mut gaps = Vec::new();
        for _ in 0..60 {
            let s = sched(&mut core, t);
            gaps.push(s.wait_nanos);
            t += s.wait_nanos; // ideal emitter: arrive exactly on deadline
        }
        assert_eq!(gaps[0], 1_000_000, "base-rate gap before the surge");
        assert!(
            gaps.iter().filter(|&&g| g == 250_000).count() >= 30,
            "surge slots at the 4x interval: {gaps:?}"
        );
        assert_eq!(
            *gaps.last().unwrap(),
            1_000_000,
            "base-rate gap restored after the surge: {gaps:?}"
        );
    }

    #[test]
    fn uniform_pattern_changes_nothing() {
        use crate::pattern::RatePattern;
        let mut plain = PacerCore::new(1_000.0);
        let mut shaped = PacerCore::new(1_000.0).with_pattern(RatePattern::Uniform.compile(9));
        plain.reset(0);
        shaped.reset(0);
        let mut t = 0u64;
        for _ in 0..10 {
            let a = sched(&mut plain, t);
            let b = sched(&mut shaped, t);
            assert_eq!(a, b);
            t += a.wait_nanos;
        }
    }

    #[test]
    fn speed_control_scales_on_top_of_the_pattern() {
        // SPEED,,2 during a 4x surge: the interval is base / (2 × 4).
        use crate::pattern::RatePattern;
        let pattern = RatePattern::FlashCrowd {
            at_secs: 0.0,
            factor: 4.0,
            hold_secs: 1_000.0,
        }
        .compile(0);
        let mut core = PacerCore::new(1_000.0).with_pattern(pattern);
        core.set_speed(2.0);
        core.reset(0);
        let s = sched(&mut core, 0);
        assert_eq!(s.wait_nanos, 125_000);
    }

    #[test]
    fn interval_clamp_survives_non_finite_quotients() {
        // Defense in depth: even with the speed forced into an invalid
        // state (bypassing set_speed), the interval must stay finite.
        let mut core = PacerCore::new(1_000.0);
        core.speed = 0.0; // quotient = +inf
        assert_eq!(core.interval_nanos(), 1);
        core.speed = f64::NAN;
        assert_eq!(core.interval_nanos(), 1);
        core.speed = -1.0; // quotient negative
        assert_eq!(core.interval_nanos(), 1);
    }

    // ---- Wall-clock timing tests: `#[ignore]` by default, run by the
    // dedicated CI timing job (`cargo test --release -- --ignored`);
    // they sleep and measure real elapsed time, so they are too flaky
    // for the default suite on loaded machines. ----

    #[test]
    #[ignore = "wall-clock timing; run via the CI timing job"]
    fn paces_to_target_rate() {
        let mut pacer = Pacer::new(2_000.0);
        pacer.reset();
        let start = Instant::now();
        for _ in 0..200 {
            pacer.wait();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let rate = 200.0 / elapsed;
        // Within 25% of the 2k target on a loaded CI machine.
        assert!(
            (1_500.0..2_600.0).contains(&rate),
            "achieved rate {rate} events/s"
        );
    }

    #[test]
    #[ignore = "wall-clock timing; run via the CI timing job"]
    fn doubled_speed_halves_duration() {
        let mut slow = Pacer::new(4_000.0);
        slow.reset();
        let start = Instant::now();
        for _ in 0..100 {
            slow.wait();
        }
        let slow_elapsed = start.elapsed();

        let mut fast = Pacer::new(4_000.0);
        fast.set_speed(2.0);
        fast.reset();
        let start = Instant::now();
        for _ in 0..100 {
            fast.wait();
        }
        let fast_elapsed = start.elapsed();
        assert!(
            fast_elapsed.as_secs_f64() < slow_elapsed.as_secs_f64() * 0.8,
            "fast {fast_elapsed:?} vs slow {slow_elapsed:?}"
        );
    }

    #[test]
    #[ignore = "wall-clock timing; run via the CI timing job"]
    fn recovers_after_stall_without_unbounded_burst() {
        let mut pacer = Pacer::new(1_000_000.0);
        pacer.reset();
        std::thread::sleep(Duration::from_millis(150));
        // The pacer re-anchors rather than firing hundreds of thousands of
        // catch-up events instantly; the next waits still pace.
        let start = Instant::now();
        for _ in 0..1_000 {
            pacer.wait();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(500), "elapsed {elapsed:?}");
    }

    #[test]
    #[ignore = "wall-clock timing; run via the CI timing job"]
    fn reports_lateness_when_behind() {
        let mut pacer = Pacer::new(1_000.0);
        pacer.reset();
        // First wait lands on (or after) its deadline normally.
        let on_time = pacer.wait();
        assert!(on_time < Duration::from_millis(5), "late {on_time:?}");
        // Simulate a stalled sink: the next deadline is long past.
        std::thread::sleep(Duration::from_millis(20));
        let late = pacer.wait();
        assert!(late >= Duration::from_millis(15), "lateness {late:?}");
    }
}

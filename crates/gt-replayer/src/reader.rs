//! The decoupled reader thread.
//!
//! "Streaming is decoupled from reading the stream graph file. We use a
//! multi-threaded design to decouple both tasks and to ensure high
//! throughput" (§5.1). The reader parses the stream file on its own thread
//! and feeds the emitter through a bounded channel, so disk latency never
//! stalls emission as long as the buffer holds.

use std::path::PathBuf;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use gt_core::prelude::*;

/// Default channel capacity between reader and emitter.
pub const DEFAULT_BUFFER: usize = 64 * 1024;

/// Spawns a reader thread over a stream file. Entries arrive through the
/// returned receiver as [`SharedEntry`] handles — allocated once on the
/// reader thread, then only `Arc`-cloned along the batched ingest path.
/// The thread ends at EOF or on the first parse error (reported through
/// the second channel).
pub fn spawn_file_reader(
    path: impl Into<PathBuf>,
    buffer: usize,
) -> (Receiver<SharedEntry>, JoinHandle<Result<u64, CoreError>>) {
    let path = path.into();
    let (tx, rx) = bounded(buffer.max(1));
    let handle = std::thread::Builder::new()
        .name("gt-stream-reader".into())
        .spawn(move || -> Result<u64, CoreError> {
            let file = std::fs::File::open(&path)?;
            let reader = StreamReader::new(std::io::BufReader::with_capacity(256 * 1024, file));
            let mut count = 0u64;
            for entry in reader {
                let entry = entry?;
                count += 1;
                if tx.send(SharedEntry::new(entry)).is_err() {
                    break; // emitter hung up (e.g. replay aborted)
                }
            }
            Ok(count)
        })
        .expect("spawning reader thread");
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_stream_file(content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gt-replayer-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stream-{:x}.csv", {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            content.hash(&mut h);
            h.finish()
        }));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn reads_all_entries() {
        let path = temp_stream_file("ADD_VERTEX,1,\nADD_VERTEX,2,\nMARKER,end,\n");
        let (rx, handle) = spawn_file_reader(&path, 16);
        let entries: Vec<SharedEntry> = rx.iter().collect();
        assert_eq!(entries.len(), 3);
        assert!(entries[2].is_marker());
        assert_eq!(handle.join().unwrap().unwrap(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reports_parse_errors() {
        let path = temp_stream_file("ADD_VERTEX,1,\nGARBAGE\n");
        let (rx, handle) = spawn_file_reader(&path, 16);
        let entries: Vec<SharedEntry> = rx.iter().collect();
        assert_eq!(entries.len(), 1);
        assert!(handle.join().unwrap().is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let (rx, handle) = spawn_file_reader("/nonexistent/gt-stream.csv", 4);
        assert!(rx.iter().next().is_none());
        assert!(handle.join().unwrap().is_err());
    }

    #[test]
    fn dropping_receiver_stops_reader() {
        let content: String = (0..100_000).map(|i| format!("ADD_VERTEX,{i},\n")).collect();
        let path = temp_stream_file(&content);
        let (rx, handle) = spawn_file_reader(&path, 4);
        // Take a few entries, then hang up.
        let taken: Vec<SharedEntry> = rx.iter().take(5).collect();
        assert_eq!(taken.len(), 5);
        drop(rx);
        // The reader notices the closed channel and exits cleanly.
        assert!(handle.join().unwrap().is_ok());
        std::fs::remove_file(path).ok();
    }
}

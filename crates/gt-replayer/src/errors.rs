//! Typed replay-pipeline errors.
//!
//! Raw `io::Error` values are fine for single-shot sinks, but a
//! fault-tolerant pipeline has distinguishable failure modes the caller
//! wants to branch on: the stream file failed to parse, the sink exhausted
//! its reconnect budget, the reader thread died. [`ReplayError`] names
//! them.

use std::fmt;
use std::io;

use gt_core::prelude::CoreError;

use crate::sink::DisconnectCause;

/// Why a replay pipeline stopped.
#[derive(Debug)]
pub enum ReplayError {
    /// An I/O failure outside the sink's reconnect loop (opening the
    /// stream file, a non-recoverable sink write).
    Io(io::Error),
    /// The stream file failed to parse (reader thread error).
    Source(CoreError),
    /// The sink exhausted its reconnect budget.
    SinkGaveUp {
        /// Reconnect attempts made before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: io::Error,
        /// How the original connection died (RST vs FIN vs stall).
        cause: DisconnectCause,
    },
    /// The reader thread panicked (a bug, not an environment failure).
    ReaderPanicked,
    /// An in-stream control event carried an invalid payload (e.g. a
    /// `SPEED` factor that is zero, negative, or not finite). The replay
    /// fails fast instead of letting the payload corrupt the pacing
    /// schedule.
    InvalidControl {
        /// The offending control event, rendered for diagnostics.
        control: String,
        /// Why the payload was rejected.
        reason: String,
    },
}

impl ReplayError {
    /// Converts an `io::Error` bubbled out of a sink back into the typed
    /// error, recovering a [`ReplayError::SinkGaveUp`] smuggled through
    /// the [`crate::EventSink`] interface by
    /// [`crate::ReconnectingTcpSink`].
    pub fn from_sink_error(err: io::Error) -> Self {
        if err.get_ref().is_some_and(|e| e.is::<ReplayError>()) {
            // Unwrap the boxed ReplayError we placed there ourselves.
            let inner = err.into_inner().expect("checked above");
            return *inner.downcast::<ReplayError>().expect("checked above");
        }
        ReplayError::Io(err)
    }

    /// Wraps this error in an `io::Error` so it can cross the
    /// [`crate::EventSink`] interface without widening the trait.
    pub fn into_io(self) -> io::Error {
        let kind = match &self {
            ReplayError::Io(e) => e.kind(),
            ReplayError::SinkGaveUp { .. } => io::ErrorKind::ConnectionAborted,
            ReplayError::InvalidControl { .. } => io::ErrorKind::InvalidData,
            _ => io::ErrorKind::Other,
        };
        io::Error::new(kind, self)
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "replay I/O error: {e}"),
            ReplayError::Source(e) => write!(f, "stream source error: {e}"),
            ReplayError::SinkGaveUp {
                attempts,
                last,
                cause,
            } => write!(
                f,
                "sink gave up after {attempts} reconnect attempts ({}): {last}",
                cause.label()
            ),
            ReplayError::ReaderPanicked => f.write_str("stream reader thread panicked"),
            ReplayError::InvalidControl { control, reason } => {
                write!(f, "invalid control event {control}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Io(e) => Some(e),
            ReplayError::Source(e) => Some(e),
            ReplayError::SinkGaveUp { last, .. } => Some(last),
            ReplayError::ReaderPanicked => None,
            ReplayError::InvalidControl { .. } => None,
        }
    }
}

impl From<io::Error> for ReplayError {
    fn from(err: io::Error) -> Self {
        ReplayError::from_sink_error(err)
    }
}

impl From<CoreError> for ReplayError {
    fn from(err: CoreError) -> Self {
        ReplayError::Source(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn give_up_roundtrips_through_io_error() {
        let typed = ReplayError::SinkGaveUp {
            attempts: 7,
            last: io::Error::new(io::ErrorKind::ConnectionRefused, "refused"),
            cause: DisconnectCause::Reset,
        };
        let io_err = typed.into_io();
        assert_eq!(io_err.kind(), io::ErrorKind::ConnectionAborted);
        match ReplayError::from_sink_error(io_err) {
            ReplayError::SinkGaveUp {
                attempts,
                last,
                cause,
            } => {
                assert_eq!(attempts, 7);
                assert_eq!(last.kind(), io::ErrorKind::ConnectionRefused);
                assert_eq!(cause, DisconnectCause::Reset);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn plain_io_errors_stay_io() {
        let err = io::Error::new(io::ErrorKind::BrokenPipe, "pipe");
        match ReplayError::from_sink_error(err) {
            ReplayError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::BrokenPipe),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn display_is_informative() {
        let e = ReplayError::SinkGaveUp {
            attempts: 3,
            last: io::Error::new(io::ErrorKind::ConnectionRefused, "refused"),
            cause: DisconnectCause::Stalled,
        };
        let msg = e.to_string();
        assert!(msg.contains("3 reconnect attempts"), "{msg}");
        assert!(msg.contains("stalled"), "{msg}");
    }
}

//! Integration tests for the file→parse→pace→sink pipeline: backpressure
//! under a slow consumer, TCP reconnection mid-replay, and bounded-memory
//! replay of a large stream.

use std::io::{self, BufRead, BufReader};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use gt_core::prelude::*;
use gt_replayer::{
    EventSink, ReconnectPolicy, ReconnectingTcpSink, ReplaySession, ReplaySessionConfig,
    ReplayerConfig, SinkEventKind,
};

fn temp_stream_file(name: &str, events: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("gt-session-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.csv"));
    let mut content = String::with_capacity(events * 16);
    for i in 0..events {
        content.push_str(&format!("ADD_VERTEX,{i},\n"));
    }
    content.push_str("MARKER,end,\n");
    std::fs::write(&path, content).unwrap();
    path
}

fn config(rate: f64, buffer: usize) -> ReplaySessionConfig {
    ReplaySessionConfig {
        replayer: ReplayerConfig {
            target_rate: rate,
            ..Default::default()
        },
        buffer,
        mmap: false,
    }
}

/// A sink that dawdles on every delivery, like an overloaded system under
/// test.
struct SlowSink {
    delay: Duration,
    received: u64,
}

impl EventSink for SlowSink {
    fn send(&mut self, _entry: &StreamEntry) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.received += 1;
        Ok(())
    }
}

#[test]
fn slow_consumer_backpressure_fills_queue() {
    // The replayer wants 1M events/s but the sink takes ~200us per event:
    // the reader races ahead and parks at the bounded channel's capacity,
    // which the queue-depth gauge must observe.
    let path = temp_stream_file("backpressure", 500);
    let session = ReplaySession::new(config(1e6, 32));
    let mut sink = SlowSink {
        delay: Duration::from_micros(200),
        received: 0,
    };
    let report = session.run(&path, &mut sink).unwrap();
    assert_eq!(sink.received, 501);
    assert_eq!(
        report.max_queue_depth, 32,
        "backpressure never filled the bounded channel"
    );
    // ~500 × 200us of sink time must show up as sink stall, and dwarf
    // reader stall (the file is tiny and parsed instantly).
    assert!(
        report.sink_stall_micros >= 80_000,
        "sink stall {}us",
        report.sink_stall_micros
    );
    assert!(
        report.sink_stall_micros > report.reader_stall_micros,
        "sink stall {}us vs reader stall {}us",
        report.sink_stall_micros,
        report.reader_stall_micros
    );
    // A slow sink means emissions run behind schedule: deadline misses.
    assert!(report.emit_latency.max > 0);
    std::fs::remove_file(path).ok();
}

/// Binds `addr`, retrying briefly: the port may still be settling right
/// after the previous listener dropped.
fn rebind(addr: std::net::SocketAddr) -> TcpListener {
    for _ in 0..200 {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("could not rebind {addr}");
}

#[test]
fn tcp_listener_restart_mid_replay_completes() {
    let path = temp_stream_file("reconnect", 40_000);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // The "system under test": accepts, consumes a slice of the stream,
    // dies, restarts, and consumes the rest.
    let consumer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(listener);
        let mut lines = BufReader::new(stream).lines();
        let mut first_batch = 0usize;
        for _ in 0..1_000 {
            if lines.next().is_none() {
                break;
            }
            first_batch += 1;
        }
        // Kill the connection mid-replay (drops both reader and socket).
        drop(lines);

        let listener = rebind(addr);
        let (stream, _) = listener.accept().unwrap();
        let rest: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        (first_batch, rest)
    });

    let session = ReplaySession::new(config(200_000.0, 1_024));
    let mut sink = ReconnectingTcpSink::connect(addr)
        .unwrap()
        .with_policy(ReconnectPolicy {
            max_attempts: 100,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            multiplier: 2.0,
            ..Default::default()
        })
        .with_flush_every(64);
    let report = session.run(&path, &mut sink).unwrap();
    sink.flush().unwrap();
    drop(sink);

    // The whole stream was emitted despite the mid-replay restart...
    assert_eq!(report.replay.graph_events, 40_000);
    // ...and the outage is visible in the report.
    assert!(
        report
            .sink_events
            .iter()
            .any(|e| matches!(e.kind, SinkEventKind::Disconnected { .. })),
        "no disconnect event: {:?}",
        report.sink_events
    );
    assert!(
        report
            .sink_events
            .iter()
            .any(|e| matches!(e.kind, SinkEventKind::Reconnected { .. })),
        "no reconnect event: {:?}",
        report.sink_events
    );

    let (first_batch, rest) = consumer.join().unwrap();
    assert!(first_batch > 0);
    // The tail of the stream reached the restarted consumer, ending with
    // the marker line.
    assert!(!rest.is_empty());
    assert_eq!(rest.last().unwrap(), "MARKER,end,");
    std::fs::remove_file(path).ok();
}

/// Counts deliveries without storing them — so a multi-megabyte stream
/// replay holds only the bounded channel in memory.
struct CountingSink {
    graph_events: u64,
    markers: u64,
}

impl EventSink for CountingSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        match entry {
            StreamEntry::Graph(_) => self.graph_events += 1,
            StreamEntry::Marker(_) => self.markers += 1,
            StreamEntry::Control(_) => {}
        }
        Ok(())
    }
}

#[test]
fn million_event_stream_replays_in_bounded_memory() {
    let path = temp_stream_file("million", 1_000_000);
    let session = ReplaySession::new(config(1e9, 1_024));
    let mut sink = CountingSink {
        graph_events: 0,
        markers: 0,
    };
    let report = session.run(&path, &mut sink).unwrap();
    assert_eq!(report.replay.graph_events, 1_000_000);
    assert_eq!(report.entries_read, 1_000_001);
    assert_eq!(sink.graph_events, 1_000_000);
    assert_eq!(sink.markers, 1);
    // The only buffering between file and sink is the bounded channel.
    assert!(
        report.max_queue_depth <= 1_024,
        "queue depth {} exceeded channel capacity",
        report.max_queue_depth
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn honors_controls_through_the_pipeline() {
    // PAUSE and SPEED lines flow file → reader → pacer: the pause must
    // register as paused time in the report, not as rate loss.
    let dir = std::env::temp_dir().join("gt-session-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("controls.csv");
    let mut content = String::new();
    for i in 0..100 {
        content.push_str(&format!("ADD_VERTEX,{i},\n"));
    }
    content.push_str("PAUSE,,50\n");
    content.push_str("SPEED,,2\n");
    for i in 100..200 {
        content.push_str(&format!("ADD_VERTEX,{i},\n"));
    }
    std::fs::write(&path, content).unwrap();

    let session = ReplaySession::new(config(50_000.0, 64));
    let mut sink = CountingSink {
        graph_events: 0,
        markers: 0,
    };
    let report = session.run(&path, &mut sink).unwrap();
    assert_eq!(report.replay.graph_events, 200);
    assert!(
        report.replay.paused_micros >= 50_000,
        "paused {}us",
        report.replay.paused_micros
    );
    assert!(
        report.replay.achieved_rate > 20_000.0,
        "pause leaked into achieved rate: {}",
        report.replay.achieved_rate
    );
    std::fs::remove_file(path).ok();
}

//! The worker runtime: mailboxes, routing, instrumentation.
//!
//! [`Engine`] is generic over the vertex program ([`Partition`]); the
//! influence-rank instantiation is exported as [`TideGraph`], matching
//! the paper's Chronograph experiment, and the online-SSSP instantiation
//! as [`crate::sssp::SsspEngine`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use gt_core::prelude::*;
use gt_metrics::hub::{Counter, Gauge};
use gt_metrics::MetricsHub;
use gt_trace::{Probe, Stage, TracerCell};
use parking_lot::Mutex;

use crate::program::Partition;
use crate::rank::{RankParams, RankPartition};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (the paper's Chronograph setup uses 4).
    pub workers: usize,
    /// Rank computation parameters (used by the [`TideGraph`]
    /// instantiation; other programs carry their own parameters).
    pub rank: RankParams,
    /// Simulated processing cost per mutation event.
    pub event_cost: Duration,
    /// Simulated processing cost per computational (share) message.
    pub share_cost: Duration,
    /// Workers refresh the shared result board every this many processed
    /// messages (the Level-2 "periodically dump intermediate results"
    /// instrumentation).
    pub board_refresh_every: u64,
    /// Messages a worker drains from its mailbox per processing round.
    /// Pushes of a whole round coalesce, so larger batches cut share
    /// traffic at fan-in hubs; `1` disables coalescing (the naive
    /// per-message engine — see the drain-batch ablation bench).
    pub drain_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            rank: RankParams::default(),
            event_cost: Duration::ZERO,
            share_cost: Duration::ZERO,
            board_refresh_every: 256,
            drain_batch: 64,
        }
    }
}

/// Final statistics after shutdown.
#[derive(Debug)]
pub struct EngineStats {
    /// Mutation events processed.
    pub events: u64,
    /// Computational messages processed.
    pub shares: u64,
    /// Final per-vertex result values (unnormalized for the rank
    /// program).
    pub ranks: BTreeMap<VertexId, f64>,
}

enum Msg<M> {
    /// A mutation event with its global ingest sequence number (stream
    /// position), carried so out-of-order worker processing can still
    /// stamp Level-2 tracepoints against the replayer-side stages.
    Event(SharedGraphEvent, u64),
    /// Broadcast half of vertex removal: strip edges pointing at the id.
    Purge(VertexId),
    Compute(VertexId, M),
    /// A watermark: queued behind everything already in the mailbox, so
    /// its processing time measures the ingest-to-process latency of the
    /// events streamed before it (§4.5's watermark pattern).
    Marker(String),
    Stop,
}

/// The shared result board: workers periodically publish their
/// partition's current values; the harness reads it without queueing
/// behind backlog.
type ResultBoard = Arc<Mutex<BTreeMap<VertexId, f64>>>;

/// Processed watermarks: `(marker name, worker id, micros since engine
/// start)`.
type MarkerLog = Arc<Mutex<Vec<(String, usize, u64)>>>;

/// A running vertex-centric engine executing the program `P`.
pub struct Engine<P: Partition> {
    senders: Arc<Vec<Sender<Msg<P::Msg>>>>,
    handles: Option<Vec<JoinHandle<P>>>,
    board: ResultBoard,
    markers: MarkerLog,
    started: Instant,
    hub: MetricsHub,
    workers: usize,
    /// Global ingest counter: each graph event's stream position, carried
    /// into the worker mailboxes for Level-2 trace stamping.
    ingest_seq: AtomicU64,
    /// Lazily installed Level-2 tracer shared with the worker threads,
    /// which spawn in [`Engine::start_with`] — before any tracer exists.
    tracer_cell: TracerCell,
}

/// The influence-rank engine — the paper's Chronograph stand-in.
pub type TideGraph = Engine<RankPartition>;

fn busy_work(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let end = Instant::now() + cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Owner worker of a vertex.
fn owner(v: VertexId, workers: usize) -> usize {
    ((v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % workers as u64) as usize
}

impl Engine<RankPartition> {
    /// Starts the influence-rank engine. Per-worker metrics registered on
    /// `hub`: `worker-N.queue` (mailbox length gauge), `worker-N.ops`
    /// (messages processed), `worker-N.events`, `worker-N.shares`,
    /// `worker-N.busy_micros`.
    pub fn start(config: EngineConfig, hub: &MetricsHub) -> Self {
        let params = config.rank;
        Engine::start_with(config, hub, move |_worker| RankPartition::new(params))
    }
}

impl<P: Partition> Engine<P> {
    /// Starts an engine whose workers each run the partition produced by
    /// `factory(worker_id)`.
    pub fn start_with(
        config: EngineConfig,
        hub: &MetricsHub,
        factory: impl Fn(usize) -> P,
    ) -> Self {
        assert!(config.workers >= 1, "at least one worker required");
        let mut senders = Vec::with_capacity(config.workers);
        let mut receivers: Vec<Receiver<Msg<P::Msg>>> = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let board: ResultBoard = Arc::new(Mutex::new(BTreeMap::new()));
        let markers: MarkerLog = Arc::new(Mutex::new(Vec::new()));
        let started = Instant::now();

        let tracer_cell = TracerCell::new();
        let mut handles = Vec::with_capacity(config.workers);
        for (worker_id, rx) in receivers.into_iter().enumerate() {
            let ctx = WorkerCtx {
                worker_id,
                rx,
                senders: Arc::clone(&senders),
                board: Arc::clone(&board),
                markers: Arc::clone(&markers),
                started,
                config: config.clone(),
                tracer_cell: tracer_cell.clone(),
                queue_gauge: hub.gauge(&format!("worker-{worker_id}.queue")),
                ops: hub.counter(&format!("worker-{worker_id}.ops")),
                events: hub.counter(&format!("worker-{worker_id}.events")),
                shares: hub.counter(&format!("worker-{worker_id}.shares")),
                busy: hub.counter(&format!("worker-{worker_id}.busy_micros")),
            };
            let partition = factory(worker_id);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tide-graph-worker-{worker_id}"))
                    .spawn(move || worker_loop(ctx, partition))
                    .expect("spawn worker"),
            );
        }

        Engine {
            senders,
            handles: Some(handles),
            board,
            markers,
            started,
            hub: hub.clone(),
            workers: config.workers,
            ingest_seq: AtomicU64::new(0),
            tracer_cell,
        }
    }

    /// The tracer slot shared with the worker threads. Installing a
    /// [`gt_trace::Tracer`] here makes every worker stamp applied
    /// mutation events at [`Stage::EngineApply`], keyed by the global
    /// ingest sequence carried in their mailbox message.
    pub fn tracer_cell(&self) -> &TracerCell {
        &self.tracer_cell
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Microseconds since the engine started (the engine-side clock that
    /// timestamps processed watermarks).
    pub fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Routes one mutation event to its owner worker. Vertex removals are
    /// additionally broadcast so every worker strips dangling references.
    pub fn ingest(&self, event: GraphEvent) {
        self.ingest_shared(SharedGraphEvent::new(event));
    }

    /// Routes an already-shared mutation event — the batched connector
    /// path, which moves the replayer's `Arc` handle straight into the
    /// owner's mailbox without copying the event payload.
    pub fn ingest_shared(&self, event: SharedGraphEvent) {
        if let GraphEvent::RemoveVertex { id } = event.event() {
            for (w, tx) in self.senders.iter().enumerate() {
                if w != owner(*id, self.workers) {
                    let _ = tx.send(Msg::Purge(*id));
                }
            }
        }
        let target = match event.event() {
            GraphEvent::AddVertex { id, .. }
            | GraphEvent::RemoveVertex { id }
            | GraphEvent::UpdateVertex { id, .. } => *id,
            GraphEvent::AddEdge { id, .. }
            | GraphEvent::RemoveEdge { id }
            | GraphEvent::UpdateEdge { id, .. } => id.src,
        };
        // The ingest counter assigns each graph event its global stream
        // position; connectors call in stream order, so the sequence
        // matches what the replayer-side tracepoints counted.
        let seq = self.ingest_seq.fetch_add(1, Ordering::Relaxed);
        let _ = self.senders[owner(target, self.workers)].send(Msg::Event(event, seq));
    }

    /// Enqueues a watermark on every worker. Each worker timestamps it
    /// when *processed* — behind everything already in its mailbox — so
    /// `processed time − enqueue time` is the current ingestion latency.
    pub fn ingest_marker(&self, name: &str) {
        for tx in self.senders.iter() {
            let _ = tx.send(Msg::Marker(name.to_owned()));
        }
    }

    /// Processed watermarks so far: `(name, worker, micros since engine
    /// start)`.
    pub fn marker_log(&self) -> Vec<(String, usize, u64)> {
        self.markers.lock().clone()
    }

    /// Sum of all worker mailbox lengths (live backlog).
    pub fn total_queue_len(&self) -> usize {
        self.senders.iter().map(|tx| tx.len()).sum()
    }

    /// A snapshot of the result board (the periodically dumped
    /// intermediate results), normalized to sum to 1.
    pub fn board_ranks(&self) -> BTreeMap<VertexId, f64> {
        let board = self.board.lock().clone();
        normalize(board)
    }

    /// A raw (unnormalized) snapshot of the result board.
    pub fn board_values(&self) -> BTreeMap<VertexId, f64> {
        self.board.lock().clone()
    }

    /// Blocks until all mailboxes are empty and the total op count is
    /// stable across two polls, or the timeout elapses. Returns whether
    /// quiescence was reached.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_ops = u64::MAX;
        loop {
            let queue = self.total_queue_len();
            let ops: u64 = (0..self.workers)
                .map(|w| self.hub.counter(&format!("worker-{w}.ops")).get())
                .sum();
            if queue == 0 && ops == last_ops {
                return true;
            }
            last_ops = ops;
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops the workers, joins them, and merges final results.
    pub fn shutdown(mut self) -> EngineStats {
        for tx in self.senders.iter() {
            let _ = tx.send(Msg::Stop);
        }
        let mut ranks = BTreeMap::new();
        for handle in self.handles.take().expect("not yet shut down") {
            let partition = handle.join().expect("worker panicked");
            for (id, p) in partition.summary() {
                ranks.insert(id, p);
            }
        }
        let events: u64 = (0..self.workers)
            .map(|w| self.hub.counter(&format!("worker-{w}.events")).get())
            .sum();
        let shares: u64 = (0..self.workers)
            .map(|w| self.hub.counter(&format!("worker-{w}.shares")).get())
            .sum();
        EngineStats {
            events,
            shares,
            ranks,
        }
    }

    /// Result values normalized to sum to 1 (helper for accuracy
    /// analyses of the rank program).
    pub fn normalized(ranks: &BTreeMap<VertexId, f64>) -> BTreeMap<VertexId, f64> {
        normalize(ranks.clone())
    }
}

fn normalize(mut ranks: BTreeMap<VertexId, f64>) -> BTreeMap<VertexId, f64> {
    let total: f64 = ranks.values().sum();
    if total > 0.0 {
        for v in ranks.values_mut() {
            *v /= total;
        }
    }
    ranks
}

struct WorkerCtx<M> {
    worker_id: usize,
    rx: Receiver<Msg<M>>,
    senders: Arc<Vec<Sender<Msg<M>>>>,
    board: ResultBoard,
    markers: MarkerLog,
    started: Instant,
    config: EngineConfig,
    tracer_cell: TracerCell,
    queue_gauge: Gauge,
    ops: Counter,
    events: Counter,
    shares: Counter,
    busy: Counter,
}

fn worker_loop<P: Partition>(ctx: WorkerCtx<P::Msg>, mut partition: P) -> P {
    let workers = ctx.config.workers;
    let drain_batch = ctx.config.drain_batch.max(1);
    let mut outbox: Vec<(VertexId, P::Msg)> = Vec::new();
    let mut dirty: Vec<VertexId> = Vec::new();
    let mut processed: u64 = 0;
    let mut running = true;
    // Lazily acquired apply tracepoint: the thread outlives tracer
    // installation, so it polls the cell (one atomic load while empty).
    let mut trace_probe: Option<Probe> = None;

    while running {
        // Block for the first message, then opportunistically drain more.
        let Ok(first) = ctx.rx.recv() else {
            break;
        };
        ctx.queue_gauge.set(ctx.rx.len() as i64);
        let started = Instant::now();
        let mut batch = 1u64;
        let mut msg = first;
        loop {
            match msg {
                Msg::Event(event, seq) => {
                    busy_work(ctx.config.event_cost);
                    partition.apply_event_deferred(event.event(), &mut dirty);
                    ctx.events.inc();
                    if trace_probe.is_none() {
                        trace_probe = ctx.tracer_cell.probe(Stage::EngineApply);
                    }
                    if let Some(probe) = &trace_probe {
                        // Workers process out of stream order, so the
                        // stamp carries the global ingest sequence.
                        probe.stamp_seq(seq);
                    }
                }
                Msg::Purge(id) => {
                    partition.purge(id, &mut outbox);
                }
                Msg::Compute(target, payload) => {
                    busy_work(ctx.config.share_cost);
                    partition.receive_deferred(target, payload, &mut dirty);
                    ctx.shares.inc();
                }
                Msg::Marker(name) => {
                    let t = ctx.started.elapsed().as_micros() as u64;
                    ctx.markers.lock().push((name, ctx.worker_id, t));
                }
                Msg::Stop => {
                    running = false;
                    break;
                }
            }
            if batch as usize >= drain_batch {
                break;
            }
            match ctx.rx.try_recv() {
                Ok(next) => {
                    msg = next;
                    batch += 1;
                }
                Err(_) => break,
            }
        }
        // Coalesced program work for the whole batch.
        partition.flush_dirty(&dirty, &mut outbox);
        dirty.clear();

        ctx.busy.add(started.elapsed().as_micros() as u64);
        ctx.ops.add(batch);
        processed += batch;

        // Route produced messages; self-targets loop through the own
        // mailbox too — computation and mutation genuinely share the
        // queue.
        for (target, payload) in outbox.drain(..) {
            let _ = ctx.senders[owner(target, workers)].send(Msg::Compute(target, payload));
        }

        if processed % ctx.config.board_refresh_every.max(1) < batch {
            let mut board = ctx.board.lock();
            for (id, p) in partition.summary() {
                board.insert(id, p);
            }
        }
    }
    // Final board publish so late readers see the end state.
    {
        let mut board = ctx.board.lock();
        for (id, p) in partition.summary() {
            board.insert(id, p);
        }
    }
    partition
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    #[test]
    fn processes_stream_and_converges() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(EngineConfig::default(), &hub);
        for i in 0..50 {
            engine.ingest(add_v(i));
        }
        for i in 0..50 {
            engine.ingest(add_e(i, (i + 1) % 50));
        }
        assert!(engine.quiesce(Duration::from_secs(10)));
        let stats = engine.shutdown();
        assert_eq!(stats.events, 100);
        assert!(stats.shares > 0);
        assert_eq!(stats.ranks.len(), 50);
        // Symmetric ring: normalized ranks near-uniform.
        let norm = TideGraph::normalized(&stats.ranks);
        for (&id, &p) in &norm {
            assert!((p - 0.02).abs() < 0.005, "vertex {id}: {p}");
        }
    }

    #[test]
    fn ranks_match_batch_pagerank_shape() {
        use gt_algorithms::pagerank::{pagerank, PageRankConfig};
        use gt_graph::{CsrSnapshot, EvolvingGraph};

        // A preferential-attachment graph; compare top-5 sets.
        let stream = gt_graph::builders::BarabasiAlbert {
            n: 150,
            m0: 5,
            m: 2,
            seed: 77,
        }
        .generate();
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                rank: RankParams {
                    epsilon: 1e-5,
                    ..Default::default()
                },
                ..Default::default()
            },
            &hub,
        );
        let mut graph = EvolvingGraph::new();
        for event in stream.graph_events() {
            engine.ingest(event.clone());
            graph.apply(event).unwrap();
        }
        assert!(engine.quiesce(Duration::from_secs(30)));
        let stats = engine.shutdown();
        let online = TideGraph::normalized(&stats.ranks);

        let csr = CsrSnapshot::from_graph(&graph);
        let exact = pagerank(&csr, &PageRankConfig::default());
        let exact_map: BTreeMap<VertexId, f64> = csr
            .indices()
            .map(|i| (csr.id_of(i), exact.ranks[i as usize]))
            .collect();

        let overlap = gt_overlap(&online, &exact_map, 5);
        assert!(overlap >= 0.4, "top-5 overlap {overlap}");
    }

    /// Local copy of the top-k Jaccard overlap to avoid a dev-dependency
    /// cycle with gt-analysis.
    fn gt_overlap(a: &BTreeMap<VertexId, f64>, b: &BTreeMap<VertexId, f64>, k: usize) -> f64 {
        let top = |m: &BTreeMap<VertexId, f64>| -> std::collections::BTreeSet<VertexId> {
            let mut v: Vec<(VertexId, f64)> = m.iter().map(|(i, &p)| (*i, p)).collect();
            v.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then(x.0.cmp(&y.0)));
            v.into_iter().take(k).map(|(i, _)| i).collect()
        };
        let (sa, sb) = (top(a), top(b));
        sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64
    }

    #[test]
    fn backlog_grows_under_load_and_drains() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                event_cost: Duration::from_micros(500),
                share_cost: Duration::from_micros(100),
                ..Default::default()
            },
            &hub,
        );
        // Burst far faster than 2 workers × 500µs can absorb.
        for i in 0..2_000 {
            engine.ingest(add_v(i));
        }
        let backlog = engine.total_queue_len();
        assert!(backlog > 100, "backlog {backlog}");
        assert!(engine.quiesce(Duration::from_secs(30)));
        assert_eq!(engine.total_queue_len(), 0);
        let stats = engine.shutdown();
        assert_eq!(stats.events, 2_000);
    }

    #[test]
    fn board_publishes_intermediate_results() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                board_refresh_every: 8,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..100 {
            engine.ingest(add_v(i));
        }
        engine.quiesce(Duration::from_secs(10));
        let board = engine.board_ranks();
        assert!(!board.is_empty());
        let total: f64 = board.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        engine.shutdown();
    }

    #[test]
    fn vertex_removal_broadcast_strips_remote_edges() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(EngineConfig::default(), &hub);
        for i in 0..10 {
            engine.ingest(add_v(i));
        }
        for i in 1..10 {
            engine.ingest(add_e(i, 0));
        }
        engine.quiesce(Duration::from_secs(10));
        engine.ingest(GraphEvent::RemoveVertex { id: VertexId(0) });
        engine.quiesce(Duration::from_secs(10));
        let stats = engine.shutdown();
        assert!(!stats.ranks.contains_key(&VertexId(0)));
        assert_eq!(stats.ranks.len(), 9);
    }

    #[test]
    fn markers_are_processed_by_every_worker() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 3,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..20 {
            engine.ingest(add_v(i));
        }
        let enqueued_at = engine.now_micros();
        engine.ingest_marker("wm-0");
        engine.quiesce(Duration::from_secs(10));
        let log = engine.marker_log();
        assert_eq!(log.len(), 3, "one record per worker: {log:?}");
        let workers: std::collections::BTreeSet<usize> = log.iter().map(|(_, w, _)| *w).collect();
        assert_eq!(workers.len(), 3);
        for (name, _, t) in &log {
            assert_eq!(name, "wm-0");
            assert!(*t >= enqueued_at, "processed before enqueue: {t}");
        }
        engine.shutdown();
    }

    #[test]
    fn marker_latency_grows_with_backlog() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                event_cost: Duration::from_micros(400),
                ..Default::default()
            },
            &hub,
        );
        // Marker on an idle engine: near-immediate.
        let t0 = engine.now_micros();
        engine.ingest_marker("idle");
        engine.quiesce(Duration::from_secs(10));
        let idle_latency = engine
            .marker_log()
            .iter()
            .map(|(_, _, t)| t - t0)
            .max()
            .unwrap();

        // Marker behind a burst of expensive events: must wait.
        for i in 0..1_000 {
            engine.ingest(add_v(i));
        }
        let t1 = engine.now_micros();
        engine.ingest_marker("busy");
        engine.quiesce(Duration::from_secs(60));
        let busy_latency = engine
            .marker_log()
            .iter()
            .filter(|(name, _, _)| name == "busy")
            .map(|(_, _, t)| t - t1)
            .max()
            .unwrap();
        assert!(
            busy_latency > idle_latency * 5,
            "busy {busy_latency}µs vs idle {idle_latency}µs"
        );
        engine.shutdown();
    }

    #[test]
    fn per_worker_metrics_registered() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 3,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..30 {
            engine.ingest(add_v(i));
        }
        engine.quiesce(Duration::from_secs(10));
        engine.shutdown();
        let total_ops: u64 = (0..3)
            .map(|w| hub.counter(&format!("worker-{w}.ops")).get())
            .sum();
        assert!(total_ops >= 30);
    }
}

//! The worker runtime: mailboxes, routing, instrumentation, supervision.
//!
//! [`Engine`] is generic over the vertex program ([`Partition`]); the
//! influence-rank instantiation is exported as [`TideGraph`], matching
//! the paper's Chronograph experiment, and the online-SSSP instantiation
//! as [`crate::sssp::SsspEngine`].
//!
//! # Crash containment and supervised recovery
//!
//! Workers are *crash-containable*: a scheduled [`Msg::Crash`] (delivered
//! through the [`EngineSupervisor`], the engine's
//! [`gt_sut::WorkerSupervisor`] surface) makes the worker discard its
//! partition state and exit, exactly like a killed process. The rest of
//! the engine keeps running — events routed to the dead worker are
//! counted as lost (`engine.events_lost`), never deadlocked on, and
//! shutdown joins dead workers tolerantly instead of poisoning the run.
//! In *supervised* mode ([`EngineConfig::supervised`]) the engine
//! additionally retains every ingested event, so a crashed worker can be
//! restarted and rebuilt by replaying its share of the retained log
//! (replay-from-last-applied-sequence, with ingest excluded during the
//! swap so recovery is exactly-once with respect to new events).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use gt_core::prelude::*;
use gt_metrics::hub::{Counter, Gauge};
use gt_metrics::MetricsHub;
use gt_sut::{Adjacency, StateDigest, WindowDigest, WorkerSupervisor};
use gt_trace::{Probe, Stage, TracerCell};
use parking_lot::{Mutex, RwLock};

use crate::program::Partition;
use crate::rank::{RankParams, RankPartition};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (the paper's Chronograph setup uses 4).
    pub workers: usize,
    /// Rank computation parameters (used by the [`TideGraph`]
    /// instantiation; other programs carry their own parameters).
    pub rank: RankParams,
    /// Simulated processing cost per mutation event.
    pub event_cost: Duration,
    /// Simulated processing cost per computational (share) message.
    pub share_cost: Duration,
    /// Workers refresh the shared result board every this many processed
    /// messages (the Level-2 "periodically dump intermediate results"
    /// instrumentation).
    pub board_refresh_every: u64,
    /// Messages a worker drains from its mailbox per processing round.
    /// Pushes of a whole round coalesce, so larger batches cut share
    /// traffic at fan-in hubs; `1` disables coalescing (the naive
    /// per-message engine — see the drain-batch ablation bench).
    pub drain_batch: usize,
    /// Retain every ingested event so crashed workers can be restarted
    /// with their state rebuilt by replay (the single-process stand-in
    /// for a durable write-ahead log). Costs memory proportional to the
    /// stream length; off by default.
    pub supervised: bool,
    /// Capture per-worker topology snapshots at every processed marker
    /// plus the final partition structures, folded into a
    /// [`gt_sut::StateDigest`] at shutdown — the raw material of the
    /// serial-vs-sharded differential. Costs a structure copy per worker
    /// per marker; off by default.
    pub digest: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            rank: RankParams::default(),
            event_cost: Duration::ZERO,
            share_cost: Duration::ZERO,
            board_refresh_every: 256,
            drain_batch: 64,
            supervised: false,
            digest: false,
        }
    }
}

/// Final statistics after shutdown.
#[derive(Debug)]
pub struct EngineStats {
    /// Mutation events processed. Replayed events are re-processed by the
    /// restarted worker, so after a supervised recovery this exceeds the
    /// number of distinct stream events.
    pub events: u64,
    /// Computational messages processed.
    pub shares: u64,
    /// Final per-vertex result values (unnormalized for the rank
    /// program).
    pub ranks: BTreeMap<VertexId, f64>,
    /// Worker deaths (injected crashes plus contained panics).
    pub crashes: u64,
    /// Supervised worker restarts.
    pub restarts: u64,
    /// Messages (mutation events and shares) that could not be delivered
    /// because their owner worker was dead.
    pub events_lost: u64,
    /// Mutation events re-enqueued from the retained log on restarts.
    pub events_replayed: u64,
    /// Topology digest (final adjacency + per-marker windows), present
    /// when the engine ran with [`EngineConfig::digest`] on.
    pub digest: Option<StateDigest>,
}

enum Msg<M> {
    /// A mutation event with its global ingest sequence number (stream
    /// position), carried so out-of-order worker processing can still
    /// stamp Level-2 tracepoints against the replayer-side stages.
    Event(SharedGraphEvent, u64),
    /// Broadcast half of vertex removal: strip edges pointing at the id.
    Purge(VertexId),
    Compute(VertexId, M),
    /// A watermark: queued behind everything already in the mailbox, so
    /// its processing time measures the ingest-to-process latency of the
    /// events streamed before it (§4.5's watermark pattern). The optional
    /// channel acknowledges processing (the marker barrier). The name is
    /// interned: the per-worker broadcast bumps a refcount instead of
    /// cloning a `String` per mailbox.
    Marker(Arc<str>, Option<Sender<()>>),
    /// A simulated worker kill: the worker discards its partition state
    /// and exits immediately, as if the process died. Queued like any
    /// message, so the crash lands at a deterministic position in the
    /// worker's message stream.
    Crash,
    Stop,
}

/// The shared result board: workers periodically publish their
/// partition's current values; the harness reads it without queueing
/// behind backlog.
type ResultBoard = Arc<Mutex<BTreeMap<VertexId, f64>>>;

/// Processed watermarks: `(marker name, worker id, micros since engine
/// start)`. Names stay interned in the log; the public accessor converts.
type MarkerLog = Arc<Mutex<Vec<(Arc<str>, usize, u64)>>>;

/// Per-worker topology snapshots taken at marker processing time (digest
/// mode): `(marker name, partition structure)`. Workers own disjoint
/// vertices, so entries for one marker union into the engine's topology
/// at that marker's consistent cut.
type SnapshotLog = Arc<Mutex<Vec<(Arc<str>, Adjacency)>>>;

/// The mailbox fabric shared by the engine handle, the workers, and the
/// supervisor: the current sender of every worker slot (swapped on
/// restart, hence the lock) plus a liveness flag per slot.
struct Mailboxes<M> {
    /// Write-locked only while a restart swaps a sender — which also
    /// excludes ingest, making recovery exactly-once with respect to new
    /// events.
    senders: RwLock<Vec<Sender<Msg<M>>>>,
    alive: Vec<AtomicBool>,
}

/// Counters describing fault/recovery activity, registered on the
/// engine's hub (`engine.crashes`, `engine.restarts`,
/// `engine.events_lost`, `engine.events_replayed`) so Level-1 sampling
/// sees them live.
#[derive(Clone)]
struct FaultCounters {
    crashes: Counter,
    restarts: Counter,
    events_lost: Counter,
    events_replayed: Counter,
}

impl FaultCounters {
    fn register(hub: &MetricsHub) -> Self {
        FaultCounters {
            crashes: hub.counter("engine.crashes"),
            restarts: hub.counter("engine.restarts"),
            events_lost: hub.counter("engine.events_lost"),
            events_replayed: hub.counter("engine.events_replayed"),
        }
    }
}

/// Everything a supervisor needs to kill and resurrect workers; shared
/// between the [`Engine`] handle and [`EngineSupervisor`] clones, and
/// deliberately *not* holding the `Engine` itself so shutdown paths that
/// need sole ownership of the engine keep working.
struct EngineCore<P: Partition> {
    mailboxes: Arc<Mailboxes<P::Msg>>,
    handles: Mutex<Vec<JoinHandle<Option<P>>>>,
    /// `(ingest seq, event)` — populated only in supervised mode.
    retained: Mutex<Vec<(u64, SharedGraphEvent)>>,
    factory: Box<dyn Fn(usize) -> P + Send + Sync>,
    board: ResultBoard,
    markers: MarkerLog,
    snapshots: SnapshotLog,
    started: Instant,
    config: EngineConfig,
    hub: MetricsHub,
    tracer_cell: TracerCell,
    /// Set by shutdown; blocks further restarts.
    stopping: AtomicBool,
    counters: FaultCounters,
}

impl<P: Partition> EngineCore<P> {
    /// Spawns (or respawns) the worker for a slot, consuming the receiver
    /// side of its fresh mailbox. Hub metrics are looked up by name, so a
    /// restarted worker keeps accumulating on the same series.
    fn spawn_worker(&self, worker_id: usize, rx: Receiver<Msg<P::Msg>>) -> JoinHandle<Option<P>> {
        let ctx = WorkerCtx {
            worker_id,
            rx,
            mailboxes: Arc::clone(&self.mailboxes),
            board: Arc::clone(&self.board),
            markers: Arc::clone(&self.markers),
            snapshots: Arc::clone(&self.snapshots),
            started: self.started,
            config: self.config.clone(),
            tracer_cell: self.tracer_cell.clone(),
            queue_gauge: self.hub.gauge(&format!("worker-{worker_id}.queue")),
            ops: self.hub.counter(&format!("worker-{worker_id}.ops")),
            events: self.hub.counter(&format!("worker-{worker_id}.events")),
            shares: self.hub.counter(&format!("worker-{worker_id}.shares")),
            busy: self.hub.counter(&format!("worker-{worker_id}.busy_micros")),
            crashes: self.counters.crashes.clone(),
            events_lost: self.counters.events_lost.clone(),
        };
        let partition = (self.factory)(worker_id);
        std::thread::Builder::new()
            .name(format!("tide-graph-worker-{worker_id}"))
            .spawn(move || worker_loop(ctx, partition))
            .expect("spawn worker")
    }
}

/// A running vertex-centric engine executing the program `P`.
pub struct Engine<P: Partition> {
    core: Arc<EngineCore<P>>,
    workers: usize,
    hub: MetricsHub,
    /// Global ingest counter: each graph event's stream position, carried
    /// into the worker mailboxes for Level-2 trace stamping.
    ingest_seq: AtomicU64,
}

/// The influence-rank engine — the paper's Chronograph stand-in.
pub type TideGraph = Engine<RankPartition>;

fn busy_work(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let end = Instant::now() + cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Owner worker of a vertex.
///
/// Public because the routing function is part of the engine's sharding
/// *contract*: a pure function of the vertex id (the shard contract tests
/// pin this), identical to tide-store's `shard_for_key` hashing so both
/// platforms partition entities the same way.
pub fn owner(v: VertexId, workers: usize) -> usize {
    ((v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % workers as u64) as usize
}

/// The vertex whose owner a mutation event is routed to: vertex events by
/// the vertex itself, edge events by the edge's source.
pub fn route_target(event: &GraphEvent) -> VertexId {
    match event {
        GraphEvent::AddVertex { id, .. }
        | GraphEvent::RemoveVertex { id }
        | GraphEvent::UpdateVertex { id, .. } => *id,
        GraphEvent::AddEdge { id, .. }
        | GraphEvent::RemoveEdge { id }
        | GraphEvent::UpdateEdge { id, .. } => id.src,
    }
}

impl Engine<RankPartition> {
    /// Starts the influence-rank engine. Per-worker metrics registered on
    /// `hub`: `worker-N.queue` (mailbox length gauge), `worker-N.ops`
    /// (messages processed), `worker-N.events`, `worker-N.shares`,
    /// `worker-N.busy_micros`; engine-wide fault counters
    /// `engine.crashes`, `engine.restarts`, `engine.events_lost`,
    /// `engine.events_replayed`.
    pub fn start(config: EngineConfig, hub: &MetricsHub) -> Self {
        let params = config.rank;
        Engine::start_with(config, hub, move |_worker| RankPartition::new(params))
    }
}

impl<P: Partition> Engine<P> {
    /// Starts an engine whose workers each run the partition produced by
    /// `factory(worker_id)`. The factory is retained: in supervised mode
    /// it also builds the fresh partition of a restarted worker.
    pub fn start_with(
        config: EngineConfig,
        hub: &MetricsHub,
        factory: impl Fn(usize) -> P + Send + Sync + 'static,
    ) -> Self {
        assert!(config.workers >= 1, "at least one worker required");
        let workers = config.workers;
        let mut senders = Vec::with_capacity(workers);
        let mut receivers: Vec<Receiver<Msg<P::Msg>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mailboxes = Arc::new(Mailboxes {
            senders: RwLock::new(senders),
            alive: (0..workers).map(|_| AtomicBool::new(true)).collect(),
        });

        let core = Arc::new(EngineCore {
            mailboxes,
            handles: Mutex::new(Vec::with_capacity(workers)),
            retained: Mutex::new(Vec::new()),
            factory: Box::new(factory),
            board: Arc::new(Mutex::new(BTreeMap::new())),
            markers: Arc::new(Mutex::new(Vec::new())),
            snapshots: Arc::new(Mutex::new(Vec::new())),
            started: Instant::now(),
            config,
            hub: hub.clone(),
            tracer_cell: TracerCell::new(),
            stopping: AtomicBool::new(false),
            counters: FaultCounters::register(hub),
        });
        {
            let mut handles = core.handles.lock();
            for (worker_id, rx) in receivers.into_iter().enumerate() {
                handles.push(core.spawn_worker(worker_id, rx));
            }
        }

        Engine {
            core,
            workers,
            hub: hub.clone(),
            ingest_seq: AtomicU64::new(0),
        }
    }

    /// The tracer slot shared with the worker threads. Installing a
    /// [`gt_trace::Tracer`] here makes every worker stamp applied
    /// mutation events at [`Stage::EngineApply`], keyed by the global
    /// ingest sequence carried in their mailbox message.
    pub fn tracer_cell(&self) -> &TracerCell {
        &self.core.tracer_cell
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Microseconds since the engine started (the engine-side clock that
    /// timestamps processed watermarks).
    pub fn now_micros(&self) -> u64 {
        self.core.started.elapsed().as_micros() as u64
    }

    /// The engine's crash/restart control surface, for chaos runs. The
    /// handle shares the engine's internals (not the engine itself), so
    /// it stays valid until shutdown and never blocks an ownership-taking
    /// shutdown path.
    pub fn supervisor(&self) -> Arc<dyn WorkerSupervisor> {
        Arc::new(EngineSupervisor {
            core: Arc::clone(&self.core),
        })
    }

    /// Routes one mutation event to its owner worker. Vertex removals are
    /// additionally broadcast so every worker strips dangling references.
    pub fn ingest(&self, event: GraphEvent) {
        self.ingest_shared(SharedGraphEvent::new(event));
    }

    /// Routes an already-shared mutation event — the batched connector
    /// path, which moves the replayer's `Arc` handle straight into the
    /// owner's mailbox without copying the event payload.
    pub fn ingest_shared(&self, event: SharedGraphEvent) {
        // Holding the read lock for the whole routing step means a
        // restart (write lock) can never interleave with one ingest.
        let senders = self.core.mailboxes.senders.read();
        if let GraphEvent::RemoveVertex { id } = event.event() {
            for (w, tx) in senders.iter().enumerate() {
                if w != owner(*id, self.workers) && tx.send(Msg::Purge(*id)).is_err() {
                    self.core.counters.events_lost.inc();
                }
            }
        }
        let target = route_target(event.event());
        // The ingest counter assigns each graph event its global stream
        // position; connectors call in stream order, so the sequence
        // matches what the replayer-side tracepoints counted.
        let seq = self.ingest_seq.fetch_add(1, Ordering::Relaxed);
        if self.core.config.supervised {
            self.core.retained.lock().push((seq, event.clone()));
        }
        if senders[owner(target, self.workers)]
            .send(Msg::Event(event, seq))
            .is_err()
        {
            self.core.counters.events_lost.inc();
        }
    }

    /// Enqueues a watermark on every worker. Each worker timestamps it
    /// when *processed* — behind everything already in its mailbox — so
    /// `processed time − enqueue time` is the current ingestion latency.
    /// Dead workers miss the watermark (their marker-log entry is absent,
    /// which is itself a degradation signal).
    pub fn ingest_marker(&self, name: &str) {
        self.ingest_marker_with(name, None);
    }

    /// Enqueues a watermark on every worker and waits (up to `timeout`)
    /// until every worker that received it has *processed* it — the
    /// marker barrier. Dead workers are skipped, so a degraded engine
    /// reports a smaller count instead of hanging. Returns the number of
    /// acknowledgements received.
    pub fn ingest_marker_barrier(&self, name: &str, timeout: Duration) -> usize {
        let (ack_tx, ack_rx) = bounded::<()>(self.workers);
        let sent = self.ingest_marker_with(name, Some(ack_tx));
        let deadline = Instant::now() + timeout;
        let mut acked = 0usize;
        while acked < sent {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || ack_rx.recv_timeout(left).is_err() {
                break;
            }
            acked += 1;
        }
        acked
    }

    fn ingest_marker_with(&self, name: &str, ack: Option<Sender<()>>) -> usize {
        // Intern once; the fan-out below clones a refcount per worker
        // instead of allocating a String per mailbox.
        let name = gt_core::intern::intern(name);
        let senders = self.core.mailboxes.senders.read();
        let mut reached = 0usize;
        for tx in senders.iter() {
            if tx.send(Msg::Marker(Arc::clone(&name), ack.clone())).is_ok() {
                reached += 1;
            }
        }
        reached
    }

    /// Processed watermarks so far: `(name, worker, micros since engine
    /// start)`.
    pub fn marker_log(&self) -> Vec<(String, usize, u64)> {
        self.core
            .markers
            .lock()
            .iter()
            .map(|(name, worker, t)| (name.to_string(), *worker, *t))
            .collect()
    }

    /// Sum of the *live* workers' mailbox lengths (live backlog). Dead
    /// workers are skipped: their channels retain undeliverable messages
    /// that would otherwise read as permanent backlog.
    pub fn total_queue_len(&self) -> usize {
        let senders = self.core.mailboxes.senders.read();
        senders
            .iter()
            .enumerate()
            .filter(|(w, _)| self.core.mailboxes.alive[*w].load(Ordering::SeqCst))
            .map(|(_, tx)| tx.len())
            .sum()
    }

    /// A snapshot of the result board (the periodically dumped
    /// intermediate results), normalized to sum to 1.
    pub fn board_ranks(&self) -> BTreeMap<VertexId, f64> {
        let board = self.core.board.lock().clone();
        normalize(board)
    }

    /// A raw (unnormalized) snapshot of the result board.
    pub fn board_values(&self) -> BTreeMap<VertexId, f64> {
        self.core.board.lock().clone()
    }

    /// Blocks until all live mailboxes are empty and the total op count
    /// is stable across two polls, or the timeout elapses. Returns
    /// whether quiescence was reached. A crashed (un-restarted) worker
    /// does not prevent quiescence — its backlog is lost, not pending.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_ops = u64::MAX;
        loop {
            let queue = self.total_queue_len();
            let ops: u64 = (0..self.workers)
                .map(|w| self.hub.counter(&format!("worker-{w}.ops")).get())
                .sum();
            if queue == 0 && ops == last_ops {
                return true;
            }
            last_ops = ops;
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops the workers, joins them tolerantly, and merges final
    /// results. Crashed workers contribute no summary (their state died
    /// with them); a worker that *panicked* is contained and counted as a
    /// crash instead of poisoning the run.
    pub fn shutdown(self) -> EngineStats {
        self.core.stopping.store(true, Ordering::SeqCst);
        {
            let senders = self.core.mailboxes.senders.read();
            for tx in senders.iter() {
                let _ = tx.send(Msg::Stop);
            }
        }
        let handles: Vec<JoinHandle<Option<P>>> = {
            let mut guard = self.core.handles.lock();
            guard.drain(..).collect()
        };
        let mut ranks = BTreeMap::new();
        let mut final_adjacency: Adjacency = Vec::new();
        let digest_on = self.core.config.digest;
        for handle in handles {
            match handle.join() {
                Ok(Some(partition)) => {
                    for (id, p) in partition.summary() {
                        ranks.insert(id, p);
                    }
                    if digest_on {
                        final_adjacency.extend(partition.structure());
                    }
                }
                // Injected crash: state discarded by design.
                Ok(None) => {}
                // Contained panic: the run survives, the death is counted.
                Err(_) => self.core.counters.crashes.inc(),
            }
        }
        let events: u64 = (0..self.workers)
            .map(|w| self.hub.counter(&format!("worker-{w}.events")).get())
            .sum();
        let shares: u64 = (0..self.workers)
            .map(|w| self.hub.counter(&format!("worker-{w}.shares")).get())
            .sum();
        let digest = digest_on.then(|| {
            // Group the per-worker marker snapshots into windows, in
            // first-sighting order; the per-worker adjacencies of one
            // marker are disjoint, so concatenation is the union.
            let mut windows: Vec<WindowDigest> = Vec::new();
            for (name, adjacency) in self.core.snapshots.lock().drain(..) {
                match windows.iter_mut().find(|w| w.marker.as_str() == &*name) {
                    Some(window) => window.adjacency.extend(adjacency),
                    None => windows.push(WindowDigest {
                        marker: name.to_string(),
                        adjacency,
                    }),
                }
            }
            let mut digest = StateDigest {
                final_adjacency,
                windows,
                degradation: vec![
                    ("crashes".into(), self.core.counters.crashes.get()),
                    ("restarts".into(), self.core.counters.restarts.get()),
                    ("events_lost".into(), self.core.counters.events_lost.get()),
                    (
                        "events_replayed".into(),
                        self.core.counters.events_replayed.get(),
                    ),
                ],
            };
            digest.canonicalize();
            digest
        });
        EngineStats {
            events,
            shares,
            ranks,
            crashes: self.core.counters.crashes.get(),
            restarts: self.core.counters.restarts.get(),
            events_lost: self.core.counters.events_lost.get(),
            events_replayed: self.core.counters.events_replayed.get(),
            digest,
        }
    }

    /// Result values normalized to sum to 1 (helper for accuracy
    /// analyses of the rank program).
    pub fn normalized(ranks: &BTreeMap<VertexId, f64>) -> BTreeMap<VertexId, f64> {
        normalize(ranks.clone())
    }
}

/// The engine's [`WorkerSupervisor`]: kills and resurrects individual
/// workers. Obtained from [`Engine::supervisor`].
pub struct EngineSupervisor<P: Partition> {
    core: Arc<EngineCore<P>>,
}

impl<P: Partition> WorkerSupervisor for EngineSupervisor<P> {
    fn worker_count(&self) -> usize {
        self.core.config.workers
    }

    /// Enqueues a crash on the worker's mailbox. The kill lands behind
    /// the worker's current backlog — a deterministic position in its
    /// message stream — and the worker then discards its state and exits.
    fn inject_crash(&self, worker: usize) -> bool {
        if worker >= self.core.config.workers
            || self.core.stopping.load(Ordering::SeqCst)
            || !self.core.mailboxes.alive[worker].load(Ordering::SeqCst)
        {
            return false;
        }
        let senders = self.core.mailboxes.senders.read();
        senders[worker].send(Msg::Crash).is_ok()
    }

    /// Restarts a crashed worker (supervised mode only): waits briefly
    /// for the crash to land, then — with ingest write-locked out — spawns
    /// a fresh partition, replays the worker's share of the retained
    /// event log into its new mailbox, and swaps the sender in.
    fn restart_worker(&self, worker: usize) -> bool {
        let config = &self.core.config;
        if worker >= config.workers || !config.supervised {
            return false;
        }
        // The crash message travels through the worker's backlog; give it
        // time to land before declaring the restart impossible.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.core.mailboxes.alive[worker].load(Ordering::SeqCst) {
            if Instant::now() > deadline || self.core.stopping.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut senders = self.core.mailboxes.senders.write();
        if self.core.stopping.load(Ordering::SeqCst) {
            return false;
        }
        let (tx, rx) = unbounded();
        let workers = config.workers;
        let mut replayed = 0u64;
        {
            let retained = self.core.retained.lock();
            for (seq, event) in retained.iter() {
                match event.event() {
                    // The broadcast half of remote removals, re-delivered
                    // so the fresh partition strips dangling references.
                    GraphEvent::RemoveVertex { id } if owner(*id, workers) != worker => {
                        let _ = tx.send(Msg::Purge(*id));
                    }
                    e => {
                        if owner(route_target(e), workers) == worker {
                            let _ = tx.send(Msg::Event(event.clone(), *seq));
                            replayed += 1;
                        }
                    }
                }
            }
        }
        let handle = self.core.spawn_worker(worker, rx);
        senders[worker] = tx;
        self.core.mailboxes.alive[worker].store(true, Ordering::SeqCst);
        self.core.handles.lock().push(handle);
        self.core.counters.restarts.inc();
        self.core.counters.events_replayed.add(replayed);
        true
    }
}

fn normalize(mut ranks: BTreeMap<VertexId, f64>) -> BTreeMap<VertexId, f64> {
    let total: f64 = ranks.values().sum();
    if total > 0.0 {
        for v in ranks.values_mut() {
            *v /= total;
        }
    }
    ranks
}

struct WorkerCtx<M> {
    worker_id: usize,
    rx: Receiver<Msg<M>>,
    mailboxes: Arc<Mailboxes<M>>,
    board: ResultBoard,
    markers: MarkerLog,
    snapshots: SnapshotLog,
    started: Instant,
    config: EngineConfig,
    tracer_cell: TracerCell,
    queue_gauge: Gauge,
    ops: Counter,
    events: Counter,
    shares: Counter,
    busy: Counter,
    crashes: Counter,
    events_lost: Counter,
}

/// Runs one worker until `Stop` (returns the final partition), channel
/// disconnect (ditto), or `Crash` (marks the slot dead and returns `None`
/// — the partition state is deliberately lost, like a killed process).
fn worker_loop<P: Partition>(ctx: WorkerCtx<P::Msg>, mut partition: P) -> Option<P> {
    let workers = ctx.config.workers;
    let drain_batch = ctx.config.drain_batch.max(1);
    let mut outbox: Vec<(VertexId, P::Msg)> = Vec::new();
    let mut dirty: Vec<VertexId> = Vec::new();
    let mut processed: u64 = 0;
    let mut running = true;
    // Lazily acquired apply tracepoint: the thread outlives tracer
    // installation, so it polls the cell (one atomic load while empty).
    let mut trace_probe: Option<Probe> = None;

    while running {
        // Block for the first message, then opportunistically drain more.
        let Ok(first) = ctx.rx.recv() else {
            break;
        };
        ctx.queue_gauge.set(ctx.rx.len() as i64);
        let started = Instant::now();
        let mut batch = 1u64;
        let mut msg = first;
        loop {
            match msg {
                Msg::Event(event, seq) => {
                    busy_work(ctx.config.event_cost);
                    partition.apply_event_deferred(event.event(), &mut dirty);
                    // The owner-side half of vertex removal: strip the
                    // removed id from co-located out-lists too. Ingest
                    // only broadcasts Purge to *other* workers, so
                    // without this the surviving topology would depend
                    // on the worker count (and workers=1 would never
                    // purge at all) — breaking the serial-vs-sharded
                    // differential.
                    if let GraphEvent::RemoveVertex { id } = event.event() {
                        partition.purge(*id, &mut outbox);
                    }
                    ctx.events.inc();
                    if trace_probe.is_none() {
                        trace_probe = ctx.tracer_cell.probe(Stage::EngineApply);
                    }
                    if let Some(probe) = &trace_probe {
                        // Workers process out of stream order, so the
                        // stamp carries the global ingest sequence.
                        probe.stamp_seq(seq);
                    }
                }
                Msg::Purge(id) => {
                    partition.purge(id, &mut outbox);
                }
                Msg::Compute(target, payload) => {
                    busy_work(ctx.config.share_cost);
                    partition.receive_deferred(target, payload, &mut dirty);
                    ctx.shares.inc();
                }
                Msg::Marker(name, ack) => {
                    let t = ctx.started.elapsed().as_micros() as u64;
                    if ctx.config.digest {
                        // The mailbox FIFO-orders this marker behind
                        // exactly the pre-marker events routed here, so
                        // the snapshot is this worker's share of the
                        // marker's consistent cut.
                        ctx.snapshots
                            .lock()
                            .push((name.clone(), partition.structure()));
                    }
                    ctx.markers.lock().push((name, ctx.worker_id, t));
                    if let Some(ack) = ack {
                        let _ = ack.send(());
                    }
                }
                Msg::Crash => {
                    // Die like a killed process: no final board publish,
                    // no summary, queued messages abandoned. The alive
                    // flag tells the rest of the engine (and a waiting
                    // supervisor) that this slot is vacant.
                    ctx.mailboxes.alive[ctx.worker_id].store(false, Ordering::SeqCst);
                    ctx.crashes.inc();
                    ctx.queue_gauge.set(0);
                    return None;
                }
                Msg::Stop => {
                    running = false;
                    break;
                }
            }
            if batch as usize >= drain_batch {
                break;
            }
            match ctx.rx.try_recv() {
                Ok(next) => {
                    msg = next;
                    batch += 1;
                }
                Err(_) => break,
            }
        }
        // Coalesced program work for the whole batch.
        partition.flush_dirty(&dirty, &mut outbox);
        dirty.clear();

        ctx.busy.add(started.elapsed().as_micros() as u64);
        ctx.ops.add(batch);
        processed += batch;

        // Route produced messages; self-targets loop through the own
        // mailbox too — computation and mutation genuinely share the
        // queue. Shares owed to a dead worker are counted lost (they
        // degrade result accuracy until a restart replays the events
        // that would regenerate them).
        if !outbox.is_empty() {
            let senders = ctx.mailboxes.senders.read();
            for (target, payload) in outbox.drain(..) {
                if senders[owner(target, workers)]
                    .send(Msg::Compute(target, payload))
                    .is_err()
                {
                    ctx.events_lost.inc();
                }
            }
        }

        if processed % ctx.config.board_refresh_every.max(1) < batch {
            let mut board = ctx.board.lock();
            for (id, p) in partition.summary() {
                board.insert(id, p);
            }
        }
    }
    // Final board publish so late readers see the end state.
    {
        let mut board = ctx.board.lock();
        for (id, p) in partition.summary() {
            board.insert(id, p);
        }
    }
    Some(partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    #[test]
    fn processes_stream_and_converges() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(EngineConfig::default(), &hub);
        for i in 0..50 {
            engine.ingest(add_v(i));
        }
        for i in 0..50 {
            engine.ingest(add_e(i, (i + 1) % 50));
        }
        assert!(engine.quiesce(Duration::from_secs(10)));
        let stats = engine.shutdown();
        assert_eq!(stats.events, 100);
        assert!(stats.shares > 0);
        assert_eq!(stats.ranks.len(), 50);
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.events_lost, 0);
        // Symmetric ring: normalized ranks near-uniform.
        let norm = TideGraph::normalized(&stats.ranks);
        for (&id, &p) in &norm {
            assert!((p - 0.02).abs() < 0.005, "vertex {id}: {p}");
        }
    }

    #[test]
    fn ranks_match_batch_pagerank_shape() {
        use gt_algorithms::pagerank::{pagerank, PageRankConfig};
        use gt_graph::{CsrSnapshot, EvolvingGraph};

        // A preferential-attachment graph; compare top-5 sets.
        let stream = gt_graph::builders::BarabasiAlbert {
            n: 150,
            m0: 5,
            m: 2,
            seed: 77,
        }
        .generate();
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                rank: RankParams {
                    epsilon: 1e-5,
                    ..Default::default()
                },
                ..Default::default()
            },
            &hub,
        );
        let mut graph = EvolvingGraph::new();
        for event in stream.graph_events() {
            engine.ingest(event.clone());
            graph.apply(event).unwrap();
        }
        assert!(engine.quiesce(Duration::from_secs(30)));
        let stats = engine.shutdown();
        let online = TideGraph::normalized(&stats.ranks);

        let csr = CsrSnapshot::from_graph(&graph);
        let exact = pagerank(&csr, &PageRankConfig::default());
        let exact_map: BTreeMap<VertexId, f64> = csr
            .indices()
            .map(|i| (csr.id_of(i), exact.ranks[i as usize]))
            .collect();

        let overlap = gt_overlap(&online, &exact_map, 5);
        assert!(overlap >= 0.4, "top-5 overlap {overlap}");
    }

    /// Local copy of the top-k Jaccard overlap to avoid a dev-dependency
    /// cycle with gt-analysis.
    fn gt_overlap(a: &BTreeMap<VertexId, f64>, b: &BTreeMap<VertexId, f64>, k: usize) -> f64 {
        let top = |m: &BTreeMap<VertexId, f64>| -> std::collections::BTreeSet<VertexId> {
            let mut v: Vec<(VertexId, f64)> = m.iter().map(|(i, &p)| (*i, p)).collect();
            v.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then(x.0.cmp(&y.0)));
            v.into_iter().take(k).map(|(i, _)| i).collect()
        };
        let (sa, sb) = (top(a), top(b));
        sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64
    }

    #[test]
    fn backlog_grows_under_load_and_drains() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                event_cost: Duration::from_micros(500),
                share_cost: Duration::from_micros(100),
                ..Default::default()
            },
            &hub,
        );
        // Burst far faster than 2 workers × 500µs can absorb.
        for i in 0..2_000 {
            engine.ingest(add_v(i));
        }
        let backlog = engine.total_queue_len();
        assert!(backlog > 100, "backlog {backlog}");
        assert!(engine.quiesce(Duration::from_secs(30)));
        assert_eq!(engine.total_queue_len(), 0);
        let stats = engine.shutdown();
        assert_eq!(stats.events, 2_000);
    }

    #[test]
    fn board_publishes_intermediate_results() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                board_refresh_every: 8,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..100 {
            engine.ingest(add_v(i));
        }
        engine.quiesce(Duration::from_secs(10));
        let board = engine.board_ranks();
        assert!(!board.is_empty());
        let total: f64 = board.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        engine.shutdown();
    }

    #[test]
    fn vertex_removal_broadcast_strips_remote_edges() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(EngineConfig::default(), &hub);
        for i in 0..10 {
            engine.ingest(add_v(i));
        }
        for i in 1..10 {
            engine.ingest(add_e(i, 0));
        }
        engine.quiesce(Duration::from_secs(10));
        engine.ingest(GraphEvent::RemoveVertex { id: VertexId(0) });
        engine.quiesce(Duration::from_secs(10));
        let stats = engine.shutdown();
        assert!(!stats.ranks.contains_key(&VertexId(0)));
        assert_eq!(stats.ranks.len(), 9);
    }

    #[test]
    fn markers_are_processed_by_every_worker() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 3,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..20 {
            engine.ingest(add_v(i));
        }
        let enqueued_at = engine.now_micros();
        engine.ingest_marker("wm-0");
        engine.quiesce(Duration::from_secs(10));
        let log = engine.marker_log();
        assert_eq!(log.len(), 3, "one record per worker: {log:?}");
        let workers: std::collections::BTreeSet<usize> = log.iter().map(|(_, w, _)| *w).collect();
        assert_eq!(workers.len(), 3);
        for (name, _, t) in &log {
            assert_eq!(name, "wm-0");
            assert!(*t >= enqueued_at, "processed before enqueue: {t}");
        }
        engine.shutdown();
    }

    #[test]
    fn marker_latency_grows_with_backlog() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                event_cost: Duration::from_micros(400),
                ..Default::default()
            },
            &hub,
        );
        // Marker on an idle engine: near-immediate.
        let t0 = engine.now_micros();
        engine.ingest_marker("idle");
        engine.quiesce(Duration::from_secs(10));
        let idle_latency = engine
            .marker_log()
            .iter()
            .map(|(_, _, t)| t - t0)
            .max()
            .unwrap();

        // Marker behind a burst of expensive events: must wait.
        for i in 0..1_000 {
            engine.ingest(add_v(i));
        }
        let t1 = engine.now_micros();
        engine.ingest_marker("busy");
        engine.quiesce(Duration::from_secs(60));
        let busy_latency = engine
            .marker_log()
            .iter()
            .filter(|(name, _, _)| name == "busy")
            .map(|(_, _, t)| t - t1)
            .max()
            .unwrap();
        assert!(
            busy_latency > idle_latency * 5,
            "busy {busy_latency}µs vs idle {idle_latency}µs"
        );
        engine.shutdown();
    }

    #[test]
    fn per_worker_metrics_registered() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 3,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..30 {
            engine.ingest(add_v(i));
        }
        engine.quiesce(Duration::from_secs(10));
        engine.shutdown();
        let total_ops: u64 = (0..3)
            .map(|w| hub.counter(&format!("worker-{w}.ops")).get())
            .sum();
        assert!(total_ops >= 30);
    }

    /// Which worker owns a vertex id — helper for crash tests that need
    /// to know where events land.
    fn owner_of(id: u64, workers: usize) -> usize {
        owner(VertexId(id), workers)
    }

    #[test]
    fn crash_is_contained_without_supervision() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..100 {
            engine.ingest(add_v(i));
        }
        assert!(engine.quiesce(Duration::from_secs(10)));

        let supervisor = engine.supervisor();
        assert_eq!(supervisor.worker_count(), 2);
        assert!(supervisor.inject_crash(0));
        // Unsupervised: restart must refuse.
        assert!(!supervisor.restart_worker(0));
        // Crashing a dead worker must refuse too (wait for the kill).
        let deadline = Instant::now() + Duration::from_secs(5);
        while supervisor.inject_crash(0) {
            assert!(Instant::now() < deadline, "worker 0 never died");
            std::thread::sleep(Duration::from_millis(1));
        }

        // The engine keeps ingesting; events owned by the dead worker
        // are counted lost, the rest still process.
        for i in 100..200 {
            engine.ingest(add_v(i));
        }
        // Quiesce must still succeed: dead backlog is lost, not pending.
        assert!(engine.quiesce(Duration::from_secs(10)));
        let stats = engine.shutdown();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 0);
        let lost_vertices = (100..200).filter(|&i| owner_of(i, 2) == 0).count();
        assert!(lost_vertices > 0, "hash routed nothing to worker 0");
        assert!(
            stats.events_lost >= lost_vertices as u64,
            "lost {} < routed-to-dead {}",
            stats.events_lost,
            lost_vertices
        );
        // Survivor's vertices are all present.
        for i in 100..200 {
            if owner_of(i, 2) == 1 {
                assert!(stats.ranks.contains_key(&VertexId(i)));
            }
        }
    }

    #[test]
    fn supervised_restart_rebuilds_worker_state_by_replay() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                supervised: true,
                ..Default::default()
            },
            &hub,
        );
        for i in 0..60 {
            engine.ingest(add_v(i));
        }
        for i in 0..60 {
            engine.ingest(add_e(i, (i + 1) % 60));
        }
        assert!(engine.quiesce(Duration::from_secs(10)));

        let supervisor = engine.supervisor();
        assert!(supervisor.inject_crash(1));
        assert!(supervisor.restart_worker(1));

        // Post-restart events must land normally again.
        for i in 60..80 {
            engine.ingest(add_v(i));
        }
        assert!(engine.quiesce(Duration::from_secs(30)));
        let stats = engine.shutdown();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert!(stats.events_replayed > 0);
        // Replay rebuilt the crashed worker's vertices: every vertex of
        // the run is present in the final summary.
        assert_eq!(stats.ranks.len(), 80, "missing vertices after restart");
    }

    #[test]
    fn crash_mid_backlog_never_hangs() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                event_cost: Duration::from_micros(200),
                supervised: true,
                ..Default::default()
            },
            &hub,
        );
        // Build a backlog, then crash while it drains.
        for i in 0..2_000 {
            engine.ingest(add_v(i));
        }
        let supervisor = engine.supervisor();
        assert!(supervisor.inject_crash(0));
        assert!(supervisor.restart_worker(0));
        assert!(engine.quiesce(Duration::from_secs(60)));
        let stats = engine.shutdown();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.ranks.len(), 2_000);
    }

    #[test]
    fn restart_out_of_range_or_alive_refuses() {
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers: 2,
                supervised: true,
                ..Default::default()
            },
            &hub,
        );
        let supervisor = engine.supervisor();
        assert!(!supervisor.inject_crash(7));
        assert!(!supervisor.restart_worker(7));
        engine.shutdown();
    }
}

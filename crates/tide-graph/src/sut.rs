//! The [`SystemUnderTest`] adapter for the engine — everything the harness
//! needs to spawn, feed, observe, and stop a `tide-graph` by name.

use std::any::Any;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use gt_metrics::MetricsHub;
use gt_replayer::EventSink;
use gt_sut::{EvaluationLevel, StateDigest, SutOptions, SutRegistry, SutReport, SystemUnderTest};
use gt_trace::{Stage, Tracer};

use crate::connector::EngineConnector;
use crate::engine::{EngineConfig, EngineStats, TideGraph};
use crate::rank::RankParams;

/// The registry name of this platform.
pub const SUT_NAME: &str = "tide-graph";

/// The registry name of the explicitly-sharded variant: the same engine,
/// but `shards` (default 4) names the worker count — the A/B counterpart
/// of a `shards=1` serial baseline in the differential harness.
pub const SHARDED_SUT_NAME: &str = "tide-graph-sharded";

/// A running engine behind the [`SystemUnderTest`] boundary.
///
/// Recognized [`SutOptions`]:
///
/// | option | meaning | default |
/// |---|---|---|
/// | `workers` | worker threads | 4 |
/// | `shards` | alias for `workers` (typed: 1..=[`gt_sut::MAX_SHARDS`]); takes precedence | — |
/// | `alpha` | teleport probability of the rank program | 0.15 |
/// | `epsilon` | push threshold of the rank program | 1e-4 |
/// | `reseed` | re-seeded mass fraction on topology change | 1.0 |
/// | `event_cost_us` | simulated cost per mutation event, µs | 0 |
/// | `share_cost_us` | simulated cost per computational message, µs | 0 |
/// | `board_refresh_every` | result-board publish period (messages) | 256 |
/// | `drain_batch` | mailbox messages drained per round | 64 |
/// | `supervised` | retain events so crashed workers can be restarted (`1` = on) | 0 |
/// | `digest` | capture a [`StateDigest`] at shutdown (`1` = on) | 0 |
pub struct TideGraphSut {
    engine: Option<Arc<TideGraph>>,
    hub: MetricsHub,
    name: &'static str,
    tracer: Option<Tracer>,
}

impl TideGraphSut {
    /// Spawns an engine from the option bag (unset options keep the
    /// [`EngineConfig`] defaults).
    pub fn start(options: &SutOptions) -> io::Result<Self> {
        Self::start_named(options, SUT_NAME)
    }

    /// Spawns the explicitly-sharded variant: identical engine, reported
    /// as [`SHARDED_SUT_NAME`], worker count from `shards` (default 4).
    pub fn start_sharded(options: &SutOptions) -> io::Result<Self> {
        Self::start_named(options, SHARDED_SUT_NAME)
    }

    fn start_named(options: &SutOptions, name: &'static str) -> io::Result<Self> {
        let defaults = EngineConfig::default();
        let rank_defaults = RankParams::default();
        // The typed shard getter (rejects 0 / non-numeric / absurd
        // counts) takes precedence over the legacy free-form `workers`.
        let workers = match options.get_shards()? {
            Some(shards) => shards,
            None => options.get_usize("workers")?.unwrap_or(defaults.workers),
        };
        let config = EngineConfig {
            workers,
            rank: RankParams {
                alpha: options.get_f64("alpha")?.unwrap_or(rank_defaults.alpha),
                epsilon: options.get_f64("epsilon")?.unwrap_or(rank_defaults.epsilon),
                reseed: options.get_f64("reseed")?.unwrap_or(rank_defaults.reseed),
            },
            event_cost: options
                .get_duration_micros("event_cost_us")?
                .unwrap_or(defaults.event_cost),
            share_cost: options
                .get_duration_micros("share_cost_us")?
                .unwrap_or(defaults.share_cost),
            board_refresh_every: options
                .get_u64("board_refresh_every")?
                .unwrap_or(defaults.board_refresh_every),
            drain_batch: options
                .get_usize("drain_batch")?
                .unwrap_or(defaults.drain_batch),
            supervised: options.get_u64("supervised")?.unwrap_or(0) != 0,
            digest: options.get_u64("digest")?.unwrap_or(0) != 0,
        };
        if config.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "option `workers` must be positive",
            ));
        }
        let hub = MetricsHub::new();
        let engine = Arc::new(TideGraph::start(config, &hub));
        Ok(TideGraphSut {
            engine: Some(engine),
            hub,
            name,
            tracer: None,
        })
    }

    /// The running engine (board snapshots, marker log, backlog probes).
    pub fn engine(&self) -> &Arc<TideGraph> {
        self.engine.as_ref().expect("engine is running")
    }

    /// Stops the engine and returns its full statistics — the typed
    /// escape hatch for experiments that need [`EngineStats::ranks`]
    /// rather than the flattened [`SutReport`].
    ///
    /// # Panics
    /// If a connector (or any other clone of the engine handle) is still
    /// alive: drop those first so the engine can be joined.
    pub fn shutdown_engine(&mut self) -> EngineStats {
        let engine = self.engine.take().expect("engine is running");
        let engine = Arc::try_unwrap(engine)
            .ok()
            .expect("drop all connectors before shutting the engine down");
        engine.shutdown()
    }
}

impl SystemUnderTest for TideGraphSut {
    fn name(&self) -> &str {
        self.name
    }

    fn level(&self) -> EvaluationLevel {
        // Instrumented source: per-worker queue/ops/busy metrics in the
        // hub, plus the in-source result board.
        EvaluationLevel::Level2
    }

    fn connector(&mut self) -> io::Result<Box<dyn EventSink + Send>> {
        let mut connector = EngineConnector::new(Arc::clone(self.engine()));
        if let Some(tracer) = &self.tracer {
            connector = connector.with_trace_probe(tracer.probe(Stage::ConnectorRecv));
        }
        Ok(Box::new(connector))
    }

    fn hub(&self) -> Option<&MetricsHub> {
        Some(&self.hub)
    }

    fn install_tracer(&mut self, tracer: &Tracer) {
        self.engine().tracer_cell().install(tracer);
        self.tracer = Some(tracer.clone());
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    fn supervisor(&self) -> Option<Arc<dyn gt_sut::WorkerSupervisor>> {
        // The supervisor shares the engine's internals, not the engine
        // handle itself, so `shutdown_engine`'s sole-ownership unwrap
        // still succeeds with supervisors outstanding.
        Some(self.engine().supervisor())
    }

    fn quiesce(&mut self, timeout: Duration) -> bool {
        // The mailboxes are unbounded, so the stream can end long before
        // the workers have drained — Figure 3d's pathology. Wait for the
        // backlog to clear before reading final results.
        self.engine().quiesce(timeout)
    }

    fn shutdown(mut self: Box<Self>) -> SutReport {
        let name = self.name;
        let stats = self.shutdown_engine();
        report_from_stats(name, &stats)
    }

    fn shutdown_digest(mut self: Box<Self>) -> (SutReport, Option<StateDigest>) {
        let name = self.name;
        let mut stats = self.shutdown_engine();
        let digest = stats.digest.take();
        (report_from_stats(name, &stats), digest)
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

fn report_from_stats(name: &str, stats: &EngineStats) -> SutReport {
    SutReport::new(name)
        .with("events", stats.events as f64)
        .with("shares", stats.shares as f64)
        .with("vertices", stats.ranks.len() as f64)
        .with("crashes", stats.crashes as f64)
        .with("restarts", stats.restarts as f64)
        .with("events_lost", stats.events_lost as f64)
        .with("events_replayed", stats.events_replayed as f64)
}

/// Registers this platform under [`SUT_NAME`] and its explicitly-sharded
/// variant under [`SHARDED_SUT_NAME`].
pub fn register(registry: &mut SutRegistry) {
    registry.register(SUT_NAME, |options| {
        Ok(Box::new(TideGraphSut::start(options)?) as Box<dyn SystemUnderTest>)
    });
    registry.register(SHARDED_SUT_NAME, |options| {
        Ok(Box::new(TideGraphSut::start_sharded(options)?) as Box<dyn SystemUnderTest>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;

    #[test]
    fn registry_run_processes_events() {
        let mut registry = SutRegistry::new();
        register(&mut registry);
        let options = SutOptions::new().set("workers", 2).set("epsilon", 1e-3);
        let mut sut = registry.start(SUT_NAME, &options).unwrap();
        assert_eq!(sut.name(), SUT_NAME);
        assert!(sut.level().includes(EvaluationLevel::Level2));
        let mut connector = sut.connector().unwrap();
        let entries: Vec<SharedEntry> = (0..40u64)
            .map(|i| {
                SharedEntry::new(StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
            })
            .collect();
        connector.send_batch(&entries).unwrap();
        connector.close().unwrap();
        assert!(sut.quiesce(Duration::from_secs(10)));
        drop(connector);
        let report = sut.shutdown();
        assert_eq!(report.get("events"), Some(40.0));
        assert_eq!(report.get("vertices"), Some(40.0));
    }

    #[test]
    fn installed_tracer_matches_connector_to_apply_pairs() {
        use gt_trace::TraceConfig;

        let options = SutOptions::new().set("workers", 3);
        let sut = TideGraphSut::start(&options).unwrap();
        let clock: Arc<dyn gt_metrics::Clock> = Arc::new(gt_metrics::WallClock::start());
        let trace_hub = MetricsHub::new();
        let tracer = Tracer::new(TraceConfig::default().sampling(1), clock, &trace_hub);
        let mut boxed: Box<dyn SystemUnderTest> = Box::new(sut);
        boxed.install_tracer(&tracer);
        assert!(boxed.tracer().is_some());
        let mut connector = boxed.connector().unwrap();
        let entries: Vec<SharedEntry> = (0..30u64)
            .map(|i| {
                SharedEntry::new(StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                }))
            })
            .collect();
        connector.send_batch(&entries).unwrap();
        assert!(boxed.quiesce(Duration::from_secs(10)));
        drop(connector);
        let report = boxed.shutdown();
        assert_eq!(report.get("events"), Some(30.0));
        let trace = tracer.stop();
        let pairs = trace
            .records
            .iter()
            .filter(|r| r.metric == "connector_to_apply_micros")
            .count();
        assert_eq!(pairs, 30, "matched {} of 30 events", pairs);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn typed_shutdown_returns_ranks() {
        let mut sut = TideGraphSut::start(&SutOptions::new().set("workers", 1)).unwrap();
        sut.engine().ingest(GraphEvent::AddVertex {
            id: VertexId(7),
            state: State::empty(),
        });
        assert!(sut.engine().quiesce(Duration::from_secs(10)));
        let stats = sut.shutdown_engine();
        assert!(stats.ranks.contains_key(&VertexId(7)));
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(TideGraphSut::start(&SutOptions::new().set("workers", 0)).is_err());
    }
}

//! The online influence rank: residual forward-push.
//!
//! Every vertex holds a rank estimate `p` and a residual `res` of mass not
//! yet propagated. New vertices are seeded with one unit of source mass.
//! Whenever `res` exceeds the push threshold ε, the vertex *pushes*:
//!
//! ```text
//! p   += α · res
//! for each out-neighbor w:  send share (1 − α) · res / outdeg  to  w
//! res  = 0
//! ```
//!
//! With uniform seeding this converges to the (unnormalized) PageRank
//! vector with damping `1 − α` on a static graph; on an evolving graph the
//! current `p` is the approximation whose accuracy depends on how far the
//! computation lags the mutations — the paper's latency/accuracy
//! trade-off. Topology changes *re-seed* part of the affected vertex's
//! settled mass back into its residual so it re-propagates through the new
//! topology.
//!
//! Dangling vertices absorb their own push mass (no out-neighbors to send
//! to). Comparisons against exact PageRank therefore normalize both
//! vectors first.

use std::collections::HashMap;

use gt_core::prelude::*;
use gt_graph::HybridAdjacency;

/// Per-vertex rank state plus local out-adjacency at the owning worker.
#[derive(Debug, Clone, Default)]
pub struct VertexState {
    /// Settled rank mass.
    pub p: f64,
    /// Unpropagated residual mass.
    pub res: f64,
    /// Out-neighbors (targets may live on other workers), stored in the
    /// degree-adaptive hybrid representation.
    pub out: HybridAdjacency<()>,
}

/// Tuning parameters of the push computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankParams {
    /// Teleport probability α (damping is `1 − α`).
    pub alpha: f64,
    /// Push threshold ε: residuals below it stay parked.
    pub epsilon: f64,
    /// Fraction of settled mass re-seeded into the residual when a
    /// vertex's out-topology changes.
    pub reseed: f64,
}

impl Default for RankParams {
    fn default() -> Self {
        RankParams {
            alpha: 0.15,
            // One vertex seeds 1.0 of mass, so 1e-3 parks residuals below
            // 0.1% of a single seed — ample for top-k rankings while
            // keeping push cascades short. Lower it for high-precision
            // convergence studies.
            epsilon: 1e-3,
            reseed: 0.5,
        }
    }
}

/// One worker's partition of the rank computation.
#[derive(Debug, Default)]
pub struct RankPartition {
    /// Vertex states owned by this worker.
    pub vertices: HashMap<VertexId, VertexState>,
    params: RankParamsInner,
}

#[derive(Debug, Clone, Copy, Default)]
struct RankParamsInner(RankParams);

/// A pending outbound share produced by a push.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Share {
    /// Receiving vertex.
    pub target: VertexId,
    /// Mass transferred.
    pub mass: f64,
}

impl RankPartition {
    /// A partition with the given parameters.
    pub fn new(params: RankParams) -> Self {
        RankPartition {
            vertices: HashMap::new(),
            params: RankParamsInner(params),
        }
    }

    fn params(&self) -> RankParams {
        self.params.0
    }

    /// Handles a locally-owned graph event; returns the shares to route.
    /// Events referencing unknown local vertices are ignored (lenient).
    pub fn apply_event(&mut self, event: &GraphEvent, out: &mut Vec<Share>) {
        let mut dirty = Vec::new();
        self.apply_event_deferred(event, &mut dirty);
        self.flush_dirty(&dirty, out);
    }

    /// Like [`Self::apply_event`], but defers pushing: affected vertices
    /// are appended to `dirty` instead. Workers use this to coalesce the
    /// pushes of a whole mailbox batch — fan-in at hubs then triggers one
    /// push instead of one per message.
    pub fn apply_event_deferred(&mut self, event: &GraphEvent, dirty: &mut Vec<VertexId>) {
        match event {
            GraphEvent::AddVertex { id, .. } => {
                let state = self.vertices.entry(*id).or_default();
                // Seed one unit of source mass for a genuinely new vertex.
                if state.p == 0.0 && state.res == 0.0 {
                    state.res = 1.0;
                }
                dirty.push(*id);
            }
            GraphEvent::RemoveVertex { id } => {
                self.vertices.remove(id);
            }
            GraphEvent::AddEdge { id, .. } => {
                if id.is_self_loop() {
                    return;
                }
                let Some(state) = self.vertices.get_mut(&id.src) else {
                    return;
                };
                if state.out.insert(id.dst, ()).is_none() {
                    self.reseed(id.src);
                    dirty.push(id.src);
                }
            }
            GraphEvent::RemoveEdge { id } => {
                let Some(state) = self.vertices.get_mut(&id.src) else {
                    return;
                };
                if state.out.remove(id.dst).is_some() {
                    self.reseed(id.src);
                    dirty.push(id.src);
                }
            }
            GraphEvent::UpdateVertex { .. } | GraphEvent::UpdateEdge { .. } => {}
        }
    }

    /// Strips a removed (possibly remote) vertex from local out-lists —
    /// the broadcast half of vertex removal.
    pub fn purge_edges_to(&mut self, removed: VertexId, out: &mut Vec<Share>) {
        let affected: Vec<VertexId> = self
            .vertices
            .iter()
            .filter(|(_, s)| s.out.contains(removed))
            .map(|(id, _)| *id)
            .collect();
        for id in &affected {
            if let Some(state) = self.vertices.get_mut(id) {
                state.out.remove(removed);
            }
            self.reseed(*id);
        }
        self.flush_dirty(&affected, out);
    }

    /// Handles an incoming share; returns follow-up shares.
    pub fn receive_share(&mut self, share: Share, out: &mut Vec<Share>) {
        let mut dirty = Vec::new();
        self.receive_share_deferred(share, &mut dirty);
        self.flush_dirty(&dirty, out);
    }

    /// Deferred variant of [`Self::receive_share`].
    pub fn receive_share_deferred(&mut self, share: Share, dirty: &mut Vec<VertexId>) {
        let Some(state) = self.vertices.get_mut(&share.target) else {
            return; // target vanished; drop the mass
        };
        state.res += share.mass;
        dirty.push(share.target);
    }

    /// Pushes every dirty vertex whose residual crosses ε. Duplicates in
    /// `dirty` are harmless (the second push sees a zero residual).
    pub fn flush_dirty(&mut self, dirty: &[VertexId], out: &mut Vec<Share>) {
        for id in dirty {
            self.maybe_push(*id, out);
        }
    }

    /// Moves a fraction of settled mass back into the residual so it
    /// re-propagates through changed topology.
    fn reseed(&mut self, id: VertexId) {
        let reseed = self.params().reseed;
        if let Some(state) = self.vertices.get_mut(&id) {
            let moved = state.p * reseed;
            state.p -= moved;
            state.res += moved;
        }
    }

    /// Pushes if the residual crosses ε; appends outbound shares.
    fn maybe_push(&mut self, id: VertexId, out: &mut Vec<Share>) {
        let params = self.params();
        let Some(state) = self.vertices.get_mut(&id) else {
            return;
        };
        if state.res < params.epsilon {
            return;
        }
        let res = state.res;
        state.res = 0.0;
        if state.out.is_empty() {
            // Dangling: absorb everything.
            state.p += res;
            return;
        }
        state.p += params.alpha * res;
        let share = (1.0 - params.alpha) * res / state.out.len() as f64;
        for target in state.out.keys() {
            out.push(Share {
                target,
                mass: share,
            });
        }
    }

    /// Current `(id, p)` pairs of this partition.
    pub fn ranks(&self) -> Vec<(VertexId, f64)> {
        self.vertices.iter().map(|(id, s)| (*id, s.p)).collect()
    }

    fn convert_out(shares: Vec<Share>, out: &mut Vec<(VertexId, f64)>) {
        out.extend(shares.into_iter().map(|s| (s.target, s.mass)));
    }

    /// Total residual mass still parked locally (unconverged work).
    pub fn residual_mass(&self) -> f64 {
        self.vertices.values().map(|s| s.res).sum()
    }
}

impl crate::program::Partition for RankPartition {
    /// The transferred rank mass.
    type Msg = f64;

    fn apply_event_deferred(&mut self, event: &GraphEvent, dirty: &mut Vec<VertexId>) {
        RankPartition::apply_event_deferred(self, event, dirty);
    }

    fn receive_deferred(&mut self, target: VertexId, msg: f64, dirty: &mut Vec<VertexId>) {
        RankPartition::receive_share_deferred(self, Share { target, mass: msg }, dirty);
    }

    fn flush_dirty(&mut self, dirty: &[VertexId], out: &mut Vec<(VertexId, f64)>) {
        let mut shares = Vec::new();
        RankPartition::flush_dirty(self, dirty, &mut shares);
        Self::convert_out(shares, out);
    }

    fn purge(&mut self, removed: VertexId, out: &mut Vec<(VertexId, f64)>) {
        let mut shares = Vec::new();
        RankPartition::purge_edges_to(self, removed, &mut shares);
        Self::convert_out(shares, out);
    }

    fn summary(&self) -> Vec<(VertexId, f64)> {
        self.ranks()
    }

    fn structure(&self) -> Vec<(u64, Vec<(u64, u64)>)> {
        // The rank program is unweighted: edges digest as weight 1.0.
        self.vertices
            .iter()
            .map(|(id, s)| {
                (
                    id.0,
                    s.out.keys().map(|d| (d.0, 1.0f64.to_bits())).collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-partition harness: routes shares back into the same
    /// partition until quiescent.
    fn run_to_fixpoint(partition: &mut RankPartition, mut pending: Vec<Share>) {
        let mut budget = 1_000_000;
        while let Some(share) = pending.pop() {
            let mut out = Vec::new();
            partition.receive_share(share, &mut out);
            pending.extend(out);
            budget -= 1;
            assert!(budget > 0, "push cascade did not terminate");
        }
    }

    fn feed(partition: &mut RankPartition, events: &[GraphEvent]) {
        let mut pending = Vec::new();
        for e in events {
            let mut out = Vec::new();
            partition.apply_event(e, &mut out);
            pending.extend(out);
        }
        run_to_fixpoint(partition, pending);
    }

    fn add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    fn normalized(partition: &RankPartition) -> std::collections::BTreeMap<VertexId, f64> {
        let ranks = partition.ranks();
        let total: f64 = ranks.iter().map(|(_, p)| p).sum();
        ranks.into_iter().map(|(id, p)| (id, p / total)).collect()
    }

    #[test]
    fn isolated_vertices_absorb_their_seed() {
        let mut partition = RankPartition::new(RankParams::default());
        feed(&mut partition, &[add_v(1), add_v(2)]);
        let n = normalized(&partition);
        assert!((n[&VertexId(1)] - 0.5).abs() < 1e-9);
        assert!(partition.residual_mass() < 1e-9);
    }

    #[test]
    fn hub_collects_rank() {
        // Spokes 1..=10 all point at 0.
        let mut events: Vec<GraphEvent> = (0..=10).map(add_v).collect();
        events.extend((1..=10).map(|i| add_e(i, 0)));
        let mut partition = RankPartition::new(RankParams::default());
        feed(&mut partition, &events);
        let n = normalized(&partition);
        let hub = n[&VertexId(0)];
        let spoke = n[&VertexId(3)];
        assert!(hub > spoke * 5.0, "hub {hub} vs spoke {spoke}");
    }

    #[test]
    fn converges_close_to_pagerank_on_ring() {
        // Symmetric ring: normalized ranks must be ~uniform.
        let n = 10u64;
        let mut events: Vec<GraphEvent> = (0..n).map(add_v).collect();
        events.extend((0..n).map(|i| add_e(i, (i + 1) % n)));
        let mut partition = RankPartition::new(RankParams {
            epsilon: 1e-7,
            ..Default::default()
        });
        feed(&mut partition, &events);
        let norm = normalized(&partition);
        for (&id, &p) in &norm {
            assert!((p - 0.1).abs() < 0.01, "vertex {id}: {p}");
        }
    }

    #[test]
    fn reseed_repropagates_after_edge_change() {
        let mut partition = RankPartition::new(RankParams {
            epsilon: 1e-7,
            ..Default::default()
        });
        feed(&mut partition, &[add_v(0), add_v(1), add_v(2), add_e(0, 1)]);
        let p2_before = partition.vertices[&VertexId(2)].p;
        let p0_before = partition.vertices[&VertexId(0)].p;
        // New edge 0 -> 2: part of 0's settled mass re-seeds and now flows
        // to 2 as well.
        feed(&mut partition, &[add_e(0, 2)]);
        let p2_after = partition.vertices[&VertexId(2)].p;
        assert!(p2_after > p2_before, "2 gained no mass: {p2_after}");
        // 0 re-seeded half its mass and settled only α of it back.
        let p0_after = partition.vertices[&VertexId(0)].p;
        assert!(p0_after < p0_before, "0 kept its mass: {p0_after}");
        assert!(partition.residual_mass() < 1e-6);
    }

    #[test]
    fn vertex_removal_drops_mass_and_purge_strips_edges() {
        let mut partition = RankPartition::new(RankParams::default());
        feed(&mut partition, &[add_v(0), add_v(1), add_e(0, 1)]);
        partition.apply_event(
            &GraphEvent::RemoveVertex { id: VertexId(1) },
            &mut Vec::new(),
        );
        let mut out = Vec::new();
        partition.purge_edges_to(VertexId(1), &mut out);
        run_to_fixpoint(&mut partition, out);
        assert!(!partition.vertices.contains_key(&VertexId(1)));
        assert!(partition
            .vertices
            .get(&VertexId(0))
            .is_some_and(|s| s.out.is_empty()));
    }

    #[test]
    fn shares_to_unknown_targets_are_dropped() {
        let mut partition = RankPartition::new(RankParams::default());
        let mut out = Vec::new();
        partition.receive_share(
            Share {
                target: VertexId(99),
                mass: 1.0,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert!(partition.ranks().is_empty());
    }

    #[test]
    fn duplicate_edges_do_not_double_out_list() {
        let mut partition = RankPartition::new(RankParams::default());
        feed(
            &mut partition,
            &[add_v(0), add_v(1), add_e(0, 1), add_e(0, 1)],
        );
        assert_eq!(partition.vertices[&VertexId(0)].out.len(), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut partition = RankPartition::new(RankParams::default());
        feed(&mut partition, &[add_v(0), add_e(0, 0)]);
        assert!(partition.vertices[&VertexId(0)].out.is_empty());
    }
}
